"""Crash flight recorder: bounded in-memory history, schema'd post-mortems.

An always-on daemon cannot answer "why did worker 3 die at 2am" from a
metrics counter — by the time anyone looks, the interesting context is
gone.  The :class:`FlightRecorder` keeps a bounded ring of the most recent
operational **events** (every :class:`~repro.obs.ops.Ops` emission, at all
levels) and **spans** (completed units: name, timing, worker, verdict
summary) in the process, and serializes both into one self-contained JSON
document when something goes wrong:

* a warm worker dies (the pool triggers a dump via ``emit(dump=True)``),
* a server thread hits an unhandled exception,
* an operator sends ``SIGQUIT`` to the daemon.

The dump is out-of-band by design — its own file, wall-clock timestamps,
never part of a result stream — and validates against
:func:`validate_flight_record`, which the tests and the CI serve-smoke job
run against real dumps.  Dump files are named
``repro-flight-<seq>-<reason>.json`` so repeated incidents never
overwrite each other.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["FlightRecorder", "validate_flight_record"]

#: Filenames must stay shell-friendly whatever the triggering event's name.
_SLUG = re.compile(r"[^a-zA-Z0-9_.-]+")


class FlightRecorder:
    """Bounded ring of recent events and completed spans, dumpable as JSON."""

    def __init__(self, event_capacity: int = 256,
                 span_capacity: int = 256) -> None:
        self._events: Deque[Dict[str, Any]] = deque(maxlen=event_capacity)
        self._spans: Deque[Dict[str, Any]] = deque(maxlen=span_capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.dumps_written = 0

    # -- recording ---------------------------------------------------------------

    def record_event(self, record: Dict[str, Any]) -> None:
        """Remember one event-log record (any level; the ring is unfiltered)."""
        with self._lock:
            self._events.append(record)

    def record_span(self, name: str, dur: float, **meta: Any) -> None:
        """Remember one completed span (a finished unit, a job, a drain)."""
        with self._lock:
            self._spans.append({
                "name": name,
                "ts": round(time.time(), 6),
                "dur": round(float(dur), 6),
                "meta": dict(meta),
            })

    def recent_events(self, count: int = 10) -> List[Dict[str, Any]]:
        with self._lock:
            events = list(self._events)
        return events[-max(0, int(count)):]

    def recent_spans(self, count: int = 10) -> List[Dict[str, Any]]:
        with self._lock:
            spans = list(self._spans)
        return spans[-max(0, int(count)):]

    # -- dumping -----------------------------------------------------------------

    def dump(self, reason: str, directory: str,
             detail: Optional[Dict[str, Any]] = None,
             metrics: Optional[Dict[str, Any]] = None,
             config: Optional[Dict[str, Any]] = None) -> str:
        """Write one post-mortem document; returns its path.

        The write is atomic (same-directory temp file + rename) so a
        scraper tailing the directory never reads a half-written dump.
        """
        import repro

        with self._lock:
            self._seq += 1
            seq = self._seq
            document = {
                "type": "flight",
                "version": repro.__version__,
                "seq": seq,
                "reason": reason,
                "ts": round(time.time(), 6),
                "pid": os.getpid(),
                "detail": dict(detail) if detail else {},
                "events": list(self._events),
                "spans": list(self._spans),
                "metrics": dict(metrics) if metrics else {},
                "config": dict(config) if config else {},
            }
        os.makedirs(directory or ".", exist_ok=True)
        slug = _SLUG.sub("-", reason) or "unknown"
        path = os.path.join(directory or ".",
                            f"repro-flight-{seq:04d}-{slug}.json")
        temp = f"{path}.tmp.{os.getpid()}"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(temp, path)
        self.dumps_written += 1
        return path


def validate_flight_record(document: Any) -> None:
    """Raise ``ValueError`` unless ``document`` is a well-formed dump."""
    if not isinstance(document, dict):
        raise ValueError("flight record is not an object")
    if document.get("type") != "flight":
        raise ValueError(f"flight record type must be 'flight', "
                         f"got {document.get('type')!r}")
    if not isinstance(document.get("version"), str):
        raise ValueError("flight record needs a 'version' string")
    if not isinstance(document.get("seq"), int) or document["seq"] < 1:
        raise ValueError("flight record needs a positive integer 'seq'")
    if not isinstance(document.get("reason"), str) or not document["reason"]:
        raise ValueError("flight record needs a non-empty 'reason'")
    if not isinstance(document.get("ts"), (int, float)):
        raise ValueError("flight record needs a numeric 'ts'")
    if not isinstance(document.get("pid"), int):
        raise ValueError("flight record needs an integer 'pid'")
    for key in ("detail", "metrics", "config"):
        if not isinstance(document.get(key), dict):
            raise ValueError(f"flight record needs a {key!r} object")
    events = document.get("events")
    if not isinstance(events, list):
        raise ValueError("flight record needs an 'events' list")
    from repro.obs.ops import validate_log_record

    for record in events:
        validate_log_record(record)
    spans = document.get("spans")
    if not isinstance(spans, list):
        raise ValueError("flight record needs a 'spans' list")
    for entry in spans:
        if not isinstance(entry, dict) or \
                not isinstance(entry.get("name"), str) or \
                not isinstance(entry.get("ts"), (int, float)) or \
                not isinstance(entry.get("dur"), (int, float)) or \
                not isinstance(entry.get("meta"), dict):
            raise ValueError(f"malformed flight span entry: {entry!r}")
