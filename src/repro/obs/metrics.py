"""Unified metrics registry: counters, gauges, fixed-bucket histograms.

This is the single accounting surface the pipeline's hand-rolled stat
blocks (``SolverStats``, ``RunStats``, ``QueryStats``, ``ClusterStats``)
converge on.  Three primitives:

* **counters** — monotonically increasing ints/floats (solver conflicts,
  propagations, restarts, blasted clauses, cache hits, oracle
  short-circuits, per-backend race wins, …).  Merged by addition.
* **gauges** — last-write-wins point samples (workers, corpus size).
  Merged by max, which matches how ``RunStats`` already treats ``workers``.
* **histograms** — fixed-bucket latency/size distributions (per-stage
  latency, CNF size).  Buckets are fixed at first observation so two
  registries recording the same series always merge bucket-by-bucket.

Everything speaks one ``snapshot()``/``merge()`` protocol; snapshots are
plain JSON-safe dicts, so they pickle across the multiprocessing fan-out
and serialize into JSONL ``{"type": "metric"}`` records unchanged.

The module also hosts the reflection helpers the legacy dataclasses now
lean on: :func:`merge_counter_dataclass` merges *every* numeric field of a
stats dataclass (so a newly added counter can never be silently dropped —
``tests/test_stats_merge.py`` locks this in), and :func:`absorb_dataclass`
lifts a stats dataclass into a registry under a name prefix.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "merge_counter_dataclass",
    "absorb_dataclass",
    "config_snapshot",
]

# Seconds.  Spans auto-observe their duration into ``latency.<name>``
# histograms, so the default buckets are tuned for solver-query through
# whole-run latencies.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max running stats."""

    __slots__ = ("buckets", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            # Bucket layouts differ: fold the other side in as raw
            # observations at its bucket means so no count is lost.
            for value in other.flatten():
                self.observe(value)
            return
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            self.min = bound if self.min is None else min(self.min, bound)
            self.max = bound if self.max is None else max(self.max, bound)

    def flatten(self) -> List[float]:
        """Representative per-bucket values (used for cross-layout merges)."""
        out: List[float] = []
        lower = 0.0
        for i, upper in enumerate(self.buckets):
            out.extend([(lower + upper) / 2.0] * self.bucket_counts[i])
            lower = upper
        overflow = self.bucket_counts[len(self.buckets)]
        top = self.max if self.max is not None else (lower or 1.0)
        out.extend([top] * overflow)
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.bucket_counts),
            "count": self.count,
            "sum": round(self.total, 9),
            "min": None if self.min is None else round(self.min, 9),
            "max": None if self.max is None else round(self.max, 9),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Histogram":
        hist = cls(payload.get("buckets", DEFAULT_LATENCY_BUCKETS))
        counts = payload.get("counts", [])
        for i, n in enumerate(counts[: len(hist.bucket_counts)]):
            hist.bucket_counts[i] = int(n)
        hist.count = int(payload.get("count", sum(hist.bucket_counts)))
        hist.total = float(payload.get("sum", 0.0))
        hist.min = payload.get("min")
        hist.max = payload.get("max")
        return hist


class MetricsRegistry:
    """Counters, gauges, and histograms behind one snapshot/merge protocol."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(buckets if buckets is not None
                             else DEFAULT_LATENCY_BUCKETS)
            self.histograms[name] = hist
        hist.observe(value)

    # -- reading -----------------------------------------------------------------

    def counter(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.histograms.get(name)

    # -- protocol ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe, picklable view: the cross-process interchange format."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: hist.as_dict()
                           for name, hist in sorted(self.histograms.items())},
        }

    @classmethod
    def from_snapshot(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.counters.update(payload.get("counters", {}))
        registry.gauges.update(payload.get("gauges", {}))
        for name, hist in payload.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_dict(hist)
        return registry

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None else max(current, value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                clone = Histogram(hist.buckets)
                clone.merge(hist)
                self.histograms[name] = clone
            else:
                mine.merge(hist)
        return self

    def merge_snapshot(self, payload: Mapping[str, Any]) -> "MetricsRegistry":
        return self.merge(MetricsRegistry.from_snapshot(payload))


# -- dataclass bridge ---------------------------------------------------------------


def merge_counter_dataclass(target: Any, other: Any,
                            maxed: Sequence[str] = ()) -> Any:
    """Merge every field of a stats dataclass into ``target`` by reflection.

    Numeric fields add (``maxed`` names take the max instead — e.g.
    ``workers``); dict fields add per-key (per-backend race wins); list
    fields concatenate.  Because the field list comes from
    ``dataclasses.fields``, a counter added to the dataclass tomorrow is
    merged automatically — forgetting it is no longer possible.
    """
    if not dataclasses.is_dataclass(target):
        raise TypeError(f"not a dataclass: {target!r}")
    for field in dataclasses.fields(target):
        name = field.name
        mine = getattr(target, name)
        theirs = getattr(other, name)
        if isinstance(mine, bool) or isinstance(theirs, bool):
            setattr(target, name, mine or theirs)
        elif isinstance(mine, (int, float)) and isinstance(theirs, (int, float)):
            if name in maxed:
                setattr(target, name, max(mine, theirs))
            else:
                setattr(target, name, mine + theirs)
        elif isinstance(mine, dict) and isinstance(theirs, dict):
            for key, value in theirs.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    mine[key] = mine.get(key, 0) + value
                else:
                    mine.setdefault(key, value)
        elif isinstance(mine, list) and isinstance(theirs, list):
            mine.extend(theirs)
        # Non-numeric scalars (strings, None, nested objects) keep the
        # target's value; merge() semantics only cover accounting fields.
    return target


def absorb_dataclass(registry: MetricsRegistry, prefix: str, stats: Any,
                     gauges: Sequence[str] = ()) -> MetricsRegistry:
    """Lift a stats dataclass into ``registry`` under ``prefix.<field>``.

    Numeric fields become counters (or gauges when named in ``gauges``);
    dict-of-number fields become labeled counters
    (``prefix.field.<key>``); everything else is skipped.
    """
    if not dataclasses.is_dataclass(stats):
        raise TypeError(f"not a dataclass: {stats!r}")
    for field in dataclasses.fields(stats):
        value = getattr(stats, field.name)
        name = f"{prefix}.{field.name}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            if field.name in gauges:
                registry.set_gauge(name, value)
            else:
                registry.inc(name, value)
        elif isinstance(value, dict):
            for key, item in value.items():
                if isinstance(item, (int, float)) and not isinstance(item, bool):
                    registry.inc(f"{name}.{key}", item)
    return registry


def config_snapshot(config: Any) -> Dict[str, Any]:
    """JSON-safe snapshot of a config dataclass (for run-summary records)."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        raw: Dict[str, Any] = dataclasses.asdict(config)
    elif isinstance(config, Mapping):
        raw = dict(config)
    else:
        raise TypeError(f"not a config dataclass or mapping: {config!r}")

    def sanitize(value: Any) -> Any:
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        if isinstance(value, Mapping):
            return {str(k): sanitize(v) for k, v in sorted(value.items(),
                                                           key=lambda kv: str(kv[0]))}
        if isinstance(value, (list, tuple)):
            return [sanitize(v) for v in value]
        return repr(value)

    return {key: sanitize(raw[key]) for key in sorted(raw)}
