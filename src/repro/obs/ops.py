"""Operational observability for long-running processes (``repro.obs.ops``).

The PR-8 observability layer (:mod:`repro.obs.trace`,
:mod:`repro.obs.metrics`) observes *batch* runs: everything it records
surfaces when the run ends.  A resident daemon (:mod:`repro.serve`) needs
the opposite — telemetry that streams *while* the process lives and
survives when it dies.  This module provides the pieces the serve daemon
wires together (docs/OBSERVABILITY.md, "Operating the daemon"):

* :class:`EventLog` — a leveled, structured, size-rotated JSONL event log.
  Every record is one schema'd line::

      {"type": "log", "ts": 1723000000.123456, "level": "info",
       "component": "server", "event": "listening", "fields": {...}}

  Timestamps are wall-clock and therefore **out-of-band by construction**:
  log records never enter the byte-identity-checked result streams — they
  go to their own file, full stop.
* :class:`Ops` — the hub one process owns: an event log, a
  :class:`~repro.obs.flightrec.FlightRecorder` fed every event (at *all*
  levels, so a post-mortem sees the debug trail the log filtered out), and
  the dump trigger (``emit(..., dump=True)`` writes a flight record).
* The **slow-query hook** — a process-local recorder the solver's query
  layer feeds (:mod:`repro.core.queries` calls :func:`note_query`, one
  global read when off).  Workers collect the records per unit
  (``UnitResult.slow_queries``) and the daemon turns them into
  ``slow-query`` log events with the query key, backend, verdict, and
  duration.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.flightrec import FlightRecorder

__all__ = [
    "LOG_LEVELS",
    "EventLog",
    "Ops",
    "SlowQueryRecorder",
    "activate_slow_queries",
    "current_slow_query_recorder",
    "note_query",
    "restore_slow_queries",
    "validate_log_record",
]

#: Severity order; a log configured at ``level`` keeps that level and up.
LOG_LEVELS = ("debug", "info", "warn", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LOG_LEVELS)}


def _json_safe(value: Any) -> Any:
    """Clamp an event field to plain JSON types (repr for anything else)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


class EventLog:
    """Structured JSONL event log with size-based rotation.

    ``path=None`` builds records (for the flight recorder and tests)
    without writing anything.  Rotation is size-based: once the live file
    exceeds ``max_bytes`` after a write, it is renamed to ``<path>.1``
    (existing backups shift up; at most ``backups`` are kept) and a fresh
    file starts.  All methods are thread-safe — the daemon logs from its
    accept, reader, dispatcher, and collector threads concurrently.
    """

    def __init__(self, path: Optional[str] = None, level: str = "info",
                 max_bytes: int = 10_000_000, backups: int = 3) -> None:
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown log level {level!r} "
                             f"(choose from {LOG_LEVELS})")
        self.path = path
        self.level = level
        self.max_bytes = max(1024, int(max_bytes))
        self.backups = max(1, int(backups))
        self.rotations = 0
        self._rank = _LEVEL_RANK[level]
        self._lock = threading.Lock()
        self._handle = None
        if path:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "a", encoding="utf-8")

    def build(self, level: str, component: str, event: str,
              **fields: Any) -> Dict[str, Any]:
        """One schema'd log record (not yet written)."""
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown log level {level!r}")
        return {
            "type": "log",
            "ts": round(time.time(), 6),
            "level": level,
            "component": component,
            "event": event,
            "fields": {key: _json_safe(value)
                       for key, value in sorted(fields.items())},
        }

    def emit(self, level: str, component: str, event: str,
             **fields: Any) -> Dict[str, Any]:
        """Build one record and write it if it clears the level filter."""
        record = self.build(level, component, event, **fields)
        if self._handle is not None and _LEVEL_RANK[level] >= self._rank:
            line = json.dumps(record, sort_keys=True,
                              separators=(",", ":")) + "\n"
            with self._lock:
                if self._handle is not None:
                    self._handle.write(line)
                    self._handle.flush()
                    self._maybe_rotate_locked()
        return record

    def _maybe_rotate_locked(self) -> None:
        if self._handle is None or self.path is None:
            return
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size <= self.max_bytes:
            return
        self._handle.close()
        for index in range(self.backups - 1, 0, -1):
            older = f"{self.path}.{index}"
            if os.path.exists(older):
                os.replace(older, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self.rotations += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def validate_log_record(record: Any) -> None:
    """Raise ``ValueError`` unless ``record`` matches the event-log schema."""
    if not isinstance(record, dict):
        raise ValueError("log record is not an object")
    if record.get("type") != "log":
        raise ValueError(f"log record type must be 'log', "
                         f"got {record.get('type')!r}")
    if not isinstance(record.get("ts"), (int, float)):
        raise ValueError("log record needs a numeric 'ts'")
    if record.get("level") not in _LEVEL_RANK:
        raise ValueError(f"unknown level {record.get('level')!r}")
    for key in ("component", "event"):
        if not isinstance(record.get(key), str) or not record[key]:
            raise ValueError(f"log record needs a non-empty {key!r} string")
    if not isinstance(record.get("fields"), dict):
        raise ValueError("log record needs a 'fields' object")


class Ops:
    """The operational hub of one long-running process.

    Routes every event to the (leveled, rotated) :class:`EventLog` *and*
    the unfiltered :class:`FlightRecorder` ring, so a post-mortem dump
    carries the debug-level trail even when the log is configured at
    ``info``.  ``emit(..., dump=True)`` additionally writes a flight
    record named after the event — the policy hook the worker pool uses
    for worker deaths.
    """

    def __init__(self, log: Optional[EventLog] = None,
                 flight: Optional[FlightRecorder] = None,
                 flight_dir: str = ".",
                 metrics_fn: Optional[Callable[[], Dict[str, Any]]] = None,
                 config_fn: Optional[Callable[[], Dict[str, Any]]] = None,
                 ) -> None:
        self.log = log if log is not None else EventLog()
        self.flight = flight if flight is not None else FlightRecorder()
        self.flight_dir = flight_dir
        self._metrics_fn = metrics_fn
        self._config_fn = config_fn

    def emit(self, level: str, component: str, event: str,
             dump: bool = False, **fields: Any) -> Dict[str, Any]:
        record = self.log.emit(level, component, event, **fields)
        self.flight.record_event(record)
        if dump:
            self.dump(f"{component}.{event}", detail=record["fields"])
        return record

    def dump(self, reason: str,
             detail: Optional[Dict[str, Any]] = None) -> str:
        """Write one flight-recorder post-mortem; returns its path."""
        metrics = self._metrics_fn() if self._metrics_fn is not None else None
        config = self._config_fn() if self._config_fn is not None else None
        path = self.flight.dump(reason, self.flight_dir, detail=detail,
                                metrics=metrics, config=config)
        self.log.emit("error", "flight", "dumped", reason=reason, path=path)
        return path

    def recent_events(self, count: int = 10) -> List[Dict[str, Any]]:
        return self.flight.recent_events(count)

    def close(self) -> None:
        self.log.close()


# -- the process-local slow-query recorder -------------------------------------------


class SlowQueryRecorder:
    """Collects solver queries slower than a threshold (milliseconds).

    Activated per work unit by
    :func:`repro.engine.workunit.check_work_unit` when
    ``CheckerConfig.slow_query_ms`` is set; :mod:`repro.core.queries`
    feeds it via :func:`note_query`.  Records are JSON-safe dicts —
    ``{"key", "backend", "verdict", "duration_ms"}`` — and deliberately
    ride on :class:`~repro.engine.workunit.UnitResult` *outside* ``meta``,
    so they can never leak into the deterministic JSONL unit records.
    """

    def __init__(self, threshold_ms: float, capacity: int = 256) -> None:
        self.threshold_ms = float(threshold_ms)
        self.capacity = max(1, int(capacity))
        self.records: List[Dict[str, Any]] = []
        self.dropped = 0

    def note(self, key: Optional[str], verdict: Any, elapsed: float,
             backend: str) -> None:
        duration_ms = elapsed * 1000.0
        if duration_ms < self.threshold_ms:
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append({
            "key": key or "",
            "backend": backend,
            "verdict": "unknown" if verdict is None else str(verdict),
            "duration_ms": round(duration_ms, 3),
        })


_ACTIVE_SLOW: Optional[SlowQueryRecorder] = None


def current_slow_query_recorder() -> Optional[SlowQueryRecorder]:
    return _ACTIVE_SLOW


def activate_slow_queries(recorder: SlowQueryRecorder,
                          ) -> Optional[SlowQueryRecorder]:
    """Install the process-local recorder; returns the displaced one."""
    global _ACTIVE_SLOW
    previous = _ACTIVE_SLOW
    _ACTIVE_SLOW = recorder
    return previous


def restore_slow_queries(previous: Optional[SlowQueryRecorder]) -> None:
    global _ACTIVE_SLOW
    _ACTIVE_SLOW = previous


def note_query(key: Optional[str], verdict: Any, elapsed: float,
               backend: str) -> None:
    """Feed one solved query to the active recorder (no-op when off)."""
    recorder = _ACTIVE_SLOW
    if recorder is not None:
        recorder.note(key, verdict, elapsed, backend)
