"""Chrome trace-event exporter.

Emits the ``{"traceEvents": [...]}`` JSON object format understood by
Perfetto (https://ui.perfetto.dev) and the legacy ``chrome://tracing``
viewer.  Every span becomes one complete ("ph": "X") event with integer
microsecond ``ts``/``dur``; the deterministic span id and args ride in
``args`` so a trace can be diffed against the JSONL span records.

The file is written with sorted keys, so a trace of a deterministic run is
itself byte-stable up to the recorded timings.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.trace import Span

__all__ = [
    "chrome_trace_events",
    "chrome_trace_document",
    "write_chrome_trace",
    "validate_chrome_trace",
]

_VALID_PHASES = {"X", "B", "E", "i", "I", "C", "M", "b", "e", "s", "t", "f"}


def chrome_trace_events(root: Span, pid: int = 1, tid: int = 1) -> List[Dict[str, Any]]:
    """Flatten a span tree into complete trace events (µs granularity)."""
    events: List[Dict[str, Any]] = []
    for node in root.walk():
        args: Dict[str, Any] = {"id": node.span_id}
        if node.args:
            args.update(node.args)
        events.append({
            "name": node.name,
            "cat": "repro",
            "ph": "X",
            "ts": int(round(node.ts * 1_000_000)),
            "dur": int(round(node.dur * 1_000_000)),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return events


def chrome_trace_document(root: Span,
                          metrics: Optional[Mapping[str, Any]] = None,
                          ) -> Dict[str, Any]:
    """The full JSON-object-format document for one run."""
    document: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(root),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    if metrics is not None:
        document["otherData"]["metrics"] = dict(metrics)
    return document


def write_chrome_trace(path: str, root: Span,
                       metrics: Optional[Mapping[str, Any]] = None) -> None:
    document = chrome_trace_document(root, metrics=metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")


def validate_chrome_trace(document: Any) -> List[Dict[str, Any]]:
    """Check ``document`` against the trace-event schema; return its events.

    Raises :class:`ValueError` on the first violation.  This is what the CI
    obs-smoke job runs over emitted traces: the JSON-object form with a
    ``traceEvents`` list whose members carry a string ``name``, a known
    ``ph``, and non-negative integer ``ts``/``dur`` (for complete events).
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document missing 'traceEvents' list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where} has no string 'name'")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"{where} has invalid phase {phase!r}")
        ts = event.get("ts")
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            raise ValueError(f"{where} has invalid 'ts' {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or isinstance(dur, bool) or dur < 0:
                raise ValueError(f"{where} has invalid 'dur' {dur!r}")
        for key in ("pid", "tid"):
            ident = event.get(key)
            if not isinstance(ident, (int, str)) or isinstance(ident, bool):
                raise ValueError(f"{where} has invalid {key!r} {ident!r}")
    return events
