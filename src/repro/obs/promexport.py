"""Prometheus text-format export of a :class:`MetricsRegistry` snapshot.

The registry's ``snapshot()`` dict (counters / gauges / histograms, see
:mod:`repro.obs.metrics`) maps directly onto the three Prometheus families:

* counters → ``# TYPE <name> counter`` with the running total,
* gauges → ``# TYPE <name> gauge`` with the last sample,
* histograms → ``# TYPE <name> histogram`` with **cumulative**
  ``<name>_bucket{le="..."}`` series (one per upper bound plus ``+Inf``),
  ``<name>_sum``, and ``<name>_count``.

Names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``) — the registry's dotted names
(``serve.queue_depth``) become underscore names (``serve_queue_depth``),
deterministically, with a collision check so two distinct metrics can
never silently merge.

Two consumers, one format: the serve daemon answers its ``metrics``
protocol op with this text, and (with ``--metrics-file``) atomically
rewrites a snapshot file an external scraper reads —
:func:`write_metrics_file` uses a same-directory temp file + rename so
the scraper never sees a torn write.  :func:`parse_prometheus` and
:func:`validate_prometheus_text` close the loop: the tests round-trip
every metric of a live registry through the format, and the CI
serve-smoke job validates the scraped file.
"""

from __future__ import annotations

import os
import re
from typing import Any, Dict, List, Mapping, Tuple

__all__ = [
    "parse_prometheus",
    "render_prometheus",
    "sanitize_metric_name",
    "validate_prometheus_text",
    "write_metrics_file",
]

_VALID_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Suffixes a histogram family reserves; scalar names may not end in them.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def sanitize_metric_name(name: str) -> str:
    """Map a registry metric name onto the Prometheus name grammar."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if not sanitized or not _VALID_NAME.match(sanitized):
        sanitized = f"_{sanitized}" if sanitized else "_"
    return sanitized


def _format_value(value: float) -> str:
    """Prometheus float formatting: integers without a trailing ``.0``."""
    number = float(value)
    if number != number:                      # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_le(upper: float) -> str:
    return "+Inf" if upper == float("inf") else _format_value(upper)


def _unique_names(names, kind: str) -> Dict[str, str]:
    """Sanitized name per metric, refusing post-sanitization collisions."""
    mapping: Dict[str, str] = {}
    seen: Dict[str, str] = {}
    for name in names:
        sanitized = sanitize_metric_name(name)
        clash = seen.get(sanitized)
        if clash is not None and clash != name:
            raise ValueError(
                f"{kind} metrics {clash!r} and {name!r} both sanitize to "
                f"{sanitized!r}")
        seen[sanitized] = name
        mapping[name] = sanitized
    return mapping


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """One registry snapshot as Prometheus exposition text (version 0.0.4)."""
    lines: List[str] = []
    counters = dict(snapshot.get("counters", {}))
    gauges = dict(snapshot.get("gauges", {}))
    histograms = dict(snapshot.get("histograms", {}))

    counter_names = _unique_names(sorted(counters), "counter")
    gauge_names = _unique_names(sorted(gauges), "gauge")
    histogram_names = _unique_names(sorted(histograms), "histogram")

    for name in sorted(counters):
        sanitized = counter_names[name]
        lines.append(f"# HELP {sanitized} repro counter {name}")
        lines.append(f"# TYPE {sanitized} counter")
        lines.append(f"{sanitized} {_format_value(counters[name])}")
    for name in sorted(gauges):
        sanitized = gauge_names[name]
        lines.append(f"# HELP {sanitized} repro gauge {name}")
        lines.append(f"# TYPE {sanitized} gauge")
        lines.append(f"{sanitized} {_format_value(gauges[name])}")
    for name in sorted(histograms):
        sanitized = histogram_names[name]
        payload = histograms[name]
        buckets = list(payload.get("buckets", ())) + [float("inf")]
        counts = list(payload.get("counts", ()))
        counts += [0] * (len(buckets) - len(counts))
        lines.append(f"# HELP {sanitized} repro histogram {name}")
        lines.append(f"# TYPE {sanitized} histogram")
        cumulative = 0
        for upper, count in zip(buckets, counts):
            cumulative += int(count)
            lines.append(f'{sanitized}_bucket{{le="{_format_le(upper)}"}} '
                         f"{cumulative}")
        lines.append(f"{sanitized}_sum {_format_value(payload.get('sum', 0.0))}")
        lines.append(f"{sanitized}_count "
                     f"{_format_value(payload.get('count', cumulative))}")
    return "\n".join(lines) + "\n" if lines else ""


def write_metrics_file(path: str, snapshot: Mapping[str, Any]) -> str:
    """Atomically (re)write ``path`` with the rendered snapshot."""
    text = render_prometheus(snapshot)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    temp = f"{path}.tmp.{os.getpid()}"
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(temp, path)
    return path


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$")


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text back into ``{family: {...}}`` for round-trips.

    Counter/gauge families parse to ``{"type", "value"}``; histogram
    families to ``{"type", "buckets": [(le, cumulative), ...], "sum",
    "count"}``.  Raises ``ValueError`` on text that does not scan.
    """
    families: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"malformed HELP line: {raw!r}")
            helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                raise ValueError(f"malformed TYPE line: {raw!r}")
            types[parts[2]] = parts[3]
            families.setdefault(parts[2], {"type": parts[3]})
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {raw!r}")
        name = match.group("name")
        value = _parse_number(match.group("value"))
        base = name
        for suffix in _HISTOGRAM_SUFFIXES:
            if name.endswith(suffix) and name[: -len(suffix)] in types and \
                    types[name[: -len(suffix)]] == "histogram":
                base = name[: -len(suffix)]
                break
        family_type = types.get(base)
        if family_type is None:
            raise ValueError(f"sample {name!r} has no preceding TYPE line")
        family = families.setdefault(base, {"type": family_type})
        if family_type in ("counter", "gauge"):
            if match.group("labels"):
                raise ValueError(f"unexpected labels on scalar {name!r}")
            family["value"] = value
        else:
            if name.endswith("_bucket"):
                labels = match.group("labels") or ""
                le_match = re.match(r'^le="([^"]*)"$', labels)
                if le_match is None:
                    raise ValueError(f"histogram bucket without an le "
                                     f"label: {raw!r}")
                family.setdefault("buckets", []).append(
                    (_parse_number(le_match.group(1)), value))
            elif name.endswith("_sum"):
                family["sum"] = value
            elif name.endswith("_count"):
                family["count"] = value
            else:
                raise ValueError(f"unexpected histogram sample {name!r}")
    for name, family in families.items():
        if name not in helps:
            raise ValueError(f"family {name!r} has no HELP line")
        _check_family(name, family)
    return families


def _check_family(name: str, family: Dict[str, Any]) -> None:
    if family["type"] in ("counter", "gauge"):
        if "value" not in family:
            raise ValueError(f"family {name!r} has a TYPE line but no sample")
        return
    buckets: List[Tuple[float, float]] = family.get("buckets", [])
    if not buckets:
        raise ValueError(f"histogram {name!r} has no buckets")
    if buckets[-1][0] != float("inf"):
        raise ValueError(f"histogram {name!r} is missing the +Inf bucket")
    previous_le = float("-inf")
    previous_count = 0.0
    for le, cumulative in buckets:
        if le <= previous_le:
            raise ValueError(f"histogram {name!r} buckets not sorted by le")
        if cumulative < previous_count:
            raise ValueError(
                f"histogram {name!r} bucket counts are not cumulative: "
                f"le={_format_le(le)} fell from {previous_count} to "
                f"{cumulative}")
        previous_le, previous_count = le, cumulative
    if "sum" not in family or "count" not in family:
        raise ValueError(f"histogram {name!r} is missing _sum or _count")
    if family["count"] != buckets[-1][1]:
        raise ValueError(
            f"histogram {name!r}: _count {family['count']} != +Inf bucket "
            f"{buckets[-1][1]}")


def validate_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse-and-check; returns the families so callers can assert more."""
    return parse_prometheus(text)
