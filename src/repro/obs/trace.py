"""Hierarchical tracing with deterministic span identities.

A :class:`Span` is one timed region of the pipeline — a checker stage, a
solver query, a repair gate.  Spans form a tree per run, and two properties
are load-bearing:

* **Deterministic identity.**  A span's id is derived from its parent's id,
  its name, and its sequence number among its siblings — never from
  wall-clock time, process ids, or memory addresses.  Two runs of the same
  work produce byte-identical span *trees* (ids, structure, args) whatever
  the worker count; only the out-of-band timings differ.  That is what lets
  the deterministic-JSONL modes stay byte-identical and lets tests diff
  whole traces across ``--workers 1/2/4``.
* **Out-of-band timings.**  ``ts``/``dur`` (monotonic seconds relative to
  the tracer's epoch) ride next to the identity payload, not inside it:
  :func:`span_payloads` carries identity only, :func:`span_timings` the
  parallel timing rows, and the Chrome-trace exporter
  (:mod:`repro.obs.chrometrace`) joins them back together.

The process-local :class:`Tracer` survives the engine's multiprocessing
fan-out by *not* trying to: each worker runs its unit under its own tracer
(:func:`repro.engine.workunit.check_work_unit`), serializes the finished
spans through the existing ``UnitResult.meta`` channel, and the parent
grafts every unit subtree back under one run root (:func:`graft`) —
re-deriving ids from the new path, which keeps the assembled tree
deterministic too.

Instrumentation sites call the module-level :func:`span` helper, which is a
no-op costing one global read when no tracer is active — the hot paths pay
nothing with tracing disabled.
"""

from __future__ import annotations

import functools
import hashlib
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "restore",
    "span",
    "tracing",
    "traced",
    "counter",
    "observe",
    "span_payloads",
    "span_timings",
    "graft",
]


def derive_span_id(parent_id: str, name: str, seq: int) -> str:
    """Deterministic 16-hex id from the span's path position.

    No wall-clock, pid, or object identity enters the derivation — the id
    is a pure function of (parent id, name, sibling index).
    """
    blob = f"{parent_id}/{name}#{seq}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


class Span:
    """One node of the trace tree."""

    __slots__ = ("name", "span_id", "parent_id", "seq", "args",
                 "ts", "dur", "children")

    def __init__(self, name: str, parent_id: str = "", seq: int = 0,
                 args: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.parent_id = parent_id
        self.seq = seq
        self.span_id = derive_span_id(parent_id, name, seq)
        self.args: Dict[str, Any] = dict(args) if args else {}
        self.ts: float = 0.0          # seconds relative to the tracer epoch
        self.dur: float = 0.0         # seconds
        self.children: List["Span"] = []

    def child(self, name: str, args: Optional[Dict[str, Any]] = None) -> "Span":
        node = Span(name, parent_id=self.span_id, seq=len(self.children),
                    args=args)
        self.children.append(node)
        return node

    def set_arg(self, key: str, value: Any) -> None:
        """Attach a deterministic annotation (part of the identity payload)."""
        self.args[key] = value

    def identity(self) -> Dict[str, Any]:
        """The timing-free identity payload of this span."""
        return {"id": self.span_id, "parent": self.parent_id,
                "name": self.name, "seq": self.seq, "args": dict(self.args)}

    def walk(self) -> List["Span"]:
        """This span and every descendant in depth-first creation order."""
        out: List["Span"] = []
        stack = [self]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def self_time(self) -> float:
        """Duration not covered by direct children."""
        return max(0.0, self.dur - sum(c.dur for c in self.children))

    def __repr__(self) -> str:
        return (f"<Span {self.name} id={self.span_id} seq={self.seq} "
                f"children={len(self.children)}>")


class _SpanHandle:
    """Context manager opening one child span on a tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", node: Span) -> None:
        self._tracer = tracer
        self.span = node

    # Convenience pass-throughs so call sites read naturally.
    @property
    def dur(self) -> float:
        return self.span.dur

    def set_arg(self, key: str, value: Any) -> None:
        self.span.set_arg(key, value)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self._tracer._close(self.span)


class _NullSpan:
    """The do-nothing handle returned when no tracer is active."""

    __slots__ = ()
    dur = 0.0
    span = None

    def set_arg(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Process-local span collector with an attached metrics registry.

    Every closed span also feeds the fixed-bucket latency histogram
    ``latency.<name>`` in :attr:`metrics`, so per-stage and per-query
    latency distributions come for free with tracing.
    """

    def __init__(self, name: str = "run",
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.root = Span(name)
        self._epoch = time.monotonic()
        self._stack: List[Span] = [self.root]
        self._open: Dict[int, float] = {}          # id(span) -> monotonic start

    # -- span lifecycle ----------------------------------------------------------

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def span(self, name: str, **args: Any) -> _SpanHandle:
        node = self.current.child(name, args=args or None)
        node.ts = time.monotonic() - self._epoch
        self._stack.append(node)
        self._open[id(node)] = time.monotonic()
        return _SpanHandle(self, node)

    def _close(self, node: Span) -> None:
        started = self._open.pop(id(node), None)
        if started is not None:
            node.dur = time.monotonic() - started
        if self._stack and self._stack[-1] is node:
            self._stack.pop()
        else:                          # tolerate out-of-order exits
            try:
                self._stack.remove(node)
            except ValueError:
                pass
        self.metrics.observe(f"latency.{node.name}", node.dur)

    def finish(self) -> Span:
        """Close the root span (idempotent) and return it."""
        self.root.dur = time.monotonic() - self._epoch
        return self.root

    # -- serialization -----------------------------------------------------------

    def payloads(self) -> List[Dict[str, Any]]:
        return span_payloads(self.root)

    def timings(self) -> List[List[float]]:
        return span_timings(self.root)

    def to_blob(self) -> Dict[str, Any]:
        """The picklable bundle carried through ``UnitResult.meta['obs']``."""
        self.finish()
        return {"spans": self.payloads(), "timings": self.timings(),
                "metrics": self.metrics.snapshot()}


# -- the process-local active tracer ------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    return _ACTIVE


def activate(tracer: Tracer) -> Optional[Tracer]:
    """Install ``tracer`` as the process-local tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def restore(previous: Optional[Tracer]) -> None:
    """Reinstall the tracer :func:`activate` displaced."""
    global _ACTIVE
    _ACTIVE = previous


class tracing:
    """``with tracing(tracer): ...`` — activate for a scope, restore after."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = activate(self.tracer)
        return self.tracer

    def __exit__(self, *_exc) -> None:
        self.tracer.finish()
        restore(self._previous)


def span(name: str, **args: Any):
    """Open a span on the active tracer, or do nothing if tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator wrapping a function call in a span named after it."""

    def decorate(func: Callable) -> Callable:
        label = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with span(label):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def counter(name: str, value: int = 1) -> None:
    """Bump a counter on the active tracer's metrics registry (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.inc(name, value)


def observe(name: str, value: float,
            buckets: Optional[Sequence[float]] = None) -> None:
    """Record a histogram observation on the active tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.observe(name, value, buckets=buckets)


# -- flat serialization and grafting ------------------------------------------------


def span_payloads(root: Span) -> List[Dict[str, Any]]:
    """Identity payloads of ``root``'s subtree in depth-first order."""
    return [node.identity() for node in root.walk()]


def span_timings(root: Span) -> List[List[float]]:
    """``[ts, dur]`` rows parallel to :func:`span_payloads`."""
    return [[node.ts, node.dur] for node in root.walk()]


def graft(parent: Span, payloads: Sequence[Dict[str, Any]],
          timings: Optional[Sequence[Sequence[float]]] = None,
          offset: float = 0.0) -> Optional[Span]:
    """Reattach a serialized subtree under ``parent``; returns its new root.

    Ids are re-derived from the new path, deterministically: the grafted
    root takes the next sibling slot of ``parent`` and every descendant
    keeps its original sequence number, so reassembly is a pure function of
    (parent position, serialized structure).  ``timings`` rows (parallel to
    ``payloads``) are shifted by ``offset`` seconds, which is how the engine
    lays concurrent units out on one logical timeline.
    """
    if not payloads:
        return None
    by_old_id: Dict[str, Span] = {}
    new_root: Optional[Span] = None
    for index, payload in enumerate(payloads):
        old_parent = payload["parent"]
        if new_root is None:
            node = parent.child(payload["name"], args=payload["args"] or None)
            new_root = node
        else:
            target = by_old_id.get(old_parent)
            if target is None:              # orphan row: attach to the root
                target = new_root
            node = target.child(payload["name"], args=payload["args"] or None)
        if timings is not None and index < len(timings):
            node.ts = float(timings[index][0]) + offset
            node.dur = float(timings[index][1])
        by_old_id[payload["id"]] = node
    return new_root
