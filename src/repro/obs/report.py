"""Per-run text profile rendered from a span tree + metrics registry.

Mirrors the axes of the paper's Figure 16: where does the wall-clock go —
solver queries vs bit-blasting vs interpretation (witness replay) vs
everything else — plus a top-N table of the slowest individual spans by
self time (time not attributable to child spans).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

__all__ = ["aggregate_spans", "time_split", "render_profile"]

# Figure-16-style buckets: a span name's first matching prefix decides its
# bucket; unmatched spans fall into "other".
_SPLIT_PREFIXES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("solver", ("solver.query", "solver.race")),
    ("frontend", ("stage1.", "unit:compile")),
    ("encode", ("stage2.",)),
    ("interp", ("stage5.", "witness.replay", "exec.")),
    ("repair", ("stage6.", "repair.gate")),
    ("cluster", ("cluster.",)),
)


def aggregate_spans(root: Span) -> Dict[str, Dict[str, float]]:
    """Per-span-name totals: call count, total duration, self duration."""
    table: Dict[str, Dict[str, float]] = {}
    for node in root.walk():
        row = table.setdefault(node.name, {"count": 0, "total": 0.0, "self": 0.0})
        row["count"] += 1
        row["total"] += node.dur
        row["self"] += node.self_time()
    return table


def time_split(root: Span) -> Dict[str, float]:
    """Self-time per Figure-16 bucket (seconds)."""
    split = {name: 0.0 for name, _ in _SPLIT_PREFIXES}
    split["other"] = 0.0
    for node in root.walk():
        if node is root:
            continue
        bucket = "other"
        for name, prefixes in _SPLIT_PREFIXES:
            if any(node.name.startswith(p) or node.name == p.rstrip(".")
                   for p in prefixes):
                bucket = name
                break
        split[bucket] += node.self_time()
    return split


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f}s"
    return f"{value * 1000.0:7.2f}ms"


def render_profile(root: Span, metrics: Optional[MetricsRegistry] = None,
                   top: int = 10) -> str:
    """Human-readable profile for one traced run."""
    lines: List[str] = []
    lines.append(f"profile: {root.name}  (wall {root.dur:.3f}s, "
                 f"{len(root.walk())} spans)")

    split = time_split(root)
    total = sum(split.values()) or 1.0
    lines.append("")
    lines.append("time split (self time, Figure-16 axes):")
    for bucket, seconds in sorted(split.items(), key=lambda kv: -kv[1]):
        if seconds <= 0.0:
            continue
        share = 100.0 * seconds / total
        lines.append(f"  {bucket:<10} {_fmt_seconds(seconds)}  {share:5.1f}%")

    table = aggregate_spans(root)
    rows = sorted(table.items(), key=lambda kv: -kv[1]["self"])
    lines.append("")
    lines.append(f"top {min(top, len(rows))} spans by self time:")
    lines.append(f"  {'span':<28} {'count':>6} {'total':>10} {'self':>10}")
    for name, row in rows[:top]:
        lines.append(f"  {name:<28} {int(row['count']):>6} "
                     f"{_fmt_seconds(row['total']):>10} "
                     f"{_fmt_seconds(row['self']):>10}")

    if metrics is not None and metrics.counters:
        lines.append("")
        lines.append("counters:")
        for name, value in sorted(metrics.counters.items()):
            if isinstance(value, float):
                rendered = f"{value:.6g}"
            else:
                rendered = str(value)
            lines.append(f"  {name:<40} {rendered}")

    return "\n".join(lines)
