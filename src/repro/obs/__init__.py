"""``repro.obs`` — tracing, metrics, and profiling for the checker pipeline.

Three layers:

* :mod:`repro.obs.trace` — hierarchical spans with deterministic ids,
  a process-local tracer, and graft-based reassembly across the
  multiprocessing fan-out;
* :mod:`repro.obs.metrics` — counters/gauges/histograms behind one
  ``snapshot()``/``merge()`` protocol, plus the reflection helpers the
  legacy ``SolverStats``/``RunStats`` merges route through;
* exporters — :mod:`repro.obs.chrometrace` (Perfetto-loadable Chrome
  trace-event JSON) and :mod:`repro.obs.report` (per-run text profile
  along Figure 16's axes).

See ``docs/OBSERVABILITY.md`` for the user-facing guide.
"""

from repro.obs.chrometrace import (
    chrome_trace_document,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    absorb_dataclass,
    config_snapshot,
    merge_counter_dataclass,
)
from repro.obs.report import aggregate_spans, render_profile, time_split
from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    counter,
    current_tracer,
    graft,
    observe,
    restore,
    span,
    span_payloads,
    span_timings,
    traced,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "restore",
    "span",
    "tracing",
    "traced",
    "counter",
    "observe",
    "span_payloads",
    "span_timings",
    "graft",
    "MetricsRegistry",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_counter_dataclass",
    "absorb_dataclass",
    "config_snapshot",
    "chrome_trace_events",
    "chrome_trace_document",
    "write_chrome_trace",
    "validate_chrome_trace",
    "aggregate_spans",
    "time_split",
    "render_profile",
]
