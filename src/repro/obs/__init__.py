"""``repro.obs`` — tracing, metrics, and profiling for the checker pipeline.

Three layers:

* :mod:`repro.obs.trace` — hierarchical spans with deterministic ids,
  a process-local tracer, and graft-based reassembly across the
  multiprocessing fan-out;
* :mod:`repro.obs.metrics` — counters/gauges/histograms behind one
  ``snapshot()``/``merge()`` protocol, plus the reflection helpers the
  legacy ``SolverStats``/``RunStats`` merges route through;
* exporters — :mod:`repro.obs.chrometrace` (Perfetto-loadable Chrome
  trace-event JSON) and :mod:`repro.obs.report` (per-run text profile
  along Figure 16's axes);
* operational observability for long-running processes —
  :mod:`repro.obs.ops` (structured event log, slow-query recorder),
  :mod:`repro.obs.promexport` (Prometheus text-format exporter), and
  :mod:`repro.obs.flightrec` (crash flight recorder) — the pieces the
  serve daemon wires together.

See ``docs/OBSERVABILITY.md`` for the user-facing guide.
"""

from repro.obs.chrometrace import (
    chrome_trace_document,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    absorb_dataclass,
    config_snapshot,
    merge_counter_dataclass,
)
from repro.obs.flightrec import FlightRecorder, validate_flight_record
from repro.obs.ops import (
    EventLog,
    Ops,
    SlowQueryRecorder,
    note_query,
    validate_log_record,
)
from repro.obs.promexport import (
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
    validate_prometheus_text,
    write_metrics_file,
)
from repro.obs.report import aggregate_spans, render_profile, time_split
from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    counter,
    current_tracer,
    graft,
    observe,
    restore,
    span,
    span_payloads,
    span_timings,
    traced,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "restore",
    "span",
    "tracing",
    "traced",
    "counter",
    "observe",
    "span_payloads",
    "span_timings",
    "graft",
    "MetricsRegistry",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_counter_dataclass",
    "absorb_dataclass",
    "config_snapshot",
    "chrome_trace_events",
    "chrome_trace_document",
    "write_chrome_trace",
    "validate_chrome_trace",
    "aggregate_spans",
    "time_split",
    "render_profile",
    "EventLog",
    "Ops",
    "SlowQueryRecorder",
    "note_query",
    "validate_log_record",
    "FlightRecorder",
    "validate_flight_record",
    "render_prometheus",
    "parse_prometheus",
    "sanitize_metric_name",
    "validate_prometheus_text",
    "write_metrics_file",
]
