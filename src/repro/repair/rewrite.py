"""IR surgery primitives shared by the repair templates.

Templates never mutate the function under diagnosis: they clone it first
(:func:`clone_with_map` returns the positional original→clone maps, since
block names are not unique after lowering) and edit the clone.  The edits
themselves are the three moves every template reduces to:

* :func:`replace_comparison` — splice a freshly built instruction chain in
  front of a comparison and redirect every use to the new result,
* :func:`sink_instructions` — move straight-line instructions from above a
  guard into one successor (splitting the edge when the successor has other
  predecessors), so the guard stops being dominated by the operation whose
  undefined behavior made it foldable,
* :func:`remove_dead_code` — drop the value instructions the rewrite
  orphaned, so their UB conditions disappear from the patched function's
  well-defined assumption.

Every helper keeps result names stable: names are how the witness replay
layer and the equivalence gate correlate the external world (loads, calls)
between the original and the patched function.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exec.clone import clone_function
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
)
from repro.ir.values import Value


def clone_with_map(function: Function) -> Tuple[Function, Dict[int, Instruction],
                                                Dict[int, BasicBlock]]:
    """Clone ``function`` and return positional original→clone maps.

    Block names are not unique after lowering (every ``if`` contributes an
    ``if.then``), so findings are carried over to the clone by position:
    :func:`repro.exec.clone.clone_function` preserves the block list and the
    per-block instruction order exactly.
    """
    clone = clone_function(function)
    inst_map: Dict[int, Instruction] = {}
    block_map: Dict[int, BasicBlock] = {}
    for old_block, new_block in zip(function.blocks, clone.blocks):
        block_map[id(old_block)] = new_block
        for old_inst, new_inst in zip(old_block.instructions,
                                      new_block.instructions):
            inst_map[id(old_inst)] = new_inst
    return clone, inst_map, block_map


def replace_all_uses(function: Function, old: Value, new: Value) -> None:
    """Redirect every operand reference to ``old`` onto ``new``."""
    for block in function.blocks:
        for inst in block.instructions:
            if inst is old:
                continue
            inst.replace_operand(old, new)


def replace_comparison(function: Function, cmp: ICmp,
                       new_instructions: Sequence[Instruction],
                       replacement: Instruction) -> None:
    """Insert ``new_instructions`` before ``cmp`` and retire it.

    ``replacement`` (normally the last of the new instructions) takes over
    every use of ``cmp``; the old comparison is removed outright so the
    re-check gate never sees the unstable shape again.
    """
    block = cmp.parent
    if block is None:
        raise ValueError("comparison is not attached to a block")
    index = block.instructions.index(cmp)
    for offset, inst in enumerate(new_instructions):
        inst.parent = block
        block.instructions.insert(index + offset, inst)
    replace_all_uses(function, cmp, replacement)
    block.instructions.remove(cmp)


def _within_block_closure(block: BasicBlock,
                          roots: Iterable[Instruction]) -> List[Instruction]:
    """Instructions of ``block`` the roots transitively depend on."""
    needed: Dict[int, Instruction] = {}
    worklist = list(roots)
    while worklist:
        inst = worklist.pop()
        for operand in inst.operands:
            if isinstance(operand, Instruction) and operand.parent is block \
                    and id(operand) not in needed:
                needed[id(operand)] = operand
                worklist.append(operand)
    return list(needed.values())


def movable_prefix(block: BasicBlock, cmp: ICmp) -> List[Instruction]:
    """The instructions above ``cmp`` that the rest of the block can spare.

    Everything ``cmp``, the instructions after it, or the terminator
    transitively needs stays put; phis stay put; the rest — in original
    order — may be sunk below the guard.
    """
    index = block.instructions.index(cmp)
    kept_roots = block.instructions[index:]
    needed = {id(i) for i in _within_block_closure(block, kept_roots)}
    movable = []
    for inst in block.instructions[:index]:
        if isinstance(inst, Phi) or id(inst) in needed:
            continue
        movable.append(inst)
    return movable


def _used_by_phi(function: Function, instructions: Sequence[Instruction]) -> bool:
    moved = {id(i) for i in instructions}
    for block in function.blocks:
        for phi in block.phis():
            for value, _pred in phi.incoming:
                if id(value) in moved:
                    return True
    return False


def sink_instructions(function: Function, block: BasicBlock,
                      moved: Sequence[Instruction],
                      successor: BasicBlock) -> Optional[BasicBlock]:
    """Move ``moved`` (in order) from ``block`` into ``successor``.

    When the successor has other predecessors the edge is split first, so
    the sunk instructions run only when control arrives from ``block``.
    Returns the block that received the instructions, or ``None`` when the
    move is structurally impossible (a phi consumes a moved value, or the
    branch does not actually reach ``successor``).
    """
    terminator = block.terminator
    if not isinstance(terminator, CondBranch):
        return None
    if successor not in (terminator.if_true, terminator.if_false):
        return None
    if terminator.if_true is terminator.if_false:
        return None
    if _used_by_phi(function, moved):
        return None

    target = successor
    if len(successor.predecessors()) > 1:
        target = function.add_block()
        bridge = Branch(target=successor, location=terminator.location,
                        origin=terminator.origin)
        bridge.parent = target
        target.instructions.append(bridge)
        if terminator.if_true is successor:
            terminator.if_true = target
        else:
            terminator.if_false = target
        for phi in successor.phis():
            phi.incoming = [(value, target if pred is block else pred)
                            for value, pred in phi.incoming]

    insert_at = 0
    while insert_at < len(target.instructions) and \
            isinstance(target.instructions[insert_at], Phi):
        insert_at += 1
    for offset, inst in enumerate(moved):
        block.instructions.remove(inst)
        inst.parent = target
        target.instructions.insert(insert_at + offset, inst)
    return target


def sink_to_use_block(function: Function, block: BasicBlock,
                      moved: Sequence[Instruction]) -> Optional[BasicBlock]:
    """Move pure instructions from ``block`` to the block that uses them.

    The fallback when no direct successor works (e.g. a ``||`` chain whose
    joined branch sits between the guard and the use): when every use
    outside the moved set lives in one other block, the whole group can be
    recomputed at the top of that block instead.  Only side-effect-free
    instructions qualify — the group then executes on strictly fewer
    paths, all of which previously computed the same values.
    """
    if any(not isinstance(inst, _PURE_CLASSES) for inst in moved):
        return None
    if _used_by_phi(function, moved):
        return None
    moved_ids = {id(inst) for inst in moved}
    use_blocks = set()
    for inst in function.instructions():
        if id(inst) in moved_ids:
            continue
        for operand in inst.operands:
            if id(operand) in moved_ids:
                use_blocks.add(inst.parent)
    if len(use_blocks) != 1:
        return None
    target = use_blocks.pop()
    if target is block or target is None:
        return None

    insert_at = 0
    while insert_at < len(target.instructions) and \
            isinstance(target.instructions[insert_at], Phi):
        insert_at += 1
    for offset, inst in enumerate(moved):
        block.instructions.remove(inst)
        inst.parent = target
        target.instructions.insert(insert_at + offset, inst)
    return target


#: Instruction classes whose removal can only shrink the set of UB
#: conditions: pure value producers with no observable side effect in the
#: interpreter's semantics.  Stores, calls, and terminators stay.
_PURE_CLASSES = (BinaryOp, ICmp, Cast, GetElementPtr, Select, Load, Alloca)


def remove_dead_code(function: Function) -> int:
    """Drop unused pure instructions (to a fixed point); returns the count."""
    removed = 0
    while True:
        used: set = set()
        for inst in function.instructions():
            for operand in inst.operands:
                used.add(id(operand))
        for block in function.blocks:
            for phi in block.phis():
                for value, _pred in phi.incoming:
                    used.add(id(value))
        dead = [inst for inst in function.instructions()
                if isinstance(inst, _PURE_CLASSES) and id(inst) not in used]
        if not dead:
            return removed
        for inst in dead:
            assert inst.parent is not None
            inst.parent.instructions.remove(inst)
            removed += 1


def carries_ub_risk(inst: Instruction) -> bool:
    """Heuristic: does this instruction contribute Figure 3 UB conditions?"""
    from repro.ir.instructions import BinOpKind, Store

    if isinstance(inst, (Load, Store, GetElementPtr, Call)):
        return True
    if isinstance(inst, BinaryOp):
        risky = {BinOpKind.SDIV, BinOpKind.UDIV, BinOpKind.SREM,
                 BinOpKind.UREM, BinOpKind.SHL, BinOpKind.LSHR,
                 BinOpKind.ASHR}
        if inst.kind in risky:
            return True
        arithmetic = {BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL}
        return inst.kind in arithmetic and inst.type.is_integer() \
            and inst.type.signed
    return False
