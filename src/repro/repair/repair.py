"""Stage 6 orchestration: propose, verify, and report patches.

For every diagnostic the checker hands over, :func:`repair_diagnostic`
asks the template library for candidates and pushes each one through the
three-gate verifier in order (solver equivalence → stability re-check →
witness replay).  The first candidate to clear all three gates becomes the
diagnostic's :class:`RepairReport`, carrying a unified before/after IR diff
of the patched function.  Candidates are cheap and gates are expensive, so
gate order matters: the equivalence query kills semantically wrong
proposals before any profile re-checks run.

A diagnostic with no matching template is reported ``no template`` — an
honest gap, not a failure; one whose every candidate dies in a gate is
``rejected`` with per-gate counts, which the experiments tabulate as the
template library's error bars.
"""

from __future__ import annotations

import difflib
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.encode import FunctionEncoder
from repro.core.report import Diagnostic
from repro.core.ubconditions import UBCondition
from repro.exec.witness import solve_witness_model
from repro.ir.function import Function
from repro.ir.printer import print_function
from repro.obs.trace import span
from repro.repair.templates import DEFAULT_TEMPLATES, propose_candidates
from repro.repair.verify import (
    GateResult,
    prove_equivalence,
    recheck_stability,
    replay_original_witness,
)
from repro.solver.terms import Term

#: Gate keys, in verification order (also the sink/report vocabulary).
GATES = ("equivalence", "recheck", "replay")


class RepairStatus(enum.Enum):
    """Outcome of attempting to repair one diagnostic."""

    REPAIRED = "repaired"          # a candidate cleared all three gates
    REJECTED = "rejected"          # candidates existed; every one failed a gate
    NO_TEMPLATE = "no template"    # the library had nothing to propose


@dataclass
class RepairReport:
    """The repair verdict attached to one diagnostic."""

    status: RepairStatus
    template: str = ""
    description: str = ""
    #: Unified diff of the printed IR, original → patched.
    patch: str = ""
    reason: str = ""
    candidates_tried: int = 0
    #: Gate results of the *winning* candidate (all passed), or of the last
    #: rejected candidate (for post-mortems).
    gates: List[GateResult] = field(default_factory=list)
    #: gate key -> how many candidates that gate rejected.
    gate_rejections: Dict[str, int] = field(default_factory=dict)

    @property
    def repaired(self) -> bool:
        return self.status is RepairStatus.REPAIRED

    @property
    def all_gates_passed(self) -> bool:
        return len(self.gates) == len(GATES) and \
            all(gate.passed for gate in self.gates)

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON view for the engine's result sink."""
        return {
            "status": self.status.value,
            "template": self.template,
            "description": self.description,
            "patch": self.patch,
            "reason": self.reason,
            "candidates_tried": self.candidates_tried,
            "gates": [gate.as_dict() for gate in self.gates],
            "gate_rejections": dict(sorted(self.gate_rejections.items())),
        }

    def describe(self) -> str:
        if self.status is RepairStatus.REPAIRED:
            return (f"repair: {self.template} — {self.description} "
                    f"(all {len(self.gates)} gates passed)")
        if self.status is RepairStatus.REJECTED:
            rejections = ", ".join(f"{gate}={count}" for gate, count
                                   in sorted(self.gate_rejections.items()))
            return (f"repair: rejected after {self.candidates_tried} "
                    f"candidate(s) [{rejections}] — {self.reason}")
        return "repair: no template applies"


def unified_patch(original: Function, patched: Function) -> str:
    """A unified diff of the printed IR, the ``--patch-out`` payload."""
    before = print_function(original).splitlines(keepends=True)
    after = print_function(patched).splitlines(keepends=True)
    name = original.name
    diff = difflib.unified_diff(before, after,
                                fromfile=f"a/{name}.ll",
                                tofile=f"b/{name}.ll", lineterm="\n")
    text = "".join(line if line.endswith("\n") else line + "\n"
                   for line in diff)
    return text


def repair_diagnostic(function: Function, encoder: FunctionEncoder,
                      diagnostic: Diagnostic, finding,
                      hypothesis: Sequence[Term],
                      conditions: Sequence[UBCondition],
                      config, cache=None,
                      templates: Sequence = DEFAULT_TEMPLATES,
                      gate_memo: Optional[Dict[str, Tuple[GateResult,
                                                          Optional[GateResult]]]]
                      = None) -> RepairReport:
    """Propose and verify patches for one diagnostic (see module docstring).

    ``gate_memo`` caches equivalence/re-check results by patched-IR text:
    the elimination and simplification diagnostics of one unstable check
    usually propose the *same* candidate, whose first two gates depend only
    on the patched function — only the witness replay (gate 3) is specific
    to the diagnostic and always runs.
    """
    candidates = propose_candidates(function, diagnostic, finding,
                                    templates=templates)
    if not candidates:
        return RepairReport(RepairStatus.NO_TEMPLATE,
                            reason="no repair template matches this "
                                   "diagnostic")

    # The replay gate's witness model depends only on the diagnostic, not
    # on the candidate: solve it at most once, when the first candidate
    # reaches gate 3.
    witness_model_memo: List[Optional[Dict[str, int]]] = []

    def witness_model() -> Optional[Dict[str, int]]:
        if not witness_model_memo:
            witness_model_memo.append(solve_witness_model(
                encoder, hypothesis, conditions,
                timeout=config.solver_timeout,
                max_conflicts=config.max_conflicts))
        return witness_model_memo[0]

    rejections: Dict[str, int] = {}
    last_gates: List[GateResult] = []
    last_reason = ""
    # The equivalence proof is one query standing in for a hand-written
    # patch review; it gets the same 4x escalation the engine grants
    # starved functions.
    equivalence_timeout = None if config.solver_timeout is None \
        else config.solver_timeout * 4
    equivalence_conflicts = None if config.max_conflicts is None \
        else config.max_conflicts * 4
    for candidate in candidates:
        gates: List[GateResult] = []
        memo_key = None
        memoised: Optional[Tuple[GateResult, Optional[GateResult]]] = None
        if gate_memo is not None:
            memo_key = f"{candidate.template}\n" + \
                print_function(candidate.patched)
            memoised = gate_memo.get(memo_key)

        if memoised is not None:
            equivalence, recheck = memoised
        else:
            with span("repair.gate.equivalence", template=candidate.template):
                equivalence = prove_equivalence(
                    function, candidate.patched,
                    timeout=equivalence_timeout,
                    max_conflicts=equivalence_conflicts)
            recheck = None
            if equivalence.passed:
                with span("repair.gate.recheck", template=candidate.template):
                    recheck = recheck_stability(candidate.patched, config,
                                                cache=cache)
            if gate_memo is not None and memo_key is not None:
                gate_memo[memo_key] = (equivalence, recheck)

        gates.append(equivalence)
        if not equivalence.passed:
            rejections["equivalence"] = rejections.get("equivalence", 0) + 1
            last_gates, last_reason = gates, equivalence.reason
            continue

        assert recheck is not None
        gates.append(recheck)
        if not recheck.passed:
            rejections["recheck"] = rejections.get("recheck", 0) + 1
            last_gates, last_reason = gates, recheck.reason
            continue

        model = witness_model()
        if model is None:
            replay = GateResult("witness-replay", False,
                                "no witness model within the solver budget")
        else:
            with span("repair.gate.replay", template=candidate.template):
                replay = replay_original_witness(
                    candidate.patched, encoder, hypothesis, conditions,
                    fuel=config.witness_fuel, timeout=config.solver_timeout,
                    max_conflicts=config.max_conflicts,
                    seed=config.witness_seed, model=model)
        gates.append(replay)
        if not replay.passed:
            rejections["replay"] = rejections.get("replay", 0) + 1
            last_gates, last_reason = gates, replay.reason
            continue

        return RepairReport(
            RepairStatus.REPAIRED,
            template=candidate.template,
            description=candidate.description,
            patch=unified_patch(function, candidate.patched),
            candidates_tried=len(candidates),
            gates=gates,
            gate_rejections=rejections)

    return RepairReport(
        RepairStatus.REJECTED,
        reason=last_reason or "every candidate failed verification",
        candidates_tried=len(candidates),
        gates=last_gates,
        gate_rejections=rejections)


#: The checker hands stage 6 one of these per diagnostic.
RepairWorkItem = Tuple[Diagnostic, object, Sequence[Term],
                       Sequence[UBCondition]]


def repair_diagnostics(function: Function, encoder: FunctionEncoder,
                       work: Sequence[RepairWorkItem], config,
                       cache=None) -> Dict[str, int]:
    """Stage-6 entry point used by the checker.

    Repairs every ``(diagnostic, finding, hypothesis, conditions)`` item,
    attaches the :class:`RepairReport` to the diagnostic, and returns the
    counter dictionary the :class:`FunctionReport` records.
    """
    counts = {"attempted": 0, "repaired": 0, "rejected": 0, "no_template": 0}
    for gate in GATES:
        counts[f"gate_{gate}"] = 0
    gate_memo: Dict[str, Tuple[GateResult, Optional[GateResult]]] = {}
    for diagnostic, finding, hypothesis, conditions in work:
        report = repair_diagnostic(function, encoder, diagnostic, finding,
                                   hypothesis, conditions, config,
                                   cache=cache, gate_memo=gate_memo)
        diagnostic.repair = report
        counts["attempted"] += 1
        if report.status is RepairStatus.REPAIRED:
            counts["repaired"] += 1
        elif report.status is RepairStatus.REJECTED:
            counts["rejected"] += 1
        else:
            counts["no_template"] += 1
        for gate, rejected in report.gate_rejections.items():
            counts[f"gate_{gate}"] += rejected
    return counts
