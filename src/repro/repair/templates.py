"""The repair template library: candidate rewrites for unstable code.

Each template recognizes one family of unstable idioms from the paper's
case studies and proposes a *candidate* — a cloned function with the idiom
rewritten into a form whose value does not depend on undefined behavior.
Templates are deliberately optimistic: a proposal is only a hypothesis, and
every candidate must clear the three-gate verifier
(:mod:`repro.repair.verify`) before it is reported.  The contract a
candidate aims for is translation validation, not intent recovery: the
patched function must compute the same results as the original on every
input whose original execution is free of undefined behavior.

Templates:

* :class:`WidenSignedArithmeticTemplate` — recompute a comparison over a
  signed ``add``/``sub``/``mul`` in twice the width (``sext`` operands,
  wide arithmetic), so the paper's ``x + 100 < x`` overflow idiom stops
  depending on the narrow operation's overflow.
* :class:`ReorderGuardTemplate` — sink the UB-bearing instructions (the
  dominating dereference, division, shift, copy, ...) from above a guard
  into one successor, so the check executes before the operation it
  guards — the fix the kernel applied for CVE-2009-1897.
* :class:`GuardShiftTemplate` — replace ``(1 << x) == 0`` oversized-shift
  probes with the explicit bound test ``x >= width`` (the ext4 patch).
* :class:`PointerCompareToIntegerTemplate` — rewrite every pointer-sum
  comparison through ``uintptr``-style unsigned integer arithmetic
  (``ptrtoint`` + unsigned add), turning ``p + n < p`` wraparound idioms
  into defined unsigned-wrap bound checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.elimination import EliminationFinding
from repro.core.report import Diagnostic
from repro.core.ubconditions import UBKind
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinaryOp,
    BinOpKind,
    Call,
    Cast,
    CastKind,
    CondBranch,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Store,
)
from repro.ir.types import IntType
from repro.ir.values import Constant, Value
from repro.ir.verifier import verify_function
from repro.repair.rewrite import (
    carries_ub_risk,
    clone_with_map,
    movable_prefix,
    remove_dead_code,
    replace_all_uses,
    replace_comparison,
    sink_instructions,
    sink_to_use_block,
)


@dataclass
class RepairCandidate:
    """One verified-later proposal: a patched clone of the function."""

    template: str
    description: str
    patched: Function


#: (comparison, block the finding says dies) pairs a template starts from.
Culprit = Tuple[ICmp, Optional[BasicBlock]]


def culprit_comparisons(finding) -> List[Culprit]:
    """The comparisons whose instability a finding rests on.

    Simplification findings name the comparison directly.  For elimination
    findings the unstable block's fate is decided by the conditional
    branches of its predecessors, so those branch conditions are the
    candidates (paired with the doomed block, which reordering must avoid).
    """
    if isinstance(finding, EliminationFinding):
        culprits: List[Culprit] = []
        seen = set()
        for pred in finding.block.predecessors():
            terminator = pred.terminator
            if not isinstance(terminator, CondBranch):
                continue
            for cmp in _branch_comparisons(terminator.condition):
                if id(cmp) not in seen:
                    seen.add(id(cmp))
                    culprits.append((cmp, finding.block))
        return culprits
    instruction = getattr(finding, "instruction", None)
    if isinstance(instruction, ICmp):
        return [(instruction, None)]
    return []


def _branch_comparisons(condition: Value) -> List[ICmp]:
    """The comparisons a branch condition rests on.

    Short-circuit ``&&``/``||`` lowering routes the individual checks
    through a phi in a ``logical.end`` block: the right-hand check arrives
    as an incoming value, the left-hand one as the conditional branch of
    the incoming edge's source block.  One phi level recovers both.
    """
    from repro.ir.instructions import Phi

    if isinstance(condition, ICmp):
        return [condition]
    comparisons: List[ICmp] = []
    if isinstance(condition, Phi):
        for value, pred in condition.incoming:
            if isinstance(value, ICmp):
                comparisons.append(value)
            terminator = pred.terminator
            if isinstance(terminator, CondBranch) and \
                    isinstance(terminator.condition, ICmp):
                comparisons.append(terminator.condition)
    return comparisons


def diagnostic_kinds(diagnostic: Diagnostic, finding) -> frozenset:
    """The UB kinds a template should match against.

    The minimal-UB-set computation can come back empty (Figure 8 finds no
    *single* responsible condition); the dominating conditions of the
    finding are the honest fallback.
    """
    kinds = set(diagnostic.ub_kinds)
    if not kinds:
        kinds = {condition.kind
                 for condition in getattr(finding, "conditions", ())}
    return frozenset(kinds)


def _verified_candidate(template: str, description: str,
                        patched: Function) -> Optional[RepairCandidate]:
    """Package a mutated clone, discarding it when the IR no longer verifies."""
    if verify_function(patched):
        return None
    return RepairCandidate(template=template, description=description,
                           patched=patched)


class WidenSignedArithmeticTemplate:
    """Recompute ``(x op c) cmp y`` in twice the width (§6.2's widening fix)."""

    name = "widen-signed-arithmetic"
    #: Widening an i64 comparison needs 128-bit equivalence queries; the
    #: pure-Python solver budget is better spent elsewhere.
    MAX_WIDTH = 32

    _WIDENABLE = (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL)

    def propose(self, function: Function, diagnostic: Diagnostic,
                finding) -> List[RepairCandidate]:
        if UBKind.SIGNED_OVERFLOW not in diagnostic_kinds(diagnostic,
                                                           finding):
            return []
        candidates = []
        for cmp, _flagged in culprit_comparisons(finding):
            if not self._applicable(cmp):
                continue
            clone, inst_map, _ = clone_with_map(function)
            candidate = self._rewrite(clone, inst_map[id(cmp)])
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def _applicable(self, cmp: ICmp) -> bool:
        lhs, rhs = cmp.lhs, cmp.rhs
        if not (lhs.type.is_integer() and rhs.type.is_integer()):
            return False
        if lhs.type.bit_width > self.MAX_WIDTH:
            return False
        return any(self._is_narrow_signed_arith(op) for op in (lhs, rhs))

    def _is_narrow_signed_arith(self, value: Value) -> bool:
        return isinstance(value, BinaryOp) and value.kind in self._WIDENABLE \
            and value.type.is_integer() and value.type.signed

    def _cone_has_mul(self, cmp: ICmp) -> bool:
        worklist: List[Value] = [cmp.lhs, cmp.rhs]
        while worklist:
            value = worklist.pop()
            if self._is_narrow_signed_arith(value):
                if value.kind is BinOpKind.MUL:
                    return True
                worklist.extend([value.lhs, value.rhs])
        return False

    def _rewrite(self, clone: Function, cmp: ICmp) -> Optional[RepairCandidate]:
        width = cmp.lhs.type.bit_width
        # One extra bit makes add/sub exact (the encoder's own overflow
        # encoding uses the same headroom); a mul in the cone needs the
        # full doubled width.  Smaller widths keep the equivalence gate's
        # bit-blasted query tractable for the pure-Python solver.
        extra = width if self._cone_has_mul(cmp) else 1
        wide = IntType(width + extra, signed=True)
        new_insts: List[Instruction] = []
        meta = {"location": cmp.location, "origin": cmp.origin}

        def widen(value: Value) -> Value:
            if isinstance(value, Constant):
                return Constant(wide, value.value)
            if self._is_narrow_signed_arith(value) and \
                    value.type.bit_width == width:
                wide_op = BinaryOp(value.kind, widen(value.lhs),
                                   widen(value.rhs),
                                   clone.next_name("widen"), **meta)
                new_insts.append(wide_op)
                return wide_op
            signed = not (value.type.is_integer() and not value.type.signed)
            kind = CastKind.SEXT if signed else CastKind.ZEXT
            cast = Cast(kind, value, wide, clone.next_name("widen"), **meta)
            new_insts.append(cast)
            return cast

        wide_lhs = widen(cmp.lhs)
        wide_rhs = widen(cmp.rhs)
        new_cmp = ICmp(cmp.pred, wide_lhs, wide_rhs,
                       clone.next_name("widen"), **meta)
        new_insts.append(new_cmp)
        replace_comparison(clone, cmp, new_insts, new_cmp)
        remove_dead_code(clone)
        return _verified_candidate(
            self.name,
            f"recompute '{diag_fragment(cmp)}' in i{wide.width} so the "
            "comparison no longer depends on narrow signed overflow", clone)


class ReorderGuardTemplate:
    """Sink the UB-bearing prefix of a block below its guard."""

    name = "reorder-guard"

    KINDS = frozenset({
        UBKind.NULL_DEREF, UBKind.USE_AFTER_FREE, UBKind.USE_AFTER_REALLOC,
        UBKind.DIV_BY_ZERO, UBKind.OVERSIZED_SHIFT, UBKind.BUFFER_OVERFLOW,
        UBKind.MEMCPY_OVERLAP, UBKind.POINTER_OVERFLOW,
    })

    def propose(self, function: Function, diagnostic: Diagnostic,
                finding) -> List[RepairCandidate]:
        if not (self.KINDS & diagnostic_kinds(diagnostic, finding)):
            return []
        candidates: List[RepairCandidate] = []
        for cmp, flagged in culprit_comparisons(finding):
            block = cmp.parent
            if block is None:
                continue
            terminator = block.terminator
            if not (isinstance(terminator, CondBranch)
                    and terminator.condition is cmp):
                continue
            moved = movable_prefix(block, cmp)
            if not moved or not any(carries_ub_risk(i) for i in moved):
                continue
            successors = self._ordered_successors(terminator, cmp, flagged)
            if any(self._writes_memory(inst) for inst in moved):
                # Memory writes may only move to the side the heuristic
                # ranks safe: the equivalence gate compares return values
                # and the named external world, not caller-visible memory,
                # so the wrong side would not be caught there.  (free and
                # realloc are observationally inert in the interpreter's
                # model; their placement stays gate-checked.)
                successors = successors[:1]
            for successor in successors:
                candidate = self._rewrite(function, block, cmp, moved,
                                          successor)
                if candidate is not None:
                    candidates.append(candidate)
            candidate = self._rewrite_to_use_block(function, block, cmp, moved)
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    @staticmethod
    def _writes_memory(inst: Instruction) -> bool:
        if isinstance(inst, Store):
            return True
        return isinstance(inst, Call) and inst.callee not in ("free", "realloc")

    @staticmethod
    def _ordered_successors(terminator: CondBranch, cmp: ICmp,
                            flagged: Optional[BasicBlock]) -> List[BasicBlock]:
        """Try the successor the guarded operation belongs on first.

        For an elimination finding that is every successor except the doomed
        block; for a null-style ``p == 0`` check it is the false edge.  The
        other successor is still proposed — the verifier, not the heuristic,
        has the final word.
        """
        successors = [terminator.if_true, terminator.if_false]
        if flagged in successors:
            successors.sort(key=lambda block: block is flagged)
        elif cmp.pred is ICmpPred.EQ:
            successors.reverse()
        ordered: List[BasicBlock] = []
        for successor in successors:
            if successor not in ordered:
                ordered.append(successor)
        return ordered

    def _rewrite(self, function: Function, block: BasicBlock, cmp: ICmp,
                 moved: Sequence[Instruction],
                 successor: BasicBlock) -> Optional[RepairCandidate]:
        clone, inst_map, block_map = clone_with_map(function)
        target = sink_instructions(
            clone, block_map[id(block)],
            [inst_map[id(inst)] for inst in moved],
            block_map[id(successor)])
        if target is None:
            return None
        remove_dead_code(clone)
        return _verified_candidate(
            self.name,
            f"move {len(moved)} instruction(s) below the "
            f"'{diag_fragment(cmp)}' guard so the check executes before "
            "the operation it guards", clone)

    def _rewrite_to_use_block(self, function: Function, block: BasicBlock,
                              cmp: ICmp, moved: Sequence[Instruction],
                              ) -> Optional[RepairCandidate]:
        clone, inst_map, block_map = clone_with_map(function)
        target = sink_to_use_block(clone, block_map[id(block)],
                                   [inst_map[id(inst)] for inst in moved])
        if target is None:
            return None
        remove_dead_code(clone)
        return _verified_candidate(
            self.name,
            f"recompute {len(moved)} instruction(s) at their use site, "
            f"below the '{diag_fragment(cmp)}' guard", clone)


class GuardShiftTemplate:
    """``(c << x) == 0`` probes become the explicit bound test ``x >= width``."""

    name = "guard-oversized-shift"

    def propose(self, function: Function, diagnostic: Diagnostic,
                finding) -> List[RepairCandidate]:
        if UBKind.OVERSIZED_SHIFT not in diagnostic_kinds(diagnostic,
                                                           finding):
            return []
        candidates = []
        for cmp, _flagged in culprit_comparisons(finding):
            if self._match(cmp) is None:
                continue
            clone, inst_map, _ = clone_with_map(function)
            candidate = self._rewrite(clone, inst_map[id(cmp)])
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    @staticmethod
    def _match(cmp: ICmp) -> Optional[BinaryOp]:
        """The ``shl`` operand of an ``(odd_const << x) ==/!= 0`` probe."""
        if cmp.pred not in (ICmpPred.EQ, ICmpPred.NE):
            return None
        for shifted, other in ((cmp.lhs, cmp.rhs), (cmp.rhs, cmp.lhs)):
            if not (isinstance(other, Constant) and other.value == 0):
                continue
            if not (isinstance(shifted, BinaryOp)
                    and shifted.kind is BinOpKind.SHL):
                continue
            base = shifted.lhs
            # (c << x) mod 2^w is zero exactly when x >= w only for odd c;
            # even bases can shift out high bits early.
            if isinstance(base, Constant) and base.value % 2 == 1:
                return shifted
        return None

    def _rewrite(self, clone: Function, cmp: ICmp) -> Optional[RepairCandidate]:
        shifted = self._match(cmp)
        assert shifted is not None
        amount = shifted.rhs
        width = shifted.type.bit_width
        pred = ICmpPred.UGE if cmp.pred is ICmpPred.EQ else ICmpPred.ULT
        bound = Constant(amount.type, width)
        new_cmp = ICmp(pred, amount, bound, clone.next_name("guard"),
                       location=cmp.location, origin=cmp.origin)
        replace_comparison(clone, cmp, [new_cmp], new_cmp)
        remove_dead_code(clone)
        return _verified_candidate(
            self.name,
            f"replace '{diag_fragment(cmp)}' with the explicit shift bound "
            f"test 'amount {pred.value} {width}'", clone)


class PointerCompareToIntegerTemplate:
    """Pointer-sum comparisons through defined unsigned integer arithmetic."""

    name = "pointer-bound-check"

    def propose(self, function: Function, diagnostic: Diagnostic,
                finding) -> List[RepairCandidate]:
        if UBKind.POINTER_OVERFLOW not in diagnostic_kinds(diagnostic,
                                                            finding):
            return []
        if not any(self._has_gep_operand(cmp)
                   for cmp, _ in culprit_comparisons(finding)):
            return []
        clone, _, _ = clone_with_map(function)
        # The whole function is rewritten in one candidate: any surviving
        # pointer-sum comparison would keep contributing the very pointer
        # overflow assumption that made the culprit foldable, and the
        # re-check gate would reject the patch.
        rewritten = 0
        for block in list(clone.blocks):
            for cmp in [inst for inst in block.instructions
                        if isinstance(inst, ICmp)]:
                if self._rewrite_comparison(clone, cmp):
                    rewritten += 1
        if not rewritten:
            return []
        self._retire_non_memory_geps(clone)
        remove_dead_code(clone)
        candidate = _verified_candidate(
            self.name,
            f"compare {rewritten} pointer sum(s) as unsigned integers "
            "(ptrtoint + unsigned add), making wraparound checks defined",
            clone)
        return [candidate] if candidate is not None else []

    @staticmethod
    def _strip_pointer_casts(value: Value) -> Value:
        while isinstance(value, Cast) and value.type.is_pointer() \
                and value.value.type.is_pointer():
            value = value.value
        return value

    @classmethod
    def _has_gep_operand(cls, cmp: ICmp) -> bool:
        return any(isinstance(cls._strip_pointer_casts(op), GetElementPtr)
                   for op in (cmp.lhs, cmp.rhs))

    def _rewrite_comparison(self, clone: Function, cmp: ICmp) -> bool:
        if not self._has_gep_operand(cmp):
            return False
        if not (cmp.lhs.type.is_pointer() and cmp.rhs.type.is_pointer()):
            return False
        meta = {"location": cmp.location, "origin": cmp.origin}
        width = cmp.lhs.type.bit_width
        uint = IntType(width, signed=False)
        new_insts: List[Instruction] = []

        def as_integer(value: Value) -> Value:
            value = self._strip_pointer_casts(value)
            if isinstance(value, GetElementPtr):
                base = as_integer(value.pointer)
                index = value.index
                if index.type.bit_width != width:
                    kind = CastKind.ZEXT if index.type.bit_width < width \
                        else CastKind.TRUNC
                    index = Cast(kind, index, uint,
                                 clone.next_name("uptr"), **meta)
                    new_insts.append(index)
                else:
                    # Unsigned reinterpretation keeps the add/mul below free
                    # of signed-overflow conditions.
                    index = Cast(CastKind.BITCAST, index, uint,
                                 clone.next_name("uptr"), **meta)
                    new_insts.append(index)
                if value.element_size != 1:
                    index = BinaryOp(BinOpKind.MUL, index,
                                     Constant(uint, value.element_size),
                                     clone.next_name("uptr"), **meta)
                    new_insts.append(index)
                total = BinaryOp(BinOpKind.ADD, base, index,
                                 clone.next_name("uptr"), **meta)
                new_insts.append(total)
                return total
            if isinstance(value, Constant):
                return Constant(uint, value.value)
            cast = Cast(CastKind.PTRTOINT, value, uint,
                        clone.next_name("uptr"), **meta)
            new_insts.append(cast)
            return cast

        lhs = as_integer(cmp.lhs)
        rhs = as_integer(cmp.rhs)
        new_cmp = ICmp(cmp.pred, lhs, rhs, clone.next_name("uptr"), **meta)
        new_insts.append(new_cmp)
        replace_comparison(clone, cmp, new_insts, new_cmp)
        return True

    def _retire_non_memory_geps(self, clone: Function) -> None:
        """Replace geps that never feed a memory access with ``inttoptr``.

        A gep that survives only to feed casts or calls (the Figure 11
        ``strchr() + 1`` shape) would keep its pointer-overflow condition in
        the patched function and the rewritten comparison would stay
        foldable; recomputing the address as unsigned integer arithmetic
        removes the condition without touching any load/store gep — those
        keep their Figure 3 conditions intact.
        """
        for block in list(clone.blocks):
            for gep in [inst for inst in block.instructions
                        if isinstance(inst, GetElementPtr)]:
                if self._feeds_memory_access(clone, gep):
                    continue
                users = [inst for inst in clone.instructions()
                         if gep in inst.operands]
                if not users:
                    continue
                meta = {"location": gep.location, "origin": gep.origin}
                new_insts: List[Instruction] = []
                width = gep.type.bit_width
                uint = IntType(width, signed=False)

                def rebuild(value: Value) -> Value:
                    if isinstance(value, GetElementPtr):
                        base = rebuild(value.pointer)
                        index = Cast(CastKind.BITCAST, value.index, uint,
                                     clone.next_name("uptr"), **meta)
                        new_insts.append(index)
                        scaled: Value = index
                        if value.element_size != 1:
                            scaled = BinaryOp(BinOpKind.MUL, index,
                                              Constant(uint, value.element_size),
                                              clone.next_name("uptr"), **meta)
                            new_insts.append(scaled)
                        total = BinaryOp(BinOpKind.ADD, base, scaled,
                                         clone.next_name("uptr"), **meta)
                        new_insts.append(total)
                        return total
                    cast = Cast(CastKind.PTRTOINT, value, uint,
                                clone.next_name("uptr"), **meta)
                    new_insts.append(cast)
                    return cast

                as_int = rebuild(gep)
                pointer = Cast(CastKind.INTTOPTR, as_int, gep.type,
                               clone.next_name("uptr"), **meta)
                new_insts.append(pointer)
                index_at = block.instructions.index(gep)
                for offset, inst in enumerate(new_insts):
                    inst.parent = block
                    block.instructions.insert(index_at + offset, inst)
                replace_all_uses(clone, gep, pointer)

    @classmethod
    def _feeds_memory_access(cls, clone: Function,
                             gep: GetElementPtr) -> bool:
        from repro.ir.instructions import Load, Store

        derived = {id(gep)}
        changed = True
        while changed:
            changed = False
            for inst in clone.instructions():
                if id(inst) in derived:
                    continue
                if isinstance(inst, (Cast, GetElementPtr)) and \
                        any(id(op) in derived for op in inst.operands):
                    derived.add(id(inst))
                    changed = True
        for inst in clone.instructions():
            if isinstance(inst, Load) and id(inst.pointer) in derived:
                return True
            if isinstance(inst, Store) and id(inst.pointer) in derived:
                return True
        return False


def diag_fragment(cmp: ICmp) -> str:
    from repro.ir.printer import print_instruction

    return print_instruction(cmp)


#: Template application order: the intent-preserving rewrites first.
DEFAULT_TEMPLATES = (
    ReorderGuardTemplate(),
    GuardShiftTemplate(),
    PointerCompareToIntegerTemplate(),
    WidenSignedArithmeticTemplate(),
)


def propose_candidates(function: Function, diagnostic: Diagnostic, finding,
                       templates: Sequence = DEFAULT_TEMPLATES,
                       ) -> List[RepairCandidate]:
    """All candidates the template library offers for one diagnostic."""
    candidates: List[RepairCandidate] = []
    for template in templates:
        candidates.extend(template.propose(function, diagnostic, finding))
    return candidates
