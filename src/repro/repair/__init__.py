"""repro.repair — solver-verified auto-repair of unstable code (stage 6).

STACK stops at diagnosis: it proves a fragment is optimization-unstable
and leaves the fix to the developer — every case study in the paper ends
in a hand-written patch.  This package closes that loop mechanically with
the same generate-and-verify shape solver-backed superoptimizers use:

* :mod:`repro.repair.templates` — a library of candidate rewrites for the
  recurring unstable idioms (widen narrow signed arithmetic, reorder a
  null check above the dominating dereference, guard oversized shifts,
  compare pointer sums as unsigned integers),
* :mod:`repro.repair.verify` — the three-gate verifier: a solver
  equivalence proof on all UB-free inputs, a full stability re-check under
  every built-in compiler profile's -O3 pipeline, and a concrete replay of
  the diagnostic's own witness confirming it no longer splits compilers,
* :mod:`repro.repair.rewrite` — the IR surgery primitives the templates
  share (clone-with-maps, comparison splicing, guard-preserving sinking,
  dead-code cleanup),
* :mod:`repro.repair.repair` — orchestration: first candidate through all
  three gates wins, and the diagnostic gains a :class:`RepairReport` with
  a unified before/after IR diff.

Enable it with ``CheckerConfig(repair=True)`` (CLI: ``python -m repro
--repair``); per-diagnostic verdicts ride ``Diagnostic.repair``, and the
counters flow through ``FunctionReport``/``BugReport``/``RunStats`` and
the engine's JSONL sink.  See ``docs/REPAIR.md``.
"""

from repro.repair.repair import (
    GATES,
    RepairReport,
    RepairStatus,
    repair_diagnostic,
    repair_diagnostics,
    unified_patch,
)
from repro.repair.templates import (
    DEFAULT_TEMPLATES,
    RepairCandidate,
    propose_candidates,
)
from repro.repair.verify import (
    GateResult,
    prove_equivalence,
    recheck_stability,
    replay_original_witness,
)

__all__ = [
    "DEFAULT_TEMPLATES",
    "GATES",
    "GateResult",
    "RepairCandidate",
    "RepairReport",
    "RepairStatus",
    "propose_candidates",
    "prove_equivalence",
    "recheck_stability",
    "repair_diagnostic",
    "repair_diagnostics",
    "replay_original_witness",
    "unified_patch",
]
