"""The three-gate patch verifier: no candidate ships unproven.

A template proposal is only a hypothesis.  Before a patch is reported it
must clear, in order:

1. **Solver equivalence** (:func:`prove_equivalence`) — a single QF_BV
   query proving the patched function returns the same value as the
   original on every input whose *original* execution is free of undefined
   behavior.  Both functions are encoded into one shared
   :class:`~repro.solver.terms.TermManager`; arguments are equated, the
   external world is correlated the same way the witness layer does it
   (loads, external calls, allocas, and undefs match up by result name,
   partially-axiomatized divisions by operand congruence), the
   reachability-guarded well-defined assumption ``⋀ (reach(d) → ¬U_d)`` of
   the original is assumed, and ``ret_original ≠ ret_patched`` must come
   back UNSAT.  SAT means the template changed defined behavior; UNKNOWN
   (budget) is treated as a rejection — never as a pass.
2. **Stability re-check** (:func:`recheck_stability`) — the patched
   function is run back through the full :class:`StackChecker`, both as
   written and after each built-in :class:`CompilerProfile`'s most
   aggressive (-O3) pass pipeline, and must produce zero diagnostics every
   time.  Profiles with identical -O3 capability sets are checked once.
3. **Witness replay** (:func:`replay_original_witness`) — the solver model
   that justified the diagnostic (the input that trips the reported UB in
   the original) is replayed through the interpreter on the patched
   function, before and after the maximally UB-exploiting pipeline, and
   the two runs must agree: the very input that exposed the original
   instability can no longer make compilers disagree about the patch.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compilers.pipeline import OptimizationPipeline
from repro.compilers.profiles import ALL_PROFILES, CompilerProfile
from repro.core.encode import FunctionEncoder
from repro.core.ubconditions import UBCondition
from repro.exec.clone import clone_function
from repro.exec.interp import ExecStatus, ExternalEnv, run_function
from repro.exec.witness import FULL_CAPABILITIES, model_to_inputs, solve_witness_model
from repro.ir.function import Function
from repro.ir.instructions import Alloca, BinaryOp, BinOpKind, Call, Instruction, Load
from repro.ir.values import GlobalVariable, UndefValue
from repro.ir.verifier import verify_function
from repro.solver.solver import CheckResult, Solver
from repro.solver.terms import Term, TermManager


@dataclass
class GateResult:
    """Outcome of one verification gate."""

    gate: str
    passed: bool
    reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {"gate": self.gate, "passed": self.passed, "reason": self.reason}

    def describe(self) -> str:
        verdict = "passed" if self.passed else "REJECTED"
        return f"{self.gate}: {verdict}" + (f" — {self.reason}"
                                            if self.reason else "")


_DIVISION_KINDS = (BinOpKind.SDIV, BinOpKind.UDIV,
                   BinOpKind.SREM, BinOpKind.UREM)


def _return_term(encoder: FunctionEncoder) -> Optional[Term]:
    """The function's return value as one term: an ite-chain over returns."""
    manager = encoder.manager
    pairs: List[Tuple[Term, Term]] = []
    for inst in encoder.function.returns():
        if inst.value is None or inst.parent is None:
            return None
        pairs.append((encoder.block_reach(inst.parent),
                      encoder.term(inst.value)))
    if not pairs:
        return None
    result = pairs[-1][1]
    for reach, value in reversed(pairs[:-1]):
        result = manager.ite(reach, value, result)
    return result


def _external_world_correlation(original: Function, patched: Function,
                                enc_a: FunctionEncoder,
                                enc_b: FunctionEncoder) -> List[Term]:
    """Constraints making both encodings see one external world.

    Mirrors :meth:`repro.exec.interp.Interpreter._key`: loads, external
    calls, and allocas are correlated by result name, undef values and
    globals by object identity (clones share them), and partially
    axiomatized division results by operand congruence — same operands,
    same quotient.
    """
    manager = enc_a.manager
    constraints: List[Term] = []

    for arg_a, arg_b in zip(original.arguments, patched.arguments):
        constraints.append(manager.eq(enc_a.term(arg_a), enc_b.term(arg_b)))

    def named_externals(function: Function) -> Dict[str, Instruction]:
        out: Dict[str, Instruction] = {}
        for inst in function.instructions():
            if isinstance(inst, (Load, Alloca)) and inst.name:
                out[inst.name] = inst
            elif isinstance(inst, Call) and inst.name \
                    and not inst.type.is_void() \
                    and inst.callee not in FunctionEncoder.PURE_LIBRARY_FUNCTIONS:
                out[inst.name] = inst
        return out

    externals_b = named_externals(patched)
    for name, inst_a in named_externals(original).items():
        inst_b = externals_b.get(name)
        if inst_b is None or type(inst_a) is not type(inst_b):
            continue
        constraints.append(manager.eq(enc_a.term(inst_a), enc_b.term(inst_b)))

    divisions_b = {inst.name: inst for inst in patched.instructions()
                   if isinstance(inst, BinaryOp)
                   and inst.kind in _DIVISION_KINDS and inst.name}
    for inst_a in original.instructions():
        if not (isinstance(inst_a, BinaryOp)
                and inst_a.kind in _DIVISION_KINDS and inst_a.name):
            continue
        inst_b = divisions_b.get(inst_a.name)
        if inst_b is None or inst_b.kind is not inst_a.kind:
            continue
        same_operands = manager.and_(
            manager.eq(enc_a.term(inst_a.lhs), enc_b.term(inst_b.lhs)),
            manager.eq(enc_a.term(inst_a.rhs), enc_b.term(inst_b.rhs)))
        constraints.append(manager.implies(
            same_operands,
            manager.eq(enc_a.term(inst_a), enc_b.term(inst_b))))

    shared: List = []
    for inst in original.instructions():
        for operand in inst.operands:
            if isinstance(operand, (UndefValue, GlobalVariable)):
                shared.append(operand)
    for value in shared:
        if any(value in inst.operands for inst in patched.instructions()):
            constraints.append(manager.eq(enc_a.term(value),
                                          enc_b.term(value)))
    return constraints


def _well_defined_original(enc_a: FunctionEncoder) -> List[Term]:
    """⋀ (reach(d) → ¬U_d) over every instruction of the original."""
    manager = enc_a.manager
    assumptions: List[Term] = []
    for inst in enc_a.function.instructions():
        for condition in enc_a.ub_conditions(inst):
            assumptions.append(manager.implies(
                enc_a.instruction_reach(inst),
                manager.not_(condition.condition)))
    return assumptions


def prove_equivalence(original: Function, patched: Function,
                      timeout: Optional[float] = 5.0,
                      max_conflicts: Optional[int] = 50_000) -> GateResult:
    """Gate 1: original ≡ patched on every UB-free input of the original."""
    gate = "solver-equivalence"
    # Both functions are encoded under the same name into one manager, so
    # every unchanged subexpression hash-conses to the *same* term and the
    # disequality collapses onto the rewritten part.  A disjoint serial
    # range keeps the patched side's fresh variables (loads, calls, divs)
    # distinct; the correlation constraints below tie them back together
    # explicitly and soundly.
    manager = TermManager()
    enc_a = FunctionEncoder(original, manager)
    enc_b = FunctionEncoder(patched, manager, serial_start=1_000_000)

    ret_a = _return_term(enc_a)
    ret_b = _return_term(enc_b)
    if ret_a is None or ret_b is None:
        return GateResult(gate, False,
                          "function has no return value to compare")
    if ret_a.width != ret_b.width:
        return GateResult(gate, False, "return widths differ")

    terms: List[Term] = []
    terms.extend(_external_world_correlation(original, patched, enc_a, enc_b))
    terms.extend(_well_defined_original(enc_a))
    terms.append(manager.distinct(ret_a, ret_b))

    solver = Solver(manager, timeout=timeout, max_conflicts=max_conflicts)
    for term in terms:
        solver.add(term)
    for definitions in (enc_a.definitions_for(*terms),
                        enc_b.definitions_for(*terms)):
        for definition in definitions:
            solver.add(definition)

    verdict = solver.check()
    if verdict is CheckResult.UNSAT:
        return GateResult(gate, True,
                          "patched function proven equivalent on all "
                          "UB-free inputs")
    if verdict is CheckResult.SAT:
        return GateResult(gate, False,
                          "patched function differs from the original on a "
                          "UB-free input")
    return GateResult(gate, False, "equivalence query exceeded the solver "
                                   "budget")


def _unique_capability_sets(profiles: Sequence[CompilerProfile],
                            level: int = 3):
    """-O3 capability sets, deduplicated, each tagged with a profile name."""
    seen = {}
    for profile in profiles:
        capabilities = frozenset(profile.capabilities_at(level))
        seen.setdefault(capabilities, profile.name)
    return sorted(seen.items(), key=lambda item: item[1])


def recheck_stability(patched: Function, config,
                      profiles: Sequence[CompilerProfile] = tuple(ALL_PROFILES),
                      cache=None) -> GateResult:
    """Gate 2: zero diagnostics, as written and after every profile's -O3."""
    from repro.core.checker import StackChecker

    gate = "stability-recheck"
    recheck_config = dataclasses.replace(
        config, repair=False, validate_witnesses=False, classify=False,
        minimize_ub_sets=False)
    checker = StackChecker(recheck_config, query_cache=cache)

    report = checker.check_function(clone_function(patched))
    if report.diagnostics:
        return GateResult(gate, False,
                          f"patched function is still flagged "
                          f"({len(report.diagnostics)} diagnostic(s))")
    if report.timeouts:
        return GateResult(gate, False,
                          "re-check hit the solver budget; stability unproven")

    for capabilities, profile_name in _unique_capability_sets(profiles):
        optimized = clone_function(patched)
        OptimizationPipeline(capabilities=set(capabilities)).run_function(
            optimized)
        problems = verify_function(optimized)
        if problems:
            return GateResult(gate, False,
                              f"{profile_name} -O3 output fails the IR "
                              f"verifier: {problems[0]}")
        report = checker.check_function(optimized)
        if report.diagnostics:
            return GateResult(gate, False,
                              f"still flagged after the {profile_name} -O3 "
                              f"pipeline")
        if report.timeouts:
            return GateResult(gate, False,
                              f"re-check after {profile_name} -O3 hit the "
                              f"solver budget")
    checked = len(_unique_capability_sets(profiles))
    return GateResult(gate, True,
                      f"no diagnostics as written or under {checked} "
                      f"distinct -O3 capability sets "
                      f"({len(profiles)} profiles)")


def replay_original_witness(patched: Function, encoder: FunctionEncoder,
                            hypothesis: Sequence[Term],
                            conditions: Sequence[UBCondition],
                            fuel: int = 50_000,
                            timeout: Optional[float] = 5.0,
                            max_conflicts: Optional[int] = 50_000,
                            seed: int = 0,
                            model: Optional[Dict[str, int]] = None,
                            ) -> GateResult:
    """Gate 3: the diagnostic's own witness no longer splits the compilers.

    The model depends only on the diagnostic (not the candidate), so the
    orchestrator solves it once per diagnostic and passes it in; when
    ``model`` is omitted the gate solves it itself.
    """
    gate = "witness-replay"
    if model is None:
        model = solve_witness_model(encoder, hypothesis, conditions,
                                    timeout=timeout,
                                    max_conflicts=max_conflicts)
    if model is None:
        return GateResult(gate, False,
                          "no witness model within the solver budget")

    args, overrides = model_to_inputs(encoder, model)
    env = ExternalEnv(seed=seed, overrides=overrides, zero_fill=True)
    pre = run_function(patched, args, env=env, fuel=fuel)
    optimized = clone_function(patched)
    OptimizationPipeline(capabilities=set(FULL_CAPABILITIES)).run_function(
        optimized)
    post = run_function(optimized, args, env=env, fuel=fuel)

    for label, result in (("unoptimized", pre), ("optimized", post)):
        if result.status in (ExecStatus.OUT_OF_FUEL, ExecStatus.TRAPPED):
            return GateResult(gate, False,
                              f"{label} replay {result.status.value}"
                              + (f": {result.error}" if result.error else ""))
    if pre.observable() != post.observable():
        return GateResult(gate, False,
                          f"witness still diverges pre/post optimization: "
                          f"{pre.observable()} vs {post.observable()}")
    inputs = ", ".join(f"{argument.name}={value}" for argument, value
                       in zip(patched.arguments, args))
    return GateResult(gate, True,
                      f"original witness [{inputs}] agrees pre/post the "
                      f"full UB-exploiting pipeline")
