"""High-level convenience API.

These helpers tie the whole pipeline together the way ``stack-build`` does in
the paper (Figure 7): compile C-like source to IR, run the checker, and hand
back a :class:`~repro.core.report.BugReport`.

Typical use::

    from repro import check_source

    report = check_source(POINTER_OVERFLOW_SNIPPET)
    for bug in report.bugs:
        print(bug.describe())

Checking is *incremental* by default: the solver queries for one candidate
share an assumption-based solver context, and learned clauses plus
bit-blasted encodings persist per function (docs/SOLVER.md).  Pass
``CheckerConfig(incremental=False)`` to any helper here to solve every
query from scratch instead; verdicts are identical in both modes, and the
per-function reports carry the :class:`~repro.solver.solver.SolverStats`
counters (contexts, CDCL calls, restarts, blasted clauses) either way.

For corpus-scale work the engine entry points fan translation units out over
a worker pool with a shared solver-query cache layered above the
incremental solver::

    from repro import check_corpus

    result = check_corpus([("unit0", SOURCE0), ("unit1", SOURCE1)], workers=4)
    print(result.stats.as_dict())

Pass ``CheckerConfig(validate_witnesses=True)`` to any helper to run the
stage-5 concrete validation: each diagnostic's solver model is replayed
through the IR interpreter before and after the UB-exploiting optimizer,
and ``bug.witness`` records whether the warning was concretely confirmed
(docs/EXEC.md).

Pass ``CheckerConfig(repair=True)`` to also run the stage-6 auto-repair:
``bug.repair`` then carries the template rewrite that survived the
three-gate verifier (solver equivalence on UB-free inputs, stability
re-check under every compiler profile, witness replay) as a unified IR
diff, or the per-gate reasons no candidate did (docs/REPAIR.md).

To exercise the whole pipeline on programs nobody wrote by hand, the
generative fuzzing subsystem fans seeded MiniC/IR programs through these
same entry points (:func:`repro.fuzz.run_fuzz_campaign`, ``python -m repro
fuzz``, docs/FUZZ.md).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

from repro.core.checker import CheckerConfig, StackChecker
from repro.core.report import BugReport, FunctionReport
from repro.frontend.parser import parse
from repro.frontend.preprocessor import Preprocessor
from repro.frontend.sema import analyze
from repro.ir.function import Function, Module
from repro.lower.lowering import lower_translation_unit


def compile_source(source: str, filename: str = "<input>",
                   promote: bool = True,
                   preprocessor: Optional[Preprocessor] = None) -> Module:
    """Compile MiniC source text into an IR module (frontend + lowering)."""
    from repro.obs.trace import span

    with span("stage1.parse"):
        tree = parse(source, filename, preprocessor=preprocessor)
    with span("stage1.analyze"):
        unit = analyze(tree)
    with span("stage1.lower"):
        return lower_translation_unit(unit, module_name=filename,
                                      promote=promote)


def check_module(module: Module, config: Optional[CheckerConfig] = None,
                 cache: Optional["SolverQueryCache"] = None) -> BugReport:
    """Run the STACK checker over an already-compiled IR module."""
    checker = StackChecker(config, query_cache=cache)
    return checker.check_module(module)


def check_function(function: Function,
                   config: Optional[CheckerConfig] = None,
                   cache: Optional["SolverQueryCache"] = None) -> FunctionReport:
    """Run the STACK checker over a single IR function."""
    checker = StackChecker(config, query_cache=cache)
    return checker.check_function(function)


def check_source(source: str, filename: str = "<input>",
                 config: Optional[CheckerConfig] = None,
                 cache: Optional["SolverQueryCache"] = None) -> BugReport:
    """Compile ``source`` and check it for unstable code in one call."""
    module = compile_source(source, filename)
    return check_module(module, config, cache=cache)


# -- corpus-scale entry points (repro.engine) ---------------------------------------


def _engine(config: Optional[CheckerConfig], workers: int,
            cache_path: Optional[str], results_path: Optional[str],
            engine_config: Optional["EngineConfig"]) -> "CheckEngine":
    from repro.engine.engine import CheckEngine, EngineConfig

    if engine_config is None:
        engine_config = EngineConfig(
            workers=workers,
            checker=config if config is not None else CheckerConfig(),
            cache_path=cache_path,
            results_path=results_path,
        )
    return CheckEngine(engine_config)


def check_corpus(sources: Iterable[Union[Tuple[str, str], str, "WorkUnit"]],
                 config: Optional[CheckerConfig] = None,
                 workers: int = 0,
                 cache_path: Optional[str] = None,
                 results_path: Optional[str] = None,
                 engine_config: Optional["EngineConfig"] = None) -> "EngineResult":
    """Check a corpus of translation units through the engine.

    ``sources`` yields ``(name, source)`` pairs (or bare source strings /
    prepared :class:`~repro.engine.workunit.WorkUnit` objects).  With
    ``workers > 1`` units are checked by a process pool; verdicts are shared
    through the solver-query cache and, when ``cache_path`` is given,
    persisted so a rerun starts warm.  With ``config.cluster`` set, the
    corpus is deduplicated by structural clustering first: one
    representative per cluster of structurally identical functions is
    solved and confirmed members receive the propagated verdict
    (docs/CLUSTER.md).  Pass ``engine_config`` instead for full control
    over every knob (see docs/ENGINE.md).
    """
    engine = _engine(config, workers, cache_path, results_path, engine_config)
    return engine.check_corpus(sources)


def check_modules_parallel(modules: Iterable[Module],
                           config: Optional[CheckerConfig] = None,
                           workers: int = 2,
                           cache_path: Optional[str] = None,
                           results_path: Optional[str] = None,
                           engine_config: Optional["EngineConfig"] = None,
                           ) -> "EngineResult":
    """Check already-lowered IR modules through the engine worker pool."""
    engine = _engine(config, workers, cache_path, results_path, engine_config)
    return engine.check_modules(modules)
