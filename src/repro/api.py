"""High-level convenience API.

These helpers tie the whole pipeline together the way ``stack-build`` does in
the paper (Figure 7): compile C-like source to IR, run the checker, and hand
back a :class:`~repro.core.report.BugReport`.

Typical use::

    from repro import check_source

    report = check_source(POINTER_OVERFLOW_SNIPPET)
    for bug in report.bugs:
        print(bug.describe())
"""

from __future__ import annotations

from typing import Optional

from repro.core.checker import CheckerConfig, StackChecker
from repro.core.report import BugReport, FunctionReport
from repro.frontend.parser import parse
from repro.frontend.preprocessor import Preprocessor
from repro.frontend.sema import analyze
from repro.ir.function import Function, Module
from repro.lower.lowering import lower_translation_unit


def compile_source(source: str, filename: str = "<input>",
                   promote: bool = True,
                   preprocessor: Optional[Preprocessor] = None) -> Module:
    """Compile MiniC source text into an IR module (frontend + lowering)."""
    unit = analyze(parse(source, filename, preprocessor=preprocessor))
    return lower_translation_unit(unit, module_name=filename, promote=promote)


def check_module(module: Module, config: Optional[CheckerConfig] = None) -> BugReport:
    """Run the STACK checker over an already-compiled IR module."""
    checker = StackChecker(config)
    return checker.check_module(module)


def check_function(function: Function,
                   config: Optional[CheckerConfig] = None) -> FunctionReport:
    """Run the STACK checker over a single IR function."""
    checker = StackChecker(config)
    return checker.check_function(function)


def check_source(source: str, filename: str = "<input>",
                 config: Optional[CheckerConfig] = None) -> BugReport:
    """Compile ``source`` and check it for unstable code in one call."""
    module = compile_source(source, filename)
    return check_module(module, config)
