"""A small-step concrete interpreter for the IR.

This gives the IR of :mod:`repro.ir` an executable semantics — operationally,
in the small-step style (one instruction at a time over an explicit machine
state), so every intermediate state is observable and a run can be stopped at
the first undefined-behavior event or at a fuel limit.  The dialect executed
is the paper's C*: the deterministic "what the hardware does" semantics that
an unoptimizing compiler produces — two's-complement wraparound, defined
oversized shifts, division by zero yielding 0 — while the
:class:`~repro.exec.ubdetect.UBMonitor` records which of those steps were
undefined in C proper.

Machine state:

* an SSA environment mapping instruction results / arguments to ``width``-bit
  unsigned bit patterns,
* a byte-addressable :class:`Memory` with a bump allocator for allocas and
  allocation records (so lifetime events can be attributed),
* an :class:`ExternalEnv` supplying deterministic values for everything the
  function cannot compute itself — loads from un-backed addresses, results
  of external calls, undef values.  The environment is seeded (for the
  differential runner) and accepts per-instruction overrides keyed by result
  name (how the witness layer injects a solver model), so the same inputs
  replayed through the original and the optimized clone of a function see
  the *same* external world — the property differential testing relies on.

Calls follow inlining-consistent semantics: callees defined in the supplied
module are interpreted recursively (sharing fuel, bounded call depth), a few
library functions (``abs``/``labs``/``memcpy``/``free``/``realloc``) get
their C meaning, and everything else is an external value — exactly the
model :mod:`repro.core.encode` uses, so a solver model round-trips.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exec.ubdetect import UBEvent, UBMonitor, to_signed, to_unsigned
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    BinOpKind,
    Branch,
    Call,
    Cast,
    CastKind,
    CondBranch,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.types import type_size_bytes
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


class ExecStatus(enum.Enum):
    """How a concrete run ended."""

    RETURNED = "returned"
    STOPPED_ON_UB = "stopped on undefined behavior"
    OUT_OF_FUEL = "out of fuel"
    TRAPPED = "trapped"            # malformed IR or interpreter limit


class InterpTrap(Exception):
    """Raised internally when execution cannot continue."""


@dataclass
class ExecResult:
    """Outcome of one concrete run."""

    status: ExecStatus
    value: Optional[int] = None          # unsigned bit pattern of the return
    width: int = 0                       # bit width of the return value
    events: List[UBEvent] = field(default_factory=list)
    steps: int = 0
    block_trace: List[str] = field(default_factory=list)
    error: str = ""

    @property
    def returned(self) -> bool:
        return self.status is ExecStatus.RETURNED

    @property
    def ub_kinds(self) -> Set:
        return {event.kind for event in self.events}

    @property
    def first_event(self) -> Optional[UBEvent]:
        return self.events[0] if self.events else None

    def observable(self) -> Tuple[str, Optional[int]]:
        """The externally visible outcome, for divergence comparison."""
        return (self.status.value, self.value)

    def signed_value(self) -> Optional[int]:
        if self.value is None or self.width == 0:
            return self.value
        return to_signed(self.value, self.width)

    def describe(self) -> str:
        out = [f"status: {self.status.value}"]
        if self.value is not None:
            out.append(f"returned {self.signed_value()} "
                       f"(0x{self.value:x}, i{self.width})")
        out.append(f"{self.steps} steps over blocks "
                   f"{' -> '.join(self.block_trace) or '<none>'}")
        for event in self.events:
            out.append(f"UB: {event.describe()}")
        if self.error:
            out.append(f"error: {self.error}")
        return "\n".join(out)


def seed_hash(seed: int, key: str, width: int) -> int:
    """The deterministic seed-derivation primitive of the exec subsystem.

    One definition on purpose: the external environment and the
    differential runner's argument vectors must draw from the same stream,
    or seeded runs stop being comparable.
    """
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << width) - 1)


class ExternalEnv:
    """Deterministic source of every value the program cannot compute.

    ``overrides`` maps instruction result names (and ``arg.<name>`` /
    ``undef.<name>`` keys) to concrete values; the witness layer fills it
    from a solver model.  Everything else is derived from ``seed`` by
    hashing, so two runs with the same environment see the same world.
    ``zero_fill`` makes un-overridden values 0 instead of hash noise, which
    matches the solver's default model completion.
    """

    def __init__(self, seed: int = 0, overrides: Optional[Dict[str, int]] = None,
                 zero_fill: bool = True) -> None:
        self.seed = seed
        self.overrides: Dict[str, int] = dict(overrides or {})
        self.zero_fill = zero_fill

    def _hash(self, key: str, width: int) -> int:
        return seed_hash(self.seed, key, width)

    def value_for(self, key: str, width: int) -> int:
        if key in self.overrides:
            return to_unsigned(self.overrides[key], width)
        if self.zero_fill:
            return 0
        return self._hash(key, width)

    def byte_at(self, address: int) -> int:
        if self.zero_fill:
            return 0
        return self._hash(f"mem@{address}", 8)


@dataclass
class Allocation:
    """One block of interpreter-owned memory."""

    base: int
    size: int
    name: str = ""
    freed: bool = False


class Memory:
    """Byte-addressable little-endian memory with a bump allocator.

    Addresses never handed out by :meth:`allocate` (e.g. pointer bit patterns
    chosen by the solver) are *external*: loads from them fall back to the
    :class:`ExternalEnv`, stores to them are remembered in the same byte
    store, so the program observes a consistent world either way.
    """

    #: Allocas live well away from 0 so null checks behave.
    BASE_ADDRESS = 0x10_0000

    def __init__(self, env: ExternalEnv) -> None:
        self.env = env
        self._bytes: Dict[int, int] = {}
        self._next = self.BASE_ADDRESS
        self.allocations: List[Allocation] = []

    def allocate(self, size: int, name: str = "") -> int:
        size = max(1, size)
        base = self._next
        self._next += (size + 15) & ~15
        self.allocations.append(Allocation(base, size, name))
        return base

    def store(self, address: int, value: int, nbytes: int) -> None:
        for i in range(nbytes):
            self._bytes[(address + i) & ((1 << 64) - 1)] = (value >> (8 * i)) & 0xFF

    def load(self, address: int, nbytes: int) -> Tuple[int, bool]:
        """Read ``nbytes`` little-endian; False when any byte was external."""
        value = 0
        backed = True
        for i in range(nbytes):
            addr = (address + i) & ((1 << 64) - 1)
            byte = self._bytes.get(addr)
            if byte is None:
                byte = self.env.byte_at(addr)
                backed = False
            value |= byte << (8 * i)
        return value, backed


class Interpreter:
    """Interprets one function call (and, transitively, defined callees)."""

    LIBRARY_CALLEES = {"abs", "labs", "memcpy", "free", "realloc"}
    MEMCPY_CAP = 4096              # bytes actually copied for huge lengths

    def __init__(self, function: Function, module: Optional[Module] = None,
                 env: Optional[ExternalEnv] = None, fuel: int = 50_000,
                 stop_on_ub: bool = False, max_call_depth: int = 8) -> None:
        self.function = function
        self.module = module
        self.env = env if env is not None else ExternalEnv()
        self.fuel = fuel
        self.stop_on_ub = stop_on_ub
        self.max_call_depth = max_call_depth
        self.monitor = UBMonitor()
        self.memory = Memory(self.env)
        self._globals: Dict[str, int] = {}
        self._steps = 0
        self._trace: List[str] = []

    # -- public API -------------------------------------------------------------

    def run(self, args: Sequence[int] = ()) -> ExecResult:
        """Execute the function on concrete ``args`` (signed ints accepted)."""
        try:
            value, width = self._call(self.function, list(args), depth=0)
            status = ExecStatus.RETURNED
            error = ""
        except _StopOnUB:
            value, width, error = None, 0, ""
            status = ExecStatus.STOPPED_ON_UB
        except _OutOfFuel:
            value, width, error = None, 0, ""
            status = ExecStatus.OUT_OF_FUEL
        except InterpTrap as trap:
            value, width = None, 0
            status, error = ExecStatus.TRAPPED, str(trap)
        return ExecResult(status=status, value=value, width=width,
                          events=list(self.monitor.events), steps=self._steps,
                          block_trace=list(self._trace), error=error)

    # -- the machine ------------------------------------------------------------

    def _call(self, function: Function, args: List[int],
              depth: int) -> Tuple[Optional[int], int]:
        if depth > self.max_call_depth:
            raise InterpTrap(f"call depth exceeds {self.max_call_depth}")
        if not function.blocks:
            raise InterpTrap(f"function @{function.name} has no body")
        values: Dict[int, int] = {}
        for argument, value in zip(function.arguments, args):
            width = argument.type.bit_width
            values[id(argument)] = to_unsigned(value, width)
        for argument in function.arguments[len(args):]:
            width = argument.type.bit_width
            values[id(argument)] = self.env.value_for(
                f"arg.{argument.name}", width)

        block = function.entry
        previous: Optional[BasicBlock] = None
        while True:
            self._trace.append(block.name)
            self._resolve_phis(block, previous, values)
            transfer = None
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    continue
                self._tick()
                self.monitor.begin_step(self._steps)
                transfer = self._execute(inst, values, depth)
                if transfer is not None:
                    break
            if transfer is None:
                raise InterpTrap(f"block %{block.name} fell through")
            kind, payload = transfer
            if kind == "return":
                return payload
            previous, block = block, payload

    def _resolve_phis(self, block: BasicBlock, previous: Optional[BasicBlock],
                      values: Dict[int, int]) -> None:
        phis = block.phis()
        if not phis:
            return
        resolved: List[Tuple[Phi, int]] = []
        for phi in phis:
            self._tick()
            incoming = phi.incoming_for(previous) if previous is not None else None
            if incoming is None:
                raise InterpTrap(
                    f"phi %{phi.name} has no incoming value for predecessor "
                    f"%{previous.name if previous else '<entry>'}")
            resolved.append((phi, self._value(incoming, values)))
        # Phis read their operands simultaneously, before any is written.
        for phi, value in resolved:
            values[id(phi)] = to_unsigned(value, phi.type.bit_width)

    def _execute(self, inst: Instruction, values: Dict[int, int],
                 depth: int):
        if isinstance(inst, BinaryOp):
            values[id(inst)] = self._binop(inst, values)
        elif isinstance(inst, ICmp):
            values[id(inst)] = self._icmp(inst, values)
        elif isinstance(inst, Select):
            cond = self._value(inst.condition, values)
            chosen = inst.on_true if cond != 0 else inst.on_false
            values[id(inst)] = to_unsigned(self._value(chosen, values),
                                           inst.type.bit_width)
        elif isinstance(inst, Cast):
            values[id(inst)] = self._cast(inst, values)
        elif isinstance(inst, Alloca):
            values[id(inst)] = self.memory.allocate(
                type_size_bytes(inst.allocated_type), inst.name)
        elif isinstance(inst, Load):
            values[id(inst)] = self._load(inst, values)
        elif isinstance(inst, Store):
            self._store(inst, values)
        elif isinstance(inst, GetElementPtr):
            values[id(inst)] = self._gep(inst, values)
        elif isinstance(inst, Call):
            result = self._call_instruction(inst, values, depth)
            if not inst.type.is_void():
                values[id(inst)] = result
        elif isinstance(inst, Branch):
            return ("branch", inst.target)
        elif isinstance(inst, CondBranch):
            cond = self._value(inst.condition, values)
            return ("branch", inst.if_true if cond != 0 else inst.if_false)
        elif isinstance(inst, Return):
            if inst.value is None:
                return ("return", (None, 0))
            width = inst.value.type.bit_width
            return ("return", (to_unsigned(self._value(inst.value, values),
                                           width), width))
        elif isinstance(inst, Unreachable):
            raise InterpTrap("executed an unreachable instruction")
        else:
            raise InterpTrap(f"cannot interpret {type(inst).__name__}")
        return None

    # -- operators ----------------------------------------------------------------

    def _binop(self, inst: BinaryOp, values: Dict[int, int]) -> int:
        width = inst.type.bit_width
        lhs = to_unsigned(self._value(inst.lhs, values), width)
        rhs = to_unsigned(self._value(inst.rhs, values), width)
        self.monitor.check_binop(inst, lhs, rhs)
        self._maybe_stop()
        slhs, srhs = to_signed(lhs, width), to_signed(rhs, width)
        kind = inst.kind
        if kind is BinOpKind.ADD:
            result = lhs + rhs
        elif kind is BinOpKind.SUB:
            result = lhs - rhs
        elif kind is BinOpKind.MUL:
            result = lhs * rhs
        elif kind is BinOpKind.SDIV:
            result = 0 if rhs == 0 else _truncdiv(slhs, srhs)
        elif kind is BinOpKind.UDIV:
            result = 0 if rhs == 0 else lhs // rhs
        elif kind is BinOpKind.SREM:
            result = 0 if rhs == 0 else slhs - srhs * _truncdiv(slhs, srhs)
        elif kind is BinOpKind.UREM:
            result = 0 if rhs == 0 else lhs % rhs
        elif kind is BinOpKind.SHL:
            result = lhs << rhs if rhs < width else 0
        elif kind is BinOpKind.LSHR:
            result = lhs >> rhs if rhs < width else 0
        elif kind is BinOpKind.ASHR:
            if rhs < width:
                result = slhs >> rhs
            else:
                result = -1 if slhs < 0 else 0
        elif kind is BinOpKind.AND:
            result = lhs & rhs
        elif kind is BinOpKind.OR:
            result = lhs | rhs
        elif kind is BinOpKind.XOR:
            result = lhs ^ rhs
        else:
            raise InterpTrap(f"unhandled binary op {kind}")
        return to_unsigned(result, width)

    _ICMP_SIGNED = {ICmpPred.SLT, ICmpPred.SLE, ICmpPred.SGT, ICmpPred.SGE}

    def _icmp(self, inst: ICmp, values: Dict[int, int]) -> int:
        width = inst.lhs.type.bit_width
        lhs = to_unsigned(self._value(inst.lhs, values), width)
        rhs = to_unsigned(self._value(inst.rhs, values), width)
        if inst.pred in self._ICMP_SIGNED:
            lhs, rhs = to_signed(lhs, width), to_signed(rhs, width)
        pred = inst.pred
        if pred is ICmpPred.EQ:
            result = lhs == rhs
        elif pred is ICmpPred.NE:
            result = lhs != rhs
        elif pred in (ICmpPred.ULT, ICmpPred.SLT):
            result = lhs < rhs
        elif pred in (ICmpPred.ULE, ICmpPred.SLE):
            result = lhs <= rhs
        elif pred in (ICmpPred.UGT, ICmpPred.SGT):
            result = lhs > rhs
        else:
            result = lhs >= rhs
        return int(result)

    def _cast(self, inst: Cast, values: Dict[int, int]) -> int:
        source_width = inst.value.type.bit_width
        target_width = inst.type.bit_width
        source = to_unsigned(self._value(inst.value, values), source_width)
        if inst.kind is CastKind.SEXT:
            return to_unsigned(to_signed(source, source_width), target_width)
        # trunc / zext / ptrtoint / inttoptr / bitcast: the bit pattern,
        # truncated or zero-extended to the target width.
        return to_unsigned(source, target_width)

    # -- memory -------------------------------------------------------------------

    def _load(self, inst: Load, values: Dict[int, int]) -> int:
        address = self._value(inst.pointer, values)
        root, root_value = self._pointer_root(inst.pointer, values)
        self.monitor.check_access(inst, root_value, address,
                                  root_name=root.short_name())
        self._maybe_stop()
        width = inst.type.bit_width
        nbytes = type_size_bytes(inst.type)
        value, backed = self.memory.load(address, nbytes)
        if not backed:
            key = self._key(inst)
            if key in self.env.overrides:
                return to_unsigned(self.env.overrides[key], width)
            if not self.env.zero_fill:
                return self.env.value_for(key, width)
        return to_unsigned(value, width)

    def _store(self, inst: Store, values: Dict[int, int]) -> None:
        address = self._value(inst.pointer, values)
        root, root_value = self._pointer_root(inst.pointer, values)
        self.monitor.check_access(inst, root_value, address,
                                  root_name=root.short_name())
        self._maybe_stop()
        value = self._value(inst.value, values)
        self.memory.store(address, value, type_size_bytes(inst.value.type))

    def _gep(self, inst: GetElementPtr, values: Dict[int, int]) -> int:
        width = inst.type.bit_width
        pointer = to_unsigned(self._value(inst.pointer, values), width)
        index = to_unsigned(self._value(inst.index, values), width)
        self.monitor.check_gep(inst, pointer, index, width)
        self._maybe_stop()
        return to_unsigned(pointer + to_signed(index, width) * inst.element_size,
                           width)

    def _pointer_root(self, pointer: Value,
                      values: Dict[int, int]) -> Tuple[Value, int]:
        """The GEP/cast chain root and its concrete value (for null/UAF checks)."""
        current = pointer
        while True:
            if isinstance(current, GetElementPtr):
                current = current.pointer
            elif isinstance(current, Cast) and current.value.type.is_pointer():
                current = current.value
            else:
                return current, self._value(current, values)

    # -- calls --------------------------------------------------------------------

    def _call_instruction(self, inst: Call, values: Dict[int, int],
                          depth: int) -> int:
        args = [self._value(arg, values) for arg in inst.args]
        width = inst.type.bit_width if not inst.type.is_void() else 8

        if inst.callee in ("abs", "labs") and args:
            arg_width = inst.args[0].type.bit_width
            self.monitor.check_abs(inst, args[0], arg_width)
            self._maybe_stop()
            signed = to_signed(args[0], arg_width)
            return to_unsigned(-signed if signed < 0 else signed, width)
        if inst.callee == "memcpy" and len(args) >= 3:
            self.monitor.check_memcpy(inst, args[0], args[1], args[2])
            self._maybe_stop()
            for i in range(min(args[2], self.MEMCPY_CAP)):
                byte, _backed = self.memory.load(args[1] + i, 1)
                self.memory.store(args[0] + i, byte, 1)
            return to_unsigned(args[0], width)
        if inst.callee == "free" and args:
            self.monitor.note_free(inst, args[0])
            for allocation in self.memory.allocations:
                if allocation.base == args[0]:
                    allocation.freed = True
            return 0
        if inst.callee == "realloc" and args:
            result = self._external_value(inst, width)
            self.monitor.note_realloc(inst, args[0], result)
            return result

        key = self._key(inst)
        if key in self.env.overrides:
            return to_unsigned(self.env.overrides[key], width)
        if self.module is not None:
            callee = self.module.get_function(inst.callee)
            if callee is not None and not callee.is_declaration:
                value, callee_width = self._call(callee, args, depth + 1)
                if value is None:
                    return 0
                return to_unsigned(to_signed(value, max(1, callee_width)), width)
        return self._external_value(inst, width)

    def _external_value(self, inst: Instruction, width: int) -> int:
        return self.env.value_for(self._key(inst), width)

    # -- plumbing -----------------------------------------------------------------

    def _value(self, value: Value, values: Dict[int, int]) -> int:
        if isinstance(value, Constant):
            return value.as_unsigned()
        known = values.get(id(value))
        if known is not None:
            return known
        if isinstance(value, UndefValue):
            result = self.env.value_for(f"undef.{value.name}",
                                        value.type.bit_width)
            values[id(value)] = result
            return result
        if isinstance(value, GlobalVariable):
            address = self._globals.get(value.name)
            if address is None:
                address = self.memory.allocate(8, name=f"@{value.name}")
                self._globals[value.name] = address
            values[id(value)] = address
            return address
        raise InterpTrap(f"use of undefined value {value.short_name()}")

    def _key(self, inst: Instruction) -> str:
        """Stable per-instruction key for the external environment.

        Result names are unique within a function and survive cloning and
        optimization, so the original and the optimized copy of a function
        draw the same external values.
        """
        if inst.name:
            return inst.name
        block = inst.parent
        if block is not None:
            return f"@{block.name}#{block.instructions.index(inst)}"
        return f"@?{inst.opcode()}"

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.fuel:
            raise _OutOfFuel()

    def _maybe_stop(self) -> None:
        if self.stop_on_ub and self.monitor.events:
            raise _StopOnUB()


class _OutOfFuel(Exception):
    pass


class _StopOnUB(Exception):
    pass


def _truncdiv(a: int, b: int) -> int:
    """C's truncation-toward-zero signed division."""
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def run_function(function: Function, args: Sequence[int] = (),
                 module: Optional[Module] = None,
                 env: Optional[ExternalEnv] = None,
                 fuel: int = 50_000, stop_on_ub: bool = False) -> ExecResult:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    interpreter = Interpreter(function, module=module, env=env, fuel=fuel,
                              stop_on_ub=stop_on_ub)
    return interpreter.run(args)
