"""Witness replay: from solver model to confirmed diagnostic.

Every elimination/simplification diagnostic rests on a SAT/UNSAT pair: the
fragment is live under plain C* semantics (SAT — some input reaches it) but
dead under the well-defined-program assumption Δ (UNSAT — every such input
first triggers undefined behavior).  The SAT half has a *model*, and a model
is an input vector.  This module extracts it, maps it onto interpreter
inputs, and replays the function concretely on both sides of the
two-compiler divide:

1. solve ``H ∧ (⋁ U_d over the reported minimal set)`` for a model — an
   input that reaches the fragment *and* trips the reported UB (falling
   back to plain ``H`` when the strengthened query is not satisfiable
   within budget),
2. run the function as written under that input, recording concrete UB
   events (:mod:`repro.exec.ubdetect`),
3. run a clone optimized by the full UB-exploiting pipeline
   (:mod:`repro.compilers`) under the *same* input and external world,
4. compare.

A diagnostic is **confirmed** when the witness concretely triggers at least
one UB condition from the reported minimal set — the optimizer is then
entitled to any divergence the replay observed, which is exactly the
paper's argument for why the warning matters.  A witness that triggers no
reported UB marks the diagnostic a probable false positive
(**unconfirmed**); a divergence *without* any UB would be a miscompile and
is surfaced in the report's reason.  Budget exhaustion (no model, fuel) is
**inconclusive**.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compilers.passes import Capability
from repro.compilers.pipeline import OptimizationPipeline
from repro.core.encode import FunctionEncoder
from repro.core.report import Diagnostic
from repro.core.ubconditions import UBCondition, UBKind
from repro.exec.clone import clone_function
from repro.exec.interp import ExecResult, ExecStatus, ExternalEnv, run_function
from repro.ir.function import Function, Module
from repro.ir.instructions import Call, Instruction, Load
from repro.obs.trace import span
from repro.solver.solver import CheckResult, Solver
from repro.solver.terms import Term


class WitnessVerdict(enum.Enum):
    """Outcome of replaying one diagnostic's witness."""

    CONFIRMED = "confirmed"            # witness trips the reported UB concretely
    UNCONFIRMED = "unconfirmed"        # replayed, but no reported UB fired
    INCONCLUSIVE = "inconclusive"      # no model / out of fuel / trap


@dataclass
class WitnessReport:
    """The concrete evidence attached to one diagnostic."""

    verdict: WitnessVerdict
    reason: str = ""
    #: Function inputs the witness used (argument name -> bit pattern).
    inputs: Dict[str, int] = field(default_factory=dict)
    observed_kinds: Tuple[UBKind, ...] = ()
    reported_kinds: Tuple[UBKind, ...] = ()
    diverged: bool = False
    pre: Optional[Tuple[str, Optional[int]]] = None    # observable() pairs
    post: Optional[Tuple[str, Optional[int]]] = None

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON view for the engine's result sink."""
        return {
            "verdict": self.verdict.value,
            "reason": self.reason,
            "inputs": {name: value for name, value in sorted(self.inputs.items())},
            "observed_kinds": [kind.value for kind in self.observed_kinds],
            "reported_kinds": [kind.value for kind in self.reported_kinds],
            "diverged": self.diverged,
            "pre": list(self.pre) if self.pre is not None else None,
            "post": list(self.post) if self.post is not None else None,
        }

    def describe(self) -> str:
        inputs = ", ".join(f"{k}={v}" for k, v in sorted(self.inputs.items()))
        parts = [f"witness {self.verdict.value}"]
        if inputs:
            parts.append(f"on inputs [{inputs}]")
        if self.diverged:
            parts.append("(pre/post optimization runs diverge)")
        if self.reason:
            parts.append(f"- {self.reason}")
        return " ".join(parts)


#: Every UB-exploiting capability at once: the "second compiler" of the
#: paper's model, maximally entitled to exploit the well-defined assumption.
FULL_CAPABILITIES = frozenset(Capability)


def solve_witness_model(encoder: FunctionEncoder, hypothesis: Sequence[Term],
                        conditions: Sequence[UBCondition],
                        timeout: Optional[float] = 5.0,
                        max_conflicts: Optional[int] = 50_000,
                        ) -> Optional[Dict[str, int]]:
    """A model of ``hypothesis`` that also trips a reported UB condition.

    First tries the strengthened query (hypothesis ∧ ⋁ U_d); if that is not
    satisfiable within budget, falls back to the plain hypothesis — whose
    satisfiability is what produced the finding in the first place.
    """
    manager = encoder.manager
    attempts: List[List[Term]] = []
    live = [c.condition for c in conditions
            if not (c.condition.is_const() and not c.condition.value)]
    if live:
        attempts.append(list(hypothesis) + [manager.or_(*live)])
    attempts.append(list(hypothesis))

    for terms in attempts:
        solver = Solver(manager, timeout=timeout, max_conflicts=max_conflicts)
        for term in terms:
            solver.add(term)
        for definition in encoder.definitions_for(*terms):
            solver.add(definition)
        if solver.check() is CheckResult.SAT:
            return solver.model().as_dict()
    return None


def model_to_inputs(encoder: FunctionEncoder,
                    model: Dict[str, int]) -> Tuple[List[int], Dict[str, int]]:
    """Split a model into argument values and external-value overrides.

    Arguments are looked up under the encoder's ``<fn>.arg.<name>`` naming.
    Loads and calls were encoded as fresh variables; whenever the model
    constrains one, the interpreter's external environment is overridden at
    the matching instruction (keyed by result name, which survives cloning
    and optimization), so the concrete run sees the world the solver chose.
    """
    function = encoder.function
    args = [model.get(f"{function.name}.arg.{argument.name}", 0)
            for argument in function.arguments]

    overrides: Dict[str, int] = {}
    for inst in function.instructions():
        if not isinstance(inst, (Load, Call)) or inst.type.is_void():
            continue
        if not inst.name:
            continue
        term = encoder.term(inst)
        if term.is_var() and term.name in model:
            overrides[inst.name] = model[term.name]
    return args, overrides


def replay_diagnostic(function: Function, encoder: FunctionEncoder,
                      diagnostic: Diagnostic, hypothesis: Sequence[Term],
                      conditions: Sequence[UBCondition],
                      module: Optional[Module] = None,
                      fuel: int = 50_000,
                      timeout: Optional[float] = 5.0,
                      max_conflicts: Optional[int] = 50_000,
                      seed: int = 0) -> WitnessReport:
    """Extract a witness for one diagnostic and replay it pre/post optimizer."""
    reported = tuple(dict.fromkeys(diagnostic.ub_kinds)) or \
        tuple(dict.fromkeys(c.kind for c in conditions))

    model = solve_witness_model(encoder, hypothesis, conditions,
                                timeout=timeout, max_conflicts=max_conflicts)
    if model is None:
        return WitnessReport(WitnessVerdict.INCONCLUSIVE,
                             reason="no satisfying model within budget",
                             reported_kinds=reported)

    args, overrides = model_to_inputs(encoder, model)
    inputs = {argument.name: value
              for argument, value in zip(function.arguments, args)}
    env = ExternalEnv(seed=seed, overrides=overrides, zero_fill=True)

    pre = run_function(function, args, module=module, env=env, fuel=fuel)
    optimized = clone_function(function)
    OptimizationPipeline(capabilities=set(FULL_CAPABILITIES)).run_function(optimized)
    post = run_function(optimized, args, module=module, env=env, fuel=fuel)

    return _judge(pre, post, inputs, reported)


def _judge(pre: ExecResult, post: ExecResult, inputs: Dict[str, int],
           reported: Tuple[UBKind, ...]) -> WitnessReport:
    report = WitnessReport(WitnessVerdict.INCONCLUSIVE, inputs=inputs,
                           observed_kinds=tuple(dict.fromkeys(
                               e.kind for e in pre.events)),
                           reported_kinds=reported,
                           pre=pre.observable(), post=post.observable())
    for label, result in (("replay", pre), ("optimized replay", post)):
        if result.status in (ExecStatus.OUT_OF_FUEL, ExecStatus.TRAPPED):
            # A starved or trapped run on either side is a budget artifact,
            # not evidence of divergence.
            report.reason = f"{label} {result.status.value}" + \
                (f": {result.error}" if result.error else "")
            return report
    report.diverged = pre.observable() != post.observable()

    observed = set(report.observed_kinds)
    if observed & set(reported):
        report.verdict = WitnessVerdict.CONFIRMED
        report.reason = ("witness triggers the reported undefined behavior"
                         + ("; optimized code diverges" if report.diverged
                            else "; optimizer left the fragment intact"))
    elif observed:
        report.verdict = WitnessVerdict.UNCONFIRMED
        report.reason = ("witness triggers only undefined behavior outside "
                         "the reported set")
    else:
        report.verdict = WitnessVerdict.UNCONFIRMED
        report.reason = "witness triggers no undefined behavior" + \
            ("; divergence without UB would be a miscompile"
             if report.diverged else " — probable false positive")
    return report


def validate_diagnostics(function: Function, encoder: FunctionEncoder,
                         findings: Sequence[Tuple[Diagnostic, Sequence[Term],
                                                  Sequence[UBCondition]]],
                         module: Optional[Module] = None,
                         fuel: int = 50_000,
                         timeout: Optional[float] = 5.0,
                         max_conflicts: Optional[int] = 50_000,
                         seed: int = 0,
                         rng: Optional[random.Random] = None) -> Dict[str, int]:
    """Stage-5 entry point used by the checker.

    Replays every ``(diagnostic, hypothesis, conditions)`` triple, attaches
    the :class:`WitnessReport` to the diagnostic, and returns verdict counts.
    ``seed`` feeds the replay's :class:`ExternalEnv` so CLI and library runs
    reproduce bit for bit.  Callers threading one :class:`random.Random`
    end to end (the fuzz campaign) pass ``rng`` instead, and the replay
    seed is drawn from it in sequence with the caller's other draws.
    """
    if rng is not None:
        seed = rng.getrandbits(32)
    counts = {verdict.value: 0 for verdict in WitnessVerdict}
    for diagnostic, hypothesis, conditions in findings:
        with span("witness.replay") as replay_span:
            witness = replay_diagnostic(function, encoder, diagnostic,
                                        hypothesis, conditions, module=module,
                                        fuel=fuel, timeout=timeout,
                                        max_conflicts=max_conflicts, seed=seed)
            replay_span.set_arg("verdict", witness.verdict.value)
        diagnostic.witness = witness
        counts[witness.verdict.value] += 1
    return counts
