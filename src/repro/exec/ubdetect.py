"""Concrete undefined-behavior detection for the IR interpreter.

This is the runtime mirror of :mod:`repro.core.ubconditions` (the paper's
Figure 3): where the encoder attaches a *symbolic* sufficient condition to
an instruction, the :class:`UBMonitor` evaluates the same condition over the
concrete operand values of one execution.  A run therefore yields not just a
result but the ordered list of UB events it triggered, each attributed to
the triggering instruction's source location and origin — which is what lets
the witness layer check that a divergence is justified by exactly the UB the
diagnostic reported.

The interpreter keeps executing after an event using the deterministic
"hardware" semantics of the C* dialect (two's-complement wraparound,
defined shifts, division by zero yielding 0), so both sides of a
differential run stay comparable; callers that want fail-stop behavior pass
``stop_on_ub=True`` to the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.ubconditions import UBKind
from repro.ir.instructions import BinaryOp, BinOpKind, Call, GetElementPtr, Instruction
from repro.ir.types import IntType


@dataclass
class UBEvent:
    """One concrete undefined-behavior occurrence during interpretation."""

    kind: UBKind
    instruction: Instruction
    note: str = ""
    step: int = 0                  # instruction count at which it fired

    @property
    def location(self):
        return self.instruction.location

    def describe(self) -> str:
        where = f" at {self.location}" if self.location.is_known() else ""
        note = f" ({self.note})" if self.note else ""
        return f"{self.kind.value}{note}{where}"

    def __repr__(self) -> str:
        return f"<UBEvent {self.kind.name} step={self.step} {self.location}>"


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned bit pattern as a two's-complement integer."""
    value &= (1 << width) - 1
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    """Normalise a Python int to its ``width``-bit unsigned bit pattern."""
    return value & ((1 << width) - 1)


class UBMonitor:
    """Evaluates Figure 3's sufficient conditions over concrete values.

    The monitor is stateful only for the lifetime rows (use-after-free /
    use-after-realloc): ``note_free`` / ``note_realloc`` record the concrete
    addresses passed to ``free``/``realloc`` so later accesses through the
    same address can be flagged.
    """

    def __init__(self) -> None:
        self.events: List[UBEvent] = []
        self._freed: Dict[int, str] = {}          # address -> "free at <loc>"
        self._realloced: Dict[int, Tuple[int, str]] = {}  # old addr -> (result, loc)
        self._step = 0

    def begin_step(self, step: int) -> None:
        self._step = step

    def record(self, kind: UBKind, inst: Instruction, note: str = "") -> UBEvent:
        event = UBEvent(kind, inst, note=note, step=self._step)
        self.events.append(event)
        return event

    @property
    def kinds(self) -> Set[UBKind]:
        return {event.kind for event in self.events}

    # -- arithmetic (signed overflow, division, shifts) -----------------------

    def check_binop(self, inst: BinaryOp, lhs: int, rhs: int) -> None:
        width = inst.type.bit_width
        signed = isinstance(inst.type, IntType) and inst.type.signed
        slhs, srhs = to_signed(lhs, width), to_signed(rhs, width)

        if inst.kind in (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL) and signed:
            exact = {BinOpKind.ADD: slhs + srhs, BinOpKind.SUB: slhs - srhs,
                     BinOpKind.MUL: slhs * srhs}[inst.kind]
            if not (-(1 << (width - 1)) <= exact <= (1 << (width - 1)) - 1):
                self.record(UBKind.SIGNED_OVERFLOW, inst,
                            note=f"{inst.kind.value} on i{width}")
        elif inst.kind in (BinOpKind.SDIV, BinOpKind.UDIV,
                           BinOpKind.SREM, BinOpKind.UREM):
            if rhs == 0:
                self.record(UBKind.DIV_BY_ZERO, inst)
            elif inst.kind in (BinOpKind.SDIV, BinOpKind.SREM) and \
                    slhs == -(1 << (width - 1)) and srhs == -1:
                self.record(UBKind.SIGNED_OVERFLOW, inst, note="INT_MIN / -1")
        elif inst.kind in (BinOpKind.SHL, BinOpKind.LSHR, BinOpKind.ASHR):
            if rhs >= width:
                self.record(UBKind.OVERSIZED_SHIFT, inst,
                            note=f"shift amount >= {width}")

    # -- memory (null, pointer overflow, buffer overflow) ---------------------

    def check_access(self, inst: Instruction, root_value: int,
                     address: int, root_name: str = "") -> None:
        """Checks at a Load/Store: null dereference and lifetime violations."""
        if root_value == 0 or address == 0:
            self.record(UBKind.NULL_DEREF, inst,
                        note=f"dereference of {root_name or 'pointer'}")
        freed_at = self._freed.get(root_value)
        if freed_at is not None:
            self.record(UBKind.USE_AFTER_FREE, inst, note=freed_at)
        realloc = self._realloced.get(root_value)
        if realloc is not None and realloc[0] != 0:
            self.record(UBKind.USE_AFTER_REALLOC, inst, note=realloc[1])

    def check_gep(self, inst: GetElementPtr, pointer: int, index: int,
                  width: int) -> None:
        signed_index = to_signed(index, width)
        exact = pointer + signed_index * inst.element_size
        if exact < 0 or exact > (1 << width) - 1:
            self.record(UBKind.POINTER_OVERFLOW, inst,
                        note=f"{inst.pointer.short_name()} + index")
        if inst.array_size is not None:
            if signed_index < 0 or signed_index >= inst.array_size:
                self.record(UBKind.BUFFER_OVERFLOW, inst,
                            note=f"capacity {inst.array_size}")

    # -- library calls ---------------------------------------------------------

    def check_abs(self, inst: Call, argument: int, width: int) -> None:
        if to_signed(argument, width) == -(1 << (width - 1)):
            self.record(UBKind.ABS_OVERFLOW, inst)

    def check_memcpy(self, inst: Call, dst: int, src: int, length: int) -> None:
        if length != 0 and abs(dst - src) < length:
            self.record(UBKind.MEMCPY_OVERLAP, inst)

    def note_free(self, inst: Call, address: int) -> None:
        if address:
            self._freed[address] = f"freed at {inst.location}"

    def note_realloc(self, inst: Call, address: int, result: int) -> None:
        if address:
            self._realloced[address] = (result, f"realloc'd at {inst.location}")
