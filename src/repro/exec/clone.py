"""Deep copies of IR functions and modules.

The optimization pipeline (:mod:`repro.compilers.pipeline`) mutates
functions in place, exactly like a real compiler.  Concrete execution needs
both sides of the two-compiler model at once — the function as written and
the function as optimized — so the replay and differential layers clone
first and optimize the clone.  Names, source locations, and origins are
preserved so diagnostics computed against the original still line up with
the clone.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.values import Argument, Value


def clone_function(function: Function) -> Function:
    """Return a structurally identical, fully independent copy of ``function``."""
    clone = Function(function.name, function.ftype,
                     [arg.name for arg in function.arguments])
    clone.is_declaration = function.is_declaration
    clone._name_counter = function._name_counter

    value_map: Dict[int, Value] = {}
    for old_arg, new_arg in zip(function.arguments, clone.arguments):
        value_map[id(old_arg)] = new_arg
    block_map: Dict[int, BasicBlock] = {}
    for block in function.blocks:
        new_block = clone.add_block(block.name)
        block_map[id(block)] = new_block
        value_map[id(block)] = new_block

    # First pass: clone every instruction with its original operands; the
    # second pass remaps them, which handles forward references (phis, and
    # uses of values defined in later blocks of the list).
    cloned: Dict[int, Instruction] = {}
    for block in function.blocks:
        new_block = block_map[id(block)]
        for inst in block.instructions:
            copy = _clone_instruction(inst, block_map)
            cloned[id(inst)] = copy
            copy.parent = new_block
            new_block.instructions.append(copy)
    value_map.update(cloned)

    for block in function.blocks:
        for inst in block.instructions:
            copy = cloned[id(inst)]
            copy.operands = [_map(value_map, op) for op in inst.operands]
            if isinstance(inst, Phi):
                copy.incoming = [(_map(value_map, value), block_map[id(pred)])
                                 for value, pred in inst.incoming]
    return clone


def clone_module(module: Module) -> Module:
    """Clone every function of ``module`` into a new module."""
    clone = Module(module.name)
    for function in module:
        clone.add_function(clone_function(function))
    return clone


def _map(value_map: Dict[int, Value], value: Optional[Value]) -> Optional[Value]:
    if value is None:
        return None
    return value_map.get(id(value), value)


def _clone_instruction(inst: Instruction,
                       block_map: Dict[int, BasicBlock]) -> Instruction:
    """Clone one instruction; operands stay un-remapped until the second pass."""
    meta = {"location": inst.location, "origin": inst.origin}
    if isinstance(inst, BinaryOp):
        return BinaryOp(inst.kind, inst.lhs, inst.rhs, inst.name, **meta)
    if isinstance(inst, ICmp):
        return ICmp(inst.pred, inst.lhs, inst.rhs, inst.name, **meta)
    if isinstance(inst, Select):
        return Select(inst.condition, inst.on_true, inst.on_false,
                      inst.name, **meta)
    if isinstance(inst, Cast):
        return Cast(inst.kind, inst.value, inst.type, inst.name, **meta)
    if isinstance(inst, Alloca):
        return Alloca(inst.allocated_type, inst.name, **meta)
    if isinstance(inst, Load):
        return Load(inst.pointer, inst.name, **meta)
    if isinstance(inst, Store):
        return Store(inst.value, inst.pointer, **meta)
    if isinstance(inst, GetElementPtr):
        return GetElementPtr(inst.pointer, inst.index, inst.name,
                             element_type=inst.element_type,
                             array_size=inst.array_size, **meta)
    if isinstance(inst, Call):
        return Call(inst.callee, inst.args, inst.type, inst.name, **meta)
    if isinstance(inst, Phi):
        return Phi(inst.type, inst.name, **meta)
    if isinstance(inst, Branch):
        return Branch(block_map[id(inst.target)], **meta)
    if isinstance(inst, CondBranch):
        return CondBranch(inst.condition, block_map[id(inst.if_true)],
                          block_map[id(inst.if_false)], **meta)
    if isinstance(inst, Return):
        return Return(inst.value, **meta)
    if isinstance(inst, Unreachable):
        return Unreachable(**meta)
    raise TypeError(f"cannot clone {type(inst).__name__}")
