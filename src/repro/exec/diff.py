"""Seeded differential testing of the UB-exploiting optimizer.

The checker trusts :mod:`repro.compilers` to behave like the surveyed
compilers: fold a check *only* when every input that disagrees with the fold
invokes undefined behavior.  This module tests that property concretely, the
way csmith-style campaigns test real compilers: execute every function of a
corpus under N deterministic inputs, once as written and once through each
:class:`~repro.compilers.profiles.CompilerProfile`'s pipeline, and compare
the observable outcomes.

A divergence is **UB-justified** when the unoptimized run triggered at least
one undefined-behavior event — the C standard then places no requirement on
the optimized program.  A divergence on a UB-free run is a **miscompile**:
the optimizer changed the meaning of a well-defined program.  The built-in
profiles must report zero miscompiles; the differential runner is the
regression harness that keeps new passes honest.

Everything is derived from an integer seed (argument vectors, external call
results, un-backed memory), so a failure reproduces exactly.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.compilers.pipeline import OptimizationPipeline
from repro.compilers.profiles import ALL_PROFILES, CompilerProfile
from repro.core.ubconditions import UBKind
from repro.exec.clone import clone_function
from repro.exec.interp import ExecStatus, ExternalEnv, run_function, seed_hash
from repro.ir.function import Function, Module


class DiffClassification(enum.Enum):
    """Outcome of comparing one (function, input, profile) execution pair."""

    AGREE = "agree"
    UB_JUSTIFIED = "ub-justified divergence"
    MISCOMPILE = "miscompile"
    INCONCLUSIVE = "inconclusive"      # fuel/trap on either side


@dataclass
class DiffCase:
    """One divergence (or inconclusive run) worth reporting."""

    unit: str
    function: str
    profile: str
    level: int
    input_index: int
    classification: DiffClassification
    inputs: Tuple[int, ...] = ()
    ub_kinds: Tuple[UBKind, ...] = ()
    pre: Optional[Tuple[str, Optional[int]]] = None
    post: Optional[Tuple[str, Optional[int]]] = None

    def describe(self) -> str:
        return (f"{self.unit}/{self.function} vs {self.profile} -O{self.level} "
                f"input#{self.input_index} {self.classification.value}: "
                f"args={list(self.inputs)} pre={self.pre} post={self.post} "
                f"ub={[k.value for k in self.ub_kinds]}")


@dataclass
class DiffReport:
    """Aggregate result of one differential campaign."""

    seed: int = 0
    level: int = 2
    executions: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    by_profile: Dict[str, Dict[str, int]] = field(default_factory=dict)
    cases: List[DiffCase] = field(default_factory=list)   # non-AGREE only

    def bump(self, profile: str, classification: DiffClassification) -> None:
        self.executions += 1
        self.counts[classification.value] = \
            self.counts.get(classification.value, 0) + 1
        per = self.by_profile.setdefault(profile, {})
        per[classification.value] = per.get(classification.value, 0) + 1

    @property
    def miscompiles(self) -> List[DiffCase]:
        return [case for case in self.cases
                if case.classification is DiffClassification.MISCOMPILE]

    @property
    def justified_divergences(self) -> int:
        return self.counts.get(DiffClassification.UB_JUSTIFIED.value, 0)

    def render(self) -> str:
        from repro.experiments.common import render_table

        headers = ["profile", "agree", "ub-justified", "miscompile",
                   "inconclusive"]
        rows = []
        for profile in sorted(self.by_profile):
            per = self.by_profile[profile]
            rows.append([
                profile,
                per.get(DiffClassification.AGREE.value, 0),
                per.get(DiffClassification.UB_JUSTIFIED.value, 0),
                per.get(DiffClassification.MISCOMPILE.value, 0),
                per.get(DiffClassification.INCONCLUSIVE.value, 0),
            ])
        title = (f"Differential optimizer testing (seed {self.seed}, "
                 f"-O{self.level}, {self.executions} comparisons)")
        return render_table(headers, rows, title=title)


#: Argument patterns every differential run cycles through before falling
#: back to seed-hash values; mirrors the solver's model-guessing pre-pass.
_PATTERNS = (
    lambda width: 0,
    lambda width: 1,
    lambda width: (1 << width) - 1,            # -1 / all ones
    lambda width: 1 << (width - 1),            # INT_MIN
    lambda width: (1 << (width - 1)) - 1,      # INT_MAX
    lambda width: 7,
    lambda width: 100,
)


def argument_vector(function: Function, seed: int, input_index: int) -> List[int]:
    """The deterministic argument vector for one differential execution."""
    args: List[int] = []
    for position, argument in enumerate(function.arguments):
        width = argument.type.bit_width
        choices = len(_PATTERNS) + 1
        pick = seed_hash(seed, f"{function.name}.pick.{position}.{input_index}",
                         8) % choices
        if pick < len(_PATTERNS):
            value = _PATTERNS[pick](width) & ((1 << width) - 1)
        else:
            value = seed_hash(seed, f"{function.name}.arg.{position}."
                                    f"{input_index}", width)
        args.append(value)
    return args


def run_differential(units: Iterable[Tuple[str, Module]],
                     profiles: Optional[Sequence[CompilerProfile]] = None,
                     level: int = 2, inputs_per_function: int = 8,
                     seed: int = 0, fuel: int = 20_000,
                     keep_agreements: bool = False,
                     rng: Optional[random.Random] = None) -> DiffReport:
    """Differentially execute ``units`` against each profile's pipeline.

    ``units`` yields ``(name, module)`` pairs of already-lowered IR.  Every
    defined function is run under ``inputs_per_function`` seeded argument
    vectors; for each profile the same inputs replay through a clone
    optimized at ``-O{level}``.  See the module docstring for the
    classification rules.

    Callers that thread one :class:`random.Random` through a whole pipeline
    (the fuzz campaign: generation, witness replay, and this runner all draw
    from a single instance) pass ``rng`` instead of ``seed``; the campaign
    seed then determines this run's seed too, in sequence with everything
    the caller drew before it.
    """
    if rng is not None:
        seed = rng.getrandbits(32)
    if profiles is None:
        profiles = ALL_PROFILES
    report = DiffReport(seed=seed, level=level)

    for unit_name, module in units:
        for function in module.defined_functions():
            optimized: List[Tuple[CompilerProfile, Function]] = []
            for profile in profiles:
                clone = clone_function(function)
                capabilities = profile.capabilities_at(level)
                OptimizationPipeline(capabilities=capabilities).run_function(clone)
                optimized.append((profile, clone))

            for input_index in range(inputs_per_function):
                args = argument_vector(function, seed, input_index)
                env = ExternalEnv(
                    seed=seed ^ seed_hash(seed, f"{unit_name}.{input_index}", 32),
                    zero_fill=False)
                pre = run_function(function, args, module=module, env=env,
                                   fuel=fuel)
                for profile, clone in optimized:
                    post = run_function(clone, args, module=module, env=env,
                                        fuel=fuel)
                    classification = _classify(pre, post)
                    report.bump(profile.name, classification)
                    if classification is DiffClassification.AGREE and \
                            not keep_agreements:
                        continue
                    report.cases.append(DiffCase(
                        unit=unit_name, function=function.name,
                        profile=profile.name, level=level,
                        input_index=input_index,
                        classification=classification,
                        inputs=tuple(args),
                        ub_kinds=tuple(dict.fromkeys(
                            e.kind for e in pre.events)),
                        pre=pre.observable(), post=post.observable()))
    return report


def _classify(pre, post) -> DiffClassification:
    if pre.status in (ExecStatus.OUT_OF_FUEL, ExecStatus.TRAPPED) or \
            post.status in (ExecStatus.OUT_OF_FUEL, ExecStatus.TRAPPED):
        return DiffClassification.INCONCLUSIVE
    if pre.observable() == post.observable():
        return DiffClassification.AGREE
    if pre.events:
        return DiffClassification.UB_JUSTIFIED
    return DiffClassification.MISCOMPILE
