"""repro.exec — the concrete-execution subsystem (Figure 7 stage 5).

The checker's first four stages are entirely *symbolic*: a diagnostic is a
satisfiability argument that some fragment survives plain C* semantics but
dies under the well-defined-program assumption.  The paper's evidence that
such diagnostics matter is *concrete* — confirmed new bugs (§6.1) and a
precision study (§6.3) where every warning corresponds to an input that
actually makes optimized and unoptimized code diverge.  This package adds
the executable half:

* :mod:`repro.exec.interp` — a small-step IR interpreter with a
  byte-addressable memory, deterministic external environment, and fuel
  limits,
* :mod:`repro.exec.ubdetect` — concrete undefined-behavior detection
  mirroring :mod:`repro.core.ubconditions`, so a run yields a value *and*
  the UB events it triggered (with source origin),
* :mod:`repro.exec.witness` — turns a solver model from an elimination or
  simplification finding into interpreter inputs and replays the function
  before and after the UB-exploiting optimizer, confirming the diagnostic
  or marking it a probable false positive,
* :mod:`repro.exec.diff` — a seeded differential runner that executes
  corpus functions under deterministic inputs against each
  :class:`~repro.compilers.profiles.CompilerProfile` pipeline and
  classifies divergences as UB-justified vs. miscompile,
* :mod:`repro.exec.clone` — deep copies of IR functions/modules so the
  in-place optimizer can be run without destroying the original.

See ``docs/EXEC.md`` for the full stage-5 story.
"""

from repro.exec.clone import clone_function, clone_module
from repro.exec.diff import DiffClassification, DiffReport, run_differential
from repro.exec.interp import ExecResult, ExecStatus, ExternalEnv, Interpreter, run_function
from repro.exec.ubdetect import UBEvent
from repro.exec.witness import (
    WitnessReport,
    WitnessVerdict,
    replay_diagnostic,
    validate_diagnostics,
)

__all__ = [
    "DiffClassification",
    "DiffReport",
    "ExecResult",
    "ExecStatus",
    "ExternalEnv",
    "Interpreter",
    "UBEvent",
    "WitnessReport",
    "WitnessVerdict",
    "clone_function",
    "clone_module",
    "replay_diagnostic",
    "run_differential",
    "run_function",
    "validate_diagnostics",
]
