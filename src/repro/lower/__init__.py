"""Lowering from the MiniC AST to IR.

The lowering pipeline mirrors what clang does for STACK (§4.2):

1. :mod:`repro.lower.lowering` translates the typed AST into IR, initially in
   a "register-poor" form where every local scalar lives in an alloca.
2. :mod:`repro.lower.mem2reg` promotes those allocas into SSA values with phi
   nodes, so data flow between a variable's uses is visible to the checker.
3. :mod:`repro.lower.inline` optionally inlines calls to functions defined in
   the same module, tagging the copied instructions with an INLINE origin so
   the report stage can suppress warnings about compiler-generated code.
"""

from repro.lower.inline import inline_module
from repro.lower.lowering import Lowering, lower_translation_unit
from repro.lower.mem2reg import promote_memory_to_registers

__all__ = [
    "Lowering",
    "inline_module",
    "lower_translation_unit",
    "promote_memory_to_registers",
]
