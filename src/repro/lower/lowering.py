"""AST → IR lowering.

The lowering is deliberately clang-at-``-O0``-like: every local scalar lives
in an alloca and every use goes through a load/store pair.  The subsequent
mem2reg pass (:mod:`repro.lower.mem2reg`) promotes them to SSA values.  The
translation preserves:

* evaluation order of side effects (assignments, ++/--, calls),
* short-circuiting of ``&&``, ``||`` and ``?:`` via control flow,
* source locations and macro origins on every emitted instruction, which is
  what lets the checker suppress warnings for compiler-generated code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend.ast_nodes import (
    AssignExpr,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CharLiteral,
    CompoundStmt,
    ConditionalExpr,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDecl,
    GlobalVarDecl,
    GotoStmt,
    Identifier,
    IfStmt,
    IndexExpr,
    IntLiteral,
    LabelStmt,
    MemberExpr,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    StringLiteral,
    StructDecl,
    TranslationUnit,
    TypedefDecl,
    UnaryExpr,
    WhileStmt,
)
from repro.frontend.ctypes import (
    CArray,
    CInt,
    CPointer,
    CStruct,
    CType,
    CVoid,
    INT,
)
from repro.frontend.errors import SemaError
from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import BinOpKind, CastKind, ICmpPred, Phi
from repro.ir.source import Origin, SourceLocation
from repro.ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    IRType,
    PointerType,
    VoidType,
)
from repro.ir.values import Constant, Value
from repro.lower.mem2reg import promote_memory_to_registers


def ctype_to_irtype(ctype: CType) -> IRType:
    """Map a frontend C type onto the IR type system."""
    if isinstance(ctype, CVoid):
        return VoidType()
    if isinstance(ctype, CInt):
        return IntType(ctype.width, ctype.signed)
    if isinstance(ctype, CPointer):
        return PointerType(ctype_to_irtype(ctype.target))
    if isinstance(ctype, CArray):
        count = ctype.count if ctype.count > 0 else 1
        return ArrayType(ctype_to_irtype(ctype.element), count)
    if isinstance(ctype, CStruct):
        # Structs are only manipulated through pointers/member accesses; an
        # opaque fixed-width blob is enough for layout purposes.
        return ArrayType(IntType(8, signed=False), max(1, ctype.size_bytes))
    raise SemaError(f"cannot lower type {ctype!r}")


class _LoopContext:
    """Targets for break/continue inside the innermost loop."""

    def __init__(self, break_block: BasicBlock, continue_block: BasicBlock) -> None:
        self.break_block = break_block
        self.continue_block = continue_block


class Lowering:
    """Lowers a single translation unit to an IR module."""

    def __init__(self, unit: TranslationUnit, module_name: str = "") -> None:
        self.unit = unit
        self.module = Module(module_name or unit.filename)
        self._string_counter = 0

    # -- entry point -----------------------------------------------------------

    def lower(self, promote: bool = True) -> Module:
        """Lower every function; optionally run mem2reg on the results."""
        for decl in self.unit.declarations:
            if isinstance(decl, FunctionDecl) and decl.body is not None:
                function = self._lower_function(decl)
                self.module.add_function(function)
        if promote:
            for function in self.module.defined_functions():
                promote_memory_to_registers(function)
        return self.module

    # -- functions ---------------------------------------------------------------

    def _lower_function(self, decl: FunctionDecl) -> Function:
        param_types = tuple(ctype_to_irtype(p.decl_type) for p in decl.params)
        ftype = FunctionType(ctype_to_irtype(decl.return_type), param_types)
        function = Function(decl.name, ftype, [p.name for p in decl.params])
        builder = IRBuilder(function)
        state = _FunctionState(self, function, builder, decl)

        # Give every parameter an alloca so it behaves like a local variable.
        for param, arg in zip(decl.params, function.arguments):
            slot = builder.alloca(arg.type, name=f"{param.name}.addr")
            builder.store(arg, slot)
            state.variables[param.name] = (slot, param.decl_type)

        state.lower_statement(decl.body)

        # Fall off the end of the function: synthesise a return.
        if not builder.block.is_terminated():
            if ftype.return_type.is_void():
                builder.ret()
            else:
                builder.ret(Constant(ftype.return_type, 0))
        state.finalize()
        return function

    def next_string_address(self) -> int:
        """A distinct non-null address for each string literal."""
        self._string_counter += 1
        return 0x10000 + self._string_counter * 0x100


class _FunctionState:
    """Per-function lowering state: variable slots, loop stack, goto labels."""

    def __init__(self, lowering: Lowering, function: Function,
                 builder: IRBuilder, decl: FunctionDecl) -> None:
        self.lowering = lowering
        self.function = function
        self.builder = builder
        self.decl = decl
        self.variables: Dict[str, Tuple[Value, CType]] = {}
        self.loop_stack: List[_LoopContext] = []
        self.labels: Dict[str, BasicBlock] = {}

    # -- helpers ----------------------------------------------------------------

    def _set_meta(self, node) -> None:
        self.builder.location = node.location
        self.builder.origin = node.origin

    def _label_block(self, name: str) -> BasicBlock:
        if name not in self.labels:
            self.labels[name] = self.builder.new_block(f"label.{name}")
        return self.labels[name]

    def finalize(self) -> None:
        """Terminate any labelled blocks that were never filled."""
        for block in self.function.blocks:
            if not block.is_terminated():
                saved = self.builder.block
                self.builder.set_block(block)
                if self.function.ftype.return_type.is_void():
                    self.builder.ret()
                else:
                    self.builder.ret(Constant(self.function.ftype.return_type, 0))
                self.builder.set_block(saved)

    # -- statements ----------------------------------------------------------------

    def lower_statement(self, stmt: Stmt) -> None:
        if self.builder.block.is_terminated() and not isinstance(stmt, LabelStmt):
            # Unreachable statement (e.g. code after a return): lower it into
            # a fresh block so the checker still sees and analyzes it.
            dead = self.builder.new_block("dead")
            self.builder.set_block(dead)
        self._set_meta(stmt)

        if isinstance(stmt, CompoundStmt):
            for child in stmt.statements:
                self.lower_statement(child)
        elif isinstance(stmt, DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, ExprStmt):
            if stmt.expr is not None:
                self.lower_expression(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, DoWhileStmt):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ReturnStmt):
            self._lower_return(stmt)
        elif isinstance(stmt, BreakStmt):
            if self.loop_stack:
                self.builder.br(self.loop_stack[-1].break_block)
        elif isinstance(stmt, ContinueStmt):
            if self.loop_stack:
                self.builder.br(self.loop_stack[-1].continue_block)
        elif isinstance(stmt, GotoStmt):
            self.builder.br(self._label_block(stmt.label))
        elif isinstance(stmt, LabelStmt):
            target = self._label_block(stmt.label)
            if not self.builder.block.is_terminated():
                self.builder.br(target)
            self.builder.set_block(target)
            if stmt.statement is not None:
                self.lower_statement(stmt.statement)
        else:
            raise SemaError(f"cannot lower statement {type(stmt).__name__}",
                            stmt.location)

    def _lower_decl(self, stmt: DeclStmt) -> None:
        ir_type = ctype_to_irtype(stmt.decl_type)
        slot = self.builder.alloca(ir_type, name=stmt.name)
        self.variables[stmt.name] = (slot, stmt.decl_type)
        if stmt.initializer is not None:
            value = self.lower_expression(stmt.initializer)
            if not ir_type.is_array():
                value = self._coerce(value, ir_type, stmt.initializer.ctype)
                self.builder.store(value, slot)

    def _lower_if(self, stmt: IfStmt) -> None:
        then_block = self.builder.new_block("if.then")
        else_block = self.builder.new_block("if.else") if stmt.else_branch else None
        end_block = self.builder.new_block("if.end")
        cond = self.lower_condition(stmt.condition)
        self.builder.cond_br(cond, then_block, else_block or end_block)

        self.builder.set_block(then_block)
        self.lower_statement(stmt.then_branch)
        if not self.builder.block.is_terminated():
            self.builder.br(end_block)

        if else_block is not None:
            self.builder.set_block(else_block)
            self.lower_statement(stmt.else_branch)
            if not self.builder.block.is_terminated():
                self.builder.br(end_block)

        self.builder.set_block(end_block)

    def _lower_while(self, stmt: WhileStmt) -> None:
        header = self.builder.new_block("while.cond")
        body = self.builder.new_block("while.body")
        end = self.builder.new_block("while.end")
        self.builder.br(header)
        self.builder.set_block(header)
        cond = self.lower_condition(stmt.condition)
        self.builder.cond_br(cond, body, end)
        self.builder.set_block(body)
        self.loop_stack.append(_LoopContext(end, header))
        self.lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated():
            self.builder.br(header)
        self.builder.set_block(end)

    def _lower_do_while(self, stmt: DoWhileStmt) -> None:
        body = self.builder.new_block("do.body")
        cond_block = self.builder.new_block("do.cond")
        end = self.builder.new_block("do.end")
        self.builder.br(body)
        self.builder.set_block(body)
        self.loop_stack.append(_LoopContext(end, cond_block))
        self.lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated():
            self.builder.br(cond_block)
        self.builder.set_block(cond_block)
        cond = self.lower_condition(stmt.condition)
        self.builder.cond_br(cond, body, end)
        self.builder.set_block(end)

    def _lower_for(self, stmt: ForStmt) -> None:
        if stmt.init is not None:
            self.lower_statement(stmt.init)
        header = self.builder.new_block("for.cond")
        body = self.builder.new_block("for.body")
        step_block = self.builder.new_block("for.step")
        end = self.builder.new_block("for.end")
        self.builder.br(header)
        self.builder.set_block(header)
        if stmt.condition is not None:
            cond = self.lower_condition(stmt.condition)
            self.builder.cond_br(cond, body, end)
        else:
            self.builder.br(body)
        self.builder.set_block(body)
        self.loop_stack.append(_LoopContext(end, step_block))
        self.lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated():
            self.builder.br(step_block)
        self.builder.set_block(step_block)
        if stmt.step is not None:
            self.lower_expression(stmt.step)
        self.builder.br(header)
        self.builder.set_block(end)

    def _lower_return(self, stmt: ReturnStmt) -> None:
        self._set_meta(stmt)
        return_type = self.function.ftype.return_type
        if stmt.value is None or return_type.is_void():
            if stmt.value is not None:
                self.lower_expression(stmt.value)
            self.builder.ret()
            return
        value = self.lower_expression(stmt.value)
        value = self._coerce(value, return_type, stmt.value.ctype)
        self._set_meta(stmt)
        self.builder.ret(value)

    # -- conditions -------------------------------------------------------------------

    def lower_condition(self, expr: Expr) -> Value:
        """Lower an expression used as a branch condition to an i1 value."""
        value = self.lower_expression(expr)
        return self._to_bool(value, expr)

    def _to_bool(self, value: Value, expr: Optional[Expr] = None) -> Value:
        if value.type.is_integer() and value.type.bit_width == 1:
            return value
        if expr is not None:
            self._set_meta(expr)
        zero = Constant(value.type, 0)
        return self.builder.icmp(ICmpPred.NE, value, zero)

    # -- lvalues -----------------------------------------------------------------------

    def lower_address(self, expr: Expr) -> Tuple[Value, IRType]:
        """Lower an lvalue expression to (address, pointee IR type)."""
        self._set_meta(expr)
        if isinstance(expr, Identifier):
            slot, ctype = self._variable(expr)
            pointee = ctype_to_irtype(ctype)
            return slot, pointee
        if isinstance(expr, UnaryExpr) and expr.op == "*":
            pointer = self.lower_expression(expr.operand)
            pointee = ctype_to_irtype(expr.ctype) if expr.ctype else IntType(32)
            return pointer, pointee
        if isinstance(expr, IndexExpr):
            return self._lower_index_address(expr)
        if isinstance(expr, MemberExpr):
            return self._lower_member_address(expr)
        raise SemaError(f"expression is not an lvalue: {type(expr).__name__}",
                        expr.location)

    def _variable(self, expr: Identifier) -> Tuple[Value, CType]:
        if expr.name in self.variables:
            return self.variables[expr.name]
        # Unknown identifiers (e.g. globals the corpus leaves undeclared) get
        # a function-local slot so analysis can continue.
        ctype = expr.ctype if expr.ctype is not None else INT
        ir_type = ctype_to_irtype(ctype)
        saved_block = self.builder.block
        self.builder.set_block(self.function.entry)
        slot = self.builder.alloca(ir_type, name=expr.name)
        self.builder.set_block(saved_block)
        self.variables[expr.name] = (slot, ctype)
        return slot, ctype

    def _lower_index_address(self, expr: IndexExpr) -> Tuple[Value, IRType]:
        base_ctype = expr.base.ctype
        index = self.lower_expression(expr.index)
        if isinstance(base_ctype, CArray):
            base_addr, _ = self.lower_address(expr.base)
            element = ctype_to_irtype(base_ctype.element)
            self._set_meta(expr)
            index64 = self._coerce_width(index, 64, signed=True)
            gep = self.builder.gep(base_addr, index64, element_type=element,
                                   array_size=base_ctype.count if base_ctype.count > 0 else None)
            address = self.builder.cast(CastKind.BITCAST, gep, PointerType(element))
            return address, element
        # Pointer subscription.
        base = self.lower_expression(expr.base)
        element_ctype = base_ctype.target if isinstance(base_ctype, CPointer) else INT
        element = ctype_to_irtype(element_ctype)
        self._set_meta(expr)
        index64 = self._coerce_width(index, 64, signed=True)
        gep = self.builder.gep(base, index64, element_type=element)
        address = self.builder.cast(CastKind.BITCAST, gep, PointerType(element))
        return address, element

    def _lower_member_address(self, expr: MemberExpr) -> Tuple[Value, IRType]:
        member_type = ctype_to_irtype(expr.ctype) if expr.ctype else IntType(32)
        if expr.arrow:
            base = self.lower_expression(expr.base)
        else:
            base, _ = self.lower_address(expr.base)
        self._set_meta(expr)
        offset = Constant(IntType(64), expr.field_offset)
        gep = self.builder.gep(base, offset, element_type=IntType(8, signed=False))
        address = self.builder.cast(CastKind.BITCAST, gep, PointerType(member_type))
        return address, member_type

    # -- expressions ----------------------------------------------------------------------

    def lower_expression(self, expr: Expr) -> Value:
        self._set_meta(expr)
        if isinstance(expr, IntLiteral):
            ir_type = ctype_to_irtype(expr.ctype if expr.ctype else INT)
            return Constant(ir_type, expr.value)
        if isinstance(expr, CharLiteral):
            return Constant(IntType(32), expr.value)
        if isinstance(expr, StringLiteral):
            return Constant(PointerType(IntType(8)), self.lowering.next_string_address())
        if isinstance(expr, SizeofExpr):
            size = 8
            if expr.queried_type is not None:
                size = expr.queried_type.size_bytes
            elif expr.operand is not None and expr.operand.ctype is not None:
                size = expr.operand.ctype.size_bytes
            return Constant(IntType(64, signed=False), size)
        if isinstance(expr, Identifier):
            return self._lower_identifier_value(expr)
        if isinstance(expr, UnaryExpr):
            return self._lower_unary(expr)
        if isinstance(expr, BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, AssignExpr):
            return self._lower_assign(expr)
        if isinstance(expr, ConditionalExpr):
            return self._lower_conditional(expr)
        if isinstance(expr, CallExpr):
            return self._lower_call(expr)
        if isinstance(expr, IndexExpr):
            address, pointee = self._lower_index_address(expr)
            self._set_meta(expr)
            return self.builder.load(address)
        if isinstance(expr, MemberExpr):
            address, pointee = self._lower_member_address(expr)
            self._set_meta(expr)
            return self.builder.load(address)
        if isinstance(expr, CastExpr):
            return self._lower_cast(expr)
        raise SemaError(f"cannot lower expression {type(expr).__name__}",
                        expr.location)

    def _lower_identifier_value(self, expr: Identifier) -> Value:
        slot, ctype = self._variable(expr)
        if isinstance(ctype, CArray):
            # Arrays decay to a pointer to their first element.
            element = ctype_to_irtype(ctype.element)
            self._set_meta(expr)
            zero = Constant(IntType(64), 0)
            gep = self.builder.gep(slot, zero, element_type=element,
                                   array_size=ctype.count if ctype.count > 0 else None)
            return self.builder.cast(CastKind.BITCAST, gep, PointerType(element))
        self._set_meta(expr)
        return self.builder.load(slot)

    def _lower_unary(self, expr: UnaryExpr) -> Value:
        if expr.op == "&":
            address, _ = self.lower_address(expr.operand)
            return address
        if expr.op == "*":
            address, pointee = self.lower_address(expr)
            self._set_meta(expr)
            return self.builder.load(address)
        if expr.op in ("++", "--"):
            return self._lower_incdec(expr)
        operand = self.lower_expression(expr.operand)
        self._set_meta(expr)
        if expr.op == "-":
            return self.builder.neg(operand)
        if expr.op == "~":
            return self.builder.xor(operand, Constant(operand.type, -1))
        if expr.op == "!":
            zero = Constant(operand.type, 0) if not operand.type.is_bool() \
                else Constant(operand.type, 0)
            result = self.builder.icmp(ICmpPred.EQ, operand, zero)
            return result
        raise SemaError(f"unsupported unary operator {expr.op!r}", expr.location)

    def _lower_incdec(self, expr: UnaryExpr) -> Value:
        address, pointee = self.lower_address(expr.operand)
        self._set_meta(expr)
        old = self.builder.load(address)
        operand_ctype = expr.operand.ctype
        if pointee.is_pointer():
            delta = Constant(IntType(64), 1 if expr.op == "++" else -1)
            element = pointee.pointee
            new = self.builder.gep(old, delta, element_type=element)
        else:
            one = Constant(old.type, 1)
            kind = BinOpKind.ADD if expr.op == "++" else BinOpKind.SUB
            new = self.builder.binop(kind, old, one)
        self.builder.store(new, address)
        return old if expr.postfix else new

    _CMP_PREDS = {"==": ICmpPred.EQ, "!=": ICmpPred.NE}
    _SIGNED_PREDS = {"<": ICmpPred.SLT, ">": ICmpPred.SGT,
                     "<=": ICmpPred.SLE, ">=": ICmpPred.SGE}
    _UNSIGNED_PREDS = {"<": ICmpPred.ULT, ">": ICmpPred.UGT,
                       "<=": ICmpPred.ULE, ">=": ICmpPred.UGE}
    _ARITH_KINDS = {"+": BinOpKind.ADD, "-": BinOpKind.SUB, "*": BinOpKind.MUL,
                    "&": BinOpKind.AND, "|": BinOpKind.OR, "^": BinOpKind.XOR}

    def _lower_binary(self, expr: BinaryExpr) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_logical(expr)
        if op == ",":
            self.lower_expression(expr.lhs)
            return self.lower_expression(expr.rhs)

        lhs_ctype = expr.lhs.ctype
        rhs_ctype = expr.rhs.ctype
        lhs_is_ptr = lhs_ctype is not None and (lhs_ctype.is_pointer() or lhs_ctype.is_array())
        rhs_is_ptr = rhs_ctype is not None and (rhs_ctype.is_pointer() or rhs_ctype.is_array())

        lhs = self.lower_expression(expr.lhs)
        rhs = self.lower_expression(expr.rhs)
        self._set_meta(expr)

        if op in ("+", "-") and (lhs_is_ptr or rhs_is_ptr) and not (lhs_is_ptr and rhs_is_ptr):
            return self._lower_pointer_arith(expr, lhs, rhs, lhs_is_ptr)
        if op == "-" and lhs_is_ptr and rhs_is_ptr:
            lhs_int = self.builder.cast(CastKind.PTRTOINT, lhs, IntType(64))
            rhs_int = self.builder.cast(CastKind.PTRTOINT, rhs, IntType(64))
            element_size = 1
            if isinstance(lhs_ctype, CPointer):
                element_size = max(1, lhs_ctype.target.size_bytes)
            diff = self.builder.sub(lhs_int, rhs_int)
            if element_size > 1:
                diff = self.builder.sdiv(diff, Constant(IntType(64), element_size))
            return diff

        if op in ("==", "!=", "<", ">", "<=", ">="):
            lhs, rhs = self._unify_for_compare(lhs, rhs, lhs_ctype, rhs_ctype)
            if op in self._CMP_PREDS:
                pred = self._CMP_PREDS[op]
            else:
                signed = self._compare_signed(lhs_ctype, rhs_ctype, lhs, rhs)
                pred = (self._SIGNED_PREDS if signed else self._UNSIGNED_PREDS)[op]
            return self.builder.icmp(pred, lhs, rhs)

        lhs, rhs = self._unify_widths(lhs, rhs, expr)
        signed = isinstance(expr.ctype, CInt) and expr.ctype.signed
        if op in self._ARITH_KINDS:
            return self.builder.binop(self._ARITH_KINDS[op], lhs, rhs)
        if op == "/":
            return self.builder.sdiv(lhs, rhs) if signed else self.builder.udiv(lhs, rhs)
        if op == "%":
            return self.builder.srem(lhs, rhs) if signed else self.builder.urem(lhs, rhs)
        if op == "<<":
            return self.builder.shl(lhs, rhs)
        if op == ">>":
            lhs_signed = isinstance(lhs_ctype, CInt) and lhs_ctype.signed
            return self.builder.ashr(lhs, rhs) if lhs_signed else self.builder.lshr(lhs, rhs)
        raise SemaError(f"unsupported binary operator {op!r}", expr.location)

    def _compare_signed(self, lhs_ctype, rhs_ctype, lhs: Value, rhs: Value) -> bool:
        if lhs.type.is_pointer() or rhs.type.is_pointer():
            return False
        for ctype in (lhs_ctype, rhs_ctype):
            if isinstance(ctype, CInt) and not ctype.signed and ctype.width >= 32:
                return False
        if isinstance(lhs_ctype, CInt):
            return lhs_ctype.signed
        return True

    def _lower_pointer_arith(self, expr: BinaryExpr, lhs: Value, rhs: Value,
                             lhs_is_ptr: bool) -> Value:
        pointer, index = (lhs, rhs) if lhs_is_ptr else (rhs, lhs)
        pointer_ctype = expr.lhs.ctype if lhs_is_ptr else expr.rhs.ctype
        element_ctype = None
        if isinstance(pointer_ctype, CPointer):
            element_ctype = pointer_ctype.target
        elif isinstance(pointer_ctype, CArray):
            element_ctype = pointer_ctype.element
        element = ctype_to_irtype(element_ctype) if element_ctype is not None \
            else IntType(8, signed=False)
        index_ctype = expr.rhs.ctype if lhs_is_ptr else expr.lhs.ctype
        signed_index = not (isinstance(index_ctype, CInt) and not index_ctype.signed)
        index64 = self._coerce_width(index, 64, signed=signed_index)
        if expr.op == "-":
            index64 = self.builder.neg(index64)
        return self.builder.gep(pointer, index64, element_type=element)

    def _lower_logical(self, expr: BinaryExpr) -> Value:
        """Short-circuit && / || via control flow, producing an i1 phi."""
        rhs_block = self.builder.new_block("land.rhs" if expr.op == "&&" else "lor.rhs")
        end_block = self.builder.new_block("logical.end")
        lhs = self.lower_condition(expr.lhs)
        lhs_block = self.builder.block
        if expr.op == "&&":
            self.builder.cond_br(lhs, rhs_block, end_block)
        else:
            self.builder.cond_br(lhs, end_block, rhs_block)
        self.builder.set_block(rhs_block)
        rhs = self.lower_condition(expr.rhs)
        rhs_exit = self.builder.block
        self.builder.br(end_block)
        self.builder.set_block(end_block)
        phi = self.builder.phi(IntType(1, signed=False))
        short_value = Constant(IntType(1, signed=False), 0 if expr.op == "&&" else 1)
        phi.add_incoming(short_value, lhs_block)
        phi.add_incoming(rhs, rhs_exit)
        return phi

    def _lower_assign(self, expr: AssignExpr) -> Value:
        address, pointee = self.lower_address(expr.target)
        value = self.lower_expression(expr.value)
        self._set_meta(expr)
        if expr.op:
            old = self.builder.load(address)
            value = self._apply_compound(expr, old, value)
        value = self._coerce(value, pointee, expr.value.ctype)
        self.builder.store(value, address)
        return value

    def _apply_compound(self, expr: AssignExpr, old: Value, rhs: Value) -> Value:
        op = expr.op
        target_ctype = expr.target.ctype
        if old.type.is_pointer():
            index64 = self._coerce_width(rhs, 64, signed=True)
            if op == "-":
                index64 = self.builder.neg(index64)
            element = old.type.pointee
            return self.builder.gep(old, index64, element_type=element)
        rhs = self._coerce_width(rhs, old.type.bit_width,
                                 signed=isinstance(target_ctype, CInt) and target_ctype.signed)
        signed = isinstance(target_ctype, CInt) and target_ctype.signed
        mapping = {"+": BinOpKind.ADD, "-": BinOpKind.SUB, "*": BinOpKind.MUL,
                   "&": BinOpKind.AND, "|": BinOpKind.OR, "^": BinOpKind.XOR,
                   "<<": BinOpKind.SHL}
        if op in mapping:
            return self.builder.binop(mapping[op], old, rhs)
        if op == "/":
            return self.builder.sdiv(old, rhs) if signed else self.builder.udiv(old, rhs)
        if op == "%":
            return self.builder.srem(old, rhs) if signed else self.builder.urem(old, rhs)
        if op == ">>":
            return self.builder.ashr(old, rhs) if signed else self.builder.lshr(old, rhs)
        raise SemaError(f"unsupported compound assignment {op!r}=", expr.location)

    def _lower_conditional(self, expr: ConditionalExpr) -> Value:
        then_block = self.builder.new_block("cond.true")
        else_block = self.builder.new_block("cond.false")
        end_block = self.builder.new_block("cond.end")
        cond = self.lower_condition(expr.condition)
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.set_block(then_block)
        true_value = self.lower_expression(expr.on_true)
        true_exit = self.builder.block
        self.builder.br(end_block)

        self.builder.set_block(else_block)
        false_value = self.lower_expression(expr.on_false)
        false_exit = self.builder.block
        self.builder.br(end_block)

        self.builder.set_block(end_block)
        result_type = true_value.type if not true_value.type.is_void() else false_value.type
        if false_value.type.bit_width != result_type.bit_width:
            false_value = self._coerce_width(false_value, result_type.bit_width, signed=True)
        phi = self.builder.phi(result_type)
        phi.add_incoming(true_value, true_exit)
        phi.add_incoming(false_value, false_exit)
        return phi

    def _lower_call(self, expr: CallExpr) -> Value:
        args = [self.lower_expression(arg) for arg in expr.args]
        self._set_meta(expr)
        return_ctype = expr.ctype if expr.ctype is not None else INT
        return_type = ctype_to_irtype(return_ctype)
        return self.builder.call(expr.callee, args, return_type)

    def _lower_cast(self, expr: CastExpr) -> Value:
        value = self.lower_expression(expr.operand)
        self._set_meta(expr)
        target = ctype_to_irtype(expr.target_type)
        source_ctype = expr.operand.ctype
        return self._coerce(value, target, source_ctype)

    # -- coercions -----------------------------------------------------------------------

    def _coerce(self, value: Value, target: IRType, source_ctype: Optional[CType]) -> Value:
        """Convert ``value`` to the IR type ``target`` (width/pointer changes)."""
        if target.is_void() or value.type.is_void():
            return value
        if target.is_array():
            return value
        if value.type.is_pointer() and target.is_pointer():
            if value.type.pointee is not target.pointee and isinstance(value, Constant):
                return Constant(target, value.value)
            if value.type.pointee is not target.pointee:
                return self.builder.cast(CastKind.BITCAST, value, target)
            return value
        if value.type.is_pointer() and target.is_integer():
            return self.builder.cast(CastKind.PTRTOINT, value, target)
        if value.type.is_integer() and target.is_pointer():
            if isinstance(value, Constant):
                return Constant(target, value.value)
            return self.builder.cast(CastKind.INTTOPTR, value, target)
        if value.type.is_integer() and target.is_integer():
            signed = True
            if isinstance(source_ctype, CInt):
                signed = source_ctype.signed
            if value.type.bit_width == 1:
                signed = False
            return self._coerce_width(value, target.bit_width, signed, target)
        return value

    def _coerce_width(self, value: Value, width: int, signed: bool,
                      target: Optional[IRType] = None) -> Value:
        if not value.type.is_integer():
            if value.type.is_pointer():
                return self.builder.cast(CastKind.PTRTOINT, value, IntType(width, not signed))
            return value
        current = value.type.bit_width
        target_type = target if target is not None else IntType(width, signed)
        if current == width:
            if isinstance(value, Constant) and target is not None and value.type != target:
                return Constant(target, value.value)
            return value
        if isinstance(value, Constant):
            return Constant(target_type, value.value)
        if current > width:
            return self.builder.trunc(value, target_type)
        kind = CastKind.SEXT if signed else CastKind.ZEXT
        return self.builder.cast(kind, value, target_type)

    def _unify_widths(self, lhs: Value, rhs: Value, expr: BinaryExpr) -> Tuple[Value, Value]:
        if lhs.type.is_pointer() or rhs.type.is_pointer():
            return lhs, rhs
        width = max(lhs.type.bit_width, rhs.type.bit_width)
        signed = isinstance(expr.ctype, CInt) and expr.ctype.signed
        return (self._coerce_width(lhs, width, signed),
                self._coerce_width(rhs, width, signed))

    def _unify_for_compare(self, lhs: Value, rhs: Value,
                           lhs_ctype, rhs_ctype) -> Tuple[Value, Value]:
        if lhs.type.is_pointer() and rhs.type.is_pointer():
            return lhs, rhs
        if lhs.type.is_pointer() and rhs.type.is_integer():
            if isinstance(rhs, Constant):
                return lhs, Constant(lhs.type, rhs.value)
            return lhs, self.builder.cast(CastKind.INTTOPTR, rhs, lhs.type)
        if rhs.type.is_pointer() and lhs.type.is_integer():
            if isinstance(lhs, Constant):
                return Constant(rhs.type, lhs.value), rhs
            return self.builder.cast(CastKind.INTTOPTR, lhs, rhs.type), rhs
        width = max(lhs.type.bit_width, rhs.type.bit_width)
        lhs_signed = not (isinstance(lhs_ctype, CInt) and not lhs_ctype.signed)
        rhs_signed = not (isinstance(rhs_ctype, CInt) and not rhs_ctype.signed)
        return (self._coerce_width(lhs, width, lhs_signed),
                self._coerce_width(rhs, width, rhs_signed))


def lower_translation_unit(unit: TranslationUnit, module_name: str = "",
                           promote: bool = True) -> Module:
    """Lower a type-checked translation unit into an IR module."""
    return Lowering(unit, module_name).lower(promote=promote)
