"""Function inlining with origin tracking.

STACK detects unstable code across function boundaries by letting LLVM inline
callees and then analyzing each (now larger) function in isolation (§4.2).
Instructions copied from a callee are tagged with an INLINE origin so the
report stage can attribute or suppress warnings about them.

The inliner is deliberately simple: it inlines direct calls to functions that
are defined in the same module, are non-recursive, and are within a size
budget.  Return statements become branches to a continuation block with a phi
collecting the return values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.source import inline_origin
from repro.ir.values import Argument, Constant, UndefValue, Value


class InlineBudget:
    """Limits that keep inlining from exploding the IR."""

    def __init__(self, max_callee_instructions: int = 200,
                 max_inline_depth: int = 4) -> None:
        self.max_callee_instructions = max_callee_instructions
        self.max_inline_depth = max_inline_depth


def _clone_instruction(inst: Instruction) -> Instruction:
    """Shallow-clone an instruction, preserving operands (remapped later)."""
    meta = {"location": inst.location, "origin": inst.origin}
    if isinstance(inst, BinaryOp):
        return BinaryOp(inst.kind, inst.lhs, inst.rhs, inst.name, **meta)
    if isinstance(inst, ICmp):
        return ICmp(inst.pred, inst.lhs, inst.rhs, inst.name, **meta)
    if isinstance(inst, Select):
        return Select(inst.condition, inst.on_true, inst.on_false, inst.name, **meta)
    if isinstance(inst, Cast):
        return Cast(inst.kind, inst.value, inst.type, inst.name, **meta)
    if isinstance(inst, Alloca):
        return Alloca(inst.allocated_type, inst.name, **meta)
    if isinstance(inst, Load):
        return Load(inst.pointer, inst.name, **meta)
    if isinstance(inst, Store):
        return Store(inst.value, inst.pointer, **meta)
    if isinstance(inst, GetElementPtr):
        return GetElementPtr(inst.pointer, inst.index, inst.name,
                             element_type=inst.element_type,
                             array_size=inst.array_size, **meta)
    if isinstance(inst, Call):
        return Call(inst.callee, list(inst.args), inst.type, inst.name, **meta)
    if isinstance(inst, Phi):
        phi = Phi(inst.type, inst.name, **meta)
        for value, block in inst.incoming:
            phi.add_incoming(value, block)
        return phi
    if isinstance(inst, Branch):
        return Branch(inst.target, **meta)
    if isinstance(inst, CondBranch):
        return CondBranch(inst.condition, inst.if_true, inst.if_false, **meta)
    if isinstance(inst, Return):
        return Return(inst.value, **meta)
    if isinstance(inst, Unreachable):
        return Unreachable(**meta)
    raise TypeError(f"cannot clone instruction {type(inst).__name__}")


def _function_size(function: Function) -> int:
    return sum(len(block.instructions) for block in function.blocks)


def _is_recursive(function: Function, module: Module,
                  seen: Optional[Set[str]] = None) -> bool:
    seen = set() if seen is None else seen
    if function.name in seen:
        return True
    seen = seen | {function.name}
    for inst in function.instructions():
        if isinstance(inst, Call):
            callee = module.get_function(inst.callee)
            if callee is not None and not callee.is_declaration:
                if callee.name == function.name or _is_recursive(callee, module, seen):
                    return True
    return False


def inline_call(caller: Function, call: Call, callee: Function) -> bool:
    """Inline one call site; returns False if the shape is unsupported."""
    call_block = call.parent
    if call_block is None or not call_block.is_terminated():
        return False
    call_index = call_block.instructions.index(call)

    # Split the call block: everything after the call moves to a new block.
    continuation = caller.add_block(caller.next_name(f"{callee.name}.cont"))
    continuation.instructions = call_block.instructions[call_index + 1:]
    for inst in continuation.instructions:
        inst.parent = continuation
    call_block.instructions = call_block.instructions[:call_index]

    # Successor phis must now refer to the continuation block.
    for successor_block in caller.blocks:
        for phi in successor_block.phis():
            phi.incoming = [
                (value, continuation if pred is call_block else pred)
                for value, pred in phi.incoming
            ]

    # Clone callee blocks.
    value_map: Dict[int, Value] = {}
    block_map: Dict[int, BasicBlock] = {}
    for arg, actual in zip(callee.arguments, call.args):
        value_map[id(arg)] = actual
    for index in range(len(call.args), len(callee.arguments)):
        value_map[id(callee.arguments[index])] = UndefValue(
            callee.arguments[index].type, name="missing_arg")

    for block in callee.blocks:
        clone = caller.add_block(caller.next_name(f"{callee.name}.{block.name}"))
        block_map[id(block)] = clone

    tag = inline_origin(callee.name)
    return_values: List[Value] = []
    return_blocks: List[BasicBlock] = []

    for block in callee.blocks:
        clone = block_map[id(block)]
        for inst in block.instructions:
            copied = _clone_instruction(inst)
            copied.origin = tag if inst.origin.is_user_code() else inst.origin
            if copied.name:
                copied.name = caller.next_name(f"{callee.name}.{copied.name}")
            if isinstance(copied, Return):
                if copied.value is not None:
                    return_values.append(copied.value)
                else:
                    return_values.append(UndefValue(call.type, name="void_ret"))
                return_blocks.append(clone)
                replacement = Branch(continuation, location=copied.location,
                                     origin=copied.origin)
                clone.append(replacement)
            else:
                clone.append(copied)
            value_map[id(inst)] = copied

    # Remap operands and branch targets inside the cloned blocks.
    for block in callee.blocks:
        clone = block_map[id(block)]
        for inst in clone.instructions:
            inst.operands = [value_map.get(id(op), op) for op in inst.operands]
            if isinstance(inst, Branch) and id(inst.target) in block_map:
                inst.target = block_map[id(inst.target)]
            elif isinstance(inst, CondBranch):
                if id(inst.if_true) in block_map:
                    inst.if_true = block_map[id(inst.if_true)]
                if id(inst.if_false) in block_map:
                    inst.if_false = block_map[id(inst.if_false)]
            elif isinstance(inst, Phi):
                inst.incoming = [
                    (value_map.get(id(v), v), block_map.get(id(b), b))
                    for v, b in inst.incoming
                ]

    # Branch from the call block into the cloned entry.
    entry_clone = block_map[id(callee.entry)]
    call_block.append(Branch(entry_clone, location=call.location, origin=tag))

    # Replace the call's value with a phi over the return values.
    replacement_value: Optional[Value] = None
    if not call.type.is_void():
        if len(return_values) == 1:
            replacement_value = value_map.get(id(return_values[0]), return_values[0])
        elif return_values:
            phi = Phi(call.type, caller.next_name(f"{callee.name}.retval"),
                      location=call.location, origin=tag)
            phi.parent = continuation
            for value, block in zip(return_values, return_blocks):
                phi.add_incoming(value_map.get(id(value), value), block)
            continuation.instructions.insert(0, phi)
            replacement_value = phi
        else:
            replacement_value = UndefValue(call.type, name="noreturn")

    if replacement_value is not None:
        for block in caller.blocks:
            for inst in block.instructions:
                inst.replace_operand(call, replacement_value)
    return True


def inline_function_calls(caller: Function, module: Module,
                          budget: Optional[InlineBudget] = None) -> int:
    """Inline eligible call sites in ``caller``; returns the number inlined."""
    budget = budget if budget is not None else InlineBudget()
    inlined = 0
    for _round in range(budget.max_inline_depth):
        call_sites = [
            inst for inst in caller.instructions()
            if isinstance(inst, Call)
        ]
        progress = False
        for call in call_sites:
            callee = module.get_function(call.callee)
            if callee is None or callee.is_declaration or callee is caller:
                continue
            if _function_size(callee) > budget.max_callee_instructions:
                continue
            if _is_recursive(callee, module):
                continue
            if inline_call(caller, call, callee):
                inlined += 1
                progress = True
        if not progress:
            break
    return inlined


def inline_module(module: Module, budget: Optional[InlineBudget] = None) -> int:
    """Inline eligible calls in every defined function of ``module``."""
    total = 0
    for function in module.defined_functions():
        total += inline_function_calls(function, module, budget)
    return total
