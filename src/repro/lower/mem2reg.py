"""Promotion of alloca'd scalars to SSA registers (mem2reg).

The lowering pass emits one alloca per local scalar and loads/stores around
every use, like an unoptimized clang build.  The checker, however, needs SSA
data flow: in Figure 2 of the paper the dereference ``tun->sk`` and the later
check ``!tun`` must refer to the *same* value for the UB condition to make
the check unsatisfiable.  This pass performs the classic SSA construction:

1. find promotable allocas (only loaded and stored, never address-taken),
2. place phi nodes at the iterated dominance frontier of the stores,
3. rename along the dominator tree, replacing loads with reaching values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.dominators import DominatorTree
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store
from repro.ir.values import UndefValue, Value


def compute_dominance_frontiers(
    function: Function, dom: DominatorTree,
) -> Dict[int, List[BasicBlock]]:
    """Cooper's dominance-frontier algorithm keyed by block id."""
    frontiers: Dict[int, List[BasicBlock]] = {id(b): [] for b in function.blocks}
    for block in function.blocks:
        preds = block.predecessors()
        if len(preds) < 2:
            continue
        idom = dom.idom.get(id(block))
        for pred in preds:
            runner: Optional[BasicBlock] = pred
            seen: Set[int] = set()
            while runner is not None and runner is not idom and id(runner) not in seen:
                seen.add(id(runner))
                if block not in frontiers[id(runner)]:
                    frontiers[id(runner)].append(block)
                nxt = dom.idom.get(id(runner))
                if nxt is runner:
                    break
                runner = nxt
    return frontiers


def _promotable_allocas(function: Function) -> List[Alloca]:
    """Allocas used only by loads and stores of their own slot."""
    allocas = [i for i in function.instructions() if isinstance(i, Alloca)]
    promotable: List[Alloca] = []
    for alloca in allocas:
        if not (alloca.allocated_type.is_integer() or alloca.allocated_type.is_pointer()):
            continue
        escaped = False
        for inst in function.instructions():
            if isinstance(inst, Load) and inst.pointer is alloca:
                continue
            if isinstance(inst, Store) and inst.pointer is alloca and inst.value is not alloca:
                continue
            if alloca in inst.operands:
                escaped = True
                break
        if not escaped:
            promotable.append(alloca)
    return promotable


def promote_memory_to_registers(function: Function) -> int:
    """Promote scalar allocas in ``function`` to SSA form.

    Returns the number of allocas promoted.  The function is modified in
    place: promoted allocas and their loads/stores are removed and phi nodes
    are inserted where needed.
    """
    if not function.blocks:
        return 0
    allocas = _promotable_allocas(function)
    if not allocas:
        return 0
    alloca_ids = {id(a): a for a in allocas}

    dom = DominatorTree(function)
    frontiers = compute_dominance_frontiers(function, dom)

    # 1. Phi placement at iterated dominance frontiers of defining blocks.
    phis: Dict[Tuple[int, int], Phi] = {}   # (block id, alloca id) -> phi
    for alloca in allocas:
        def_blocks = [inst.parent for inst in function.instructions()
                      if isinstance(inst, Store) and inst.pointer is alloca]
        worklist = list({id(b): b for b in def_blocks}.values())
        placed: Set[int] = set()
        while worklist:
            block = worklist.pop()
            for frontier_block in frontiers.get(id(block), []):
                if id(frontier_block) in placed:
                    continue
                placed.add(id(frontier_block))
                phi = Phi(alloca.allocated_type,
                          name=function.next_name(f"{alloca.name}.phi"),
                          location=alloca.location)
                phi.parent = frontier_block
                frontier_block.instructions.insert(0, phi)
                phis[(id(frontier_block), id(alloca))] = phi
                worklist.append(frontier_block)

    # 2. Renaming along the dominator tree.
    replacements: Dict[int, Value] = {}      # id(load or phi-alias) -> value
    current: Dict[int, Value] = {}           # alloca id -> reaching value
    to_delete: Set[int] = set()

    def value_of(alloca_id: int, alloca: Alloca) -> Value:
        value = current.get(alloca_id)
        if value is None:
            value = UndefValue(alloca.allocated_type, name=f"{alloca.name}.undef")
            current[alloca_id] = value
        return value

    dom_children: Dict[int, List[BasicBlock]] = {id(b): [] for b in function.blocks}
    for block in function.blocks:
        idom = dom.immediate_dominator(block)
        if idom is not None:
            dom_children[id(idom)].append(block)

    def rename(block: BasicBlock, incoming: Dict[int, Value]) -> None:
        nonlocal current
        saved = dict(incoming)
        current = saved
        for inst in list(block.instructions):
            if isinstance(inst, Phi):
                for (block_id, alloca_id), phi in phis.items():
                    if phi is inst:
                        saved[alloca_id] = phi
                        break
                continue
            if isinstance(inst, Load) and id(inst.pointer) in alloca_ids:
                alloca = alloca_ids[id(inst.pointer)]
                replacements[id(inst)] = value_of(id(alloca), alloca)
                to_delete.add(id(inst))
            elif isinstance(inst, Store) and id(inst.pointer) in alloca_ids:
                saved[id(inst.pointer)] = inst.value
                to_delete.add(id(inst))

        # Fill in phi operands of successors.
        for successor in block.successors():
            for (block_id, alloca_id), phi in phis.items():
                if block_id != id(successor):
                    continue
                alloca = alloca_ids[alloca_id]
                current = saved
                phi.add_incoming(value_of(alloca_id, alloca), block)

        for child in dom_children[id(block)]:
            rename(child, saved)

    rename(function.entry, {})

    # 3. Resolve replacement chains and rewrite every operand.
    def resolve(value: Value) -> Value:
        seen: Set[int] = set()
        while id(value) in replacements and id(value) not in seen:
            seen.add(id(value))
            value = replacements[id(value)]
        return value

    for block in function.blocks:
        for inst in block.instructions:
            inst.operands = [resolve(op) for op in inst.operands]
            if isinstance(inst, Phi):
                inst.incoming = [(resolve(v), b) for v, b in inst.incoming]

    # 4. Delete dead loads, stores, and the allocas themselves.
    for block in function.blocks:
        block.instructions = [
            inst for inst in block.instructions
            if id(inst) not in to_delete and not (
                isinstance(inst, Alloca) and id(inst) in alloca_ids)
        ]
    return len(allocas)


def promote_module(module: Module) -> int:
    """Run mem2reg over every defined function; returns total promotions."""
    total = 0
    for function in module.defined_functions():
        total += promote_memory_to_registers(function)
    return total
