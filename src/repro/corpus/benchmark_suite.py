"""The §6.6 completeness benchmark.

The paper collects ten unstable-code tests from Regehr's "undefined behavior
consequences contest" winners and Wang et al.'s survey and reports that STACK
identifies seven of the ten, missing two because their UB kinds (strict
aliasing, uninitialized variables) are deliberately unimplemented (§4.6) and
one because of the approximate reachability conditions.  This module encodes
an equivalent ten-test suite with the same expected outcome profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.ubconditions import UBKind


@dataclass(frozen=True)
class CompletenessTest:
    """One test of the §6.6 benchmark."""

    name: str
    source: str
    expected_detected: bool
    reason: str
    kind: Optional[UBKind] = None


COMPLETENESS_TESTS: List[CompletenessTest] = [
    CompletenessTest(
        name="pointer_overflow_wraparound_check",
        kind=UBKind.POINTER_OVERFLOW,
        expected_detected=True,
        reason="pointer overflow is in Figure 3 and the check folds to false",
        source="""
int contest_ptr(char *buf, char *buf_end, unsigned int len) {
    if (buf + len >= buf_end) return -1;
    if (buf + len < buf) return -1;
    return 0;
}
""",
    ),
    CompletenessTest(
        name="null_check_after_dereference",
        kind=UBKind.NULL_DEREF,
        expected_detected=True,
        reason="the dominating dereference makes the null check dead",
        source="""
struct sk { int fd; };
struct tun { struct sk *sock; };
int contest_null(struct tun *t) {
    struct sk *s = t->sock;
    if (!t) return 1;
    return 0;
}
""",
    ),
    CompletenessTest(
        name="signed_overflow_sanity_check",
        kind=UBKind.SIGNED_OVERFLOW,
        expected_detected=True,
        reason="x + 100 < x folds to false under no-signed-overflow",
        source="""
int contest_signed(int x) {
    if (x + 100 < x) return -1;
    return 0;
}
""",
    ),
    CompletenessTest(
        name="oversized_shift_check",
        kind=UBKind.OVERSIZED_SHIFT,
        expected_detected=True,
        reason="1 << x can only be zero via an oversized shift",
        source="""
int contest_shift(int x) {
    if (!(1 << x)) return -1;
    return 0;
}
""",
    ),
    CompletenessTest(
        name="abs_most_negative_check",
        kind=UBKind.ABS_OVERFLOW,
        expected_detected=True,
        reason="abs(x) < 0 requires the INT_MIN overflow the compiler assumes away",
        source="""
int contest_abs(int x) {
    if (abs(x) < 0) return -1;
    return 0;
}
""",
    ),
    CompletenessTest(
        name="algebraic_pointer_bounds_check",
        kind=UBKind.POINTER_OVERFLOW,
        expected_detected=True,
        reason="the algebra oracle rewrites data + x < data into x < 0",
        source="""
int contest_algebra(char *data, char *data_end, int size) {
    if (data + size >= data_end || data + size < data) return -1;
    return 0;
}
""",
    ),
    CompletenessTest(
        name="division_overflow_check_after_divide",
        kind=UBKind.SIGNED_OVERFLOW,
        expected_detected=True,
        reason="the overflow test after the division is dead (Postgres, Figure 10)",
        source="""
int64_t contest_div(int64_t a, int64_t b) {
    if (b == 0) return 0;
    int64_t q = a / b;
    if (b == -1 && a < 0 && q <= 0) return 0;
    return q;
}
""",
    ),
    CompletenessTest(
        name="strict_aliasing_violation",
        kind=UBKind.ALIASING,
        expected_detected=False,
        reason="strict-aliasing UB conditions are intentionally unimplemented (§4.6)",
        source="""
int contest_alias(int *i, short *s) {
    *i = 1;
    *s = 0;
    if (*i == 1) return 1;
    return 0;
}
""",
    ),
    CompletenessTest(
        name="uninitialized_variable_read",
        kind=UBKind.UNINITIALIZED,
        expected_detected=False,
        reason="uninitialized-read UB conditions are intentionally unimplemented (§4.6)",
        source="""
int contest_uninit(int flag) {
    int x;
    if (flag) x = 1;
    if (x == 1) return 1;
    return 0;
}
""",
    ),
    CompletenessTest(
        name="loop_carried_pointer_check",
        kind=UBKind.POINTER_OVERFLOW,
        expected_detected=False,
        reason="approximate reachability drops the loop-carried relation (§4.6)",
        source="""
int contest_loop(char *p, int n) {
    char *q = p;
    int i = 0;
    while (i < n) {
        q = q + 1;
        i = i + 1;
    }
    if (q < p) return -1;
    return 0;
}
""",
    ),
]


def expected_detection_count() -> int:
    """The paper's headline: 7 of the 10 tests are identified."""
    return sum(1 for test in COMPLETENESS_TESTS if test.expected_detected)
