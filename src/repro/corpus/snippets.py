"""Unstable- and stable-code snippet templates.

Each :class:`Snippet` is a small, self-contained MiniC translation unit whose
function names can be suffixed so that a synthetic code base can contain many
distinct instances of the same pattern.  The unstable templates cover every
undefined-behavior kind STACK implements (Figure 3) and include the paper's
named examples; the stable templates are correct idioms that must *not* be
flagged (used to measure false positives and to pad realistic corpora).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.classify import BugClass
from repro.core.report import Algorithm
from repro.core.ubconditions import UBKind


@dataclass(frozen=True)
class Snippet:
    """One code pattern used to seed synthetic corpora."""

    name: str
    source_template: str
    ub_kinds: Tuple[UBKind, ...] = ()
    bug_class: Optional[BugClass] = None
    algorithms: Tuple[Algorithm, ...] = ()
    system: str = ""
    figure: str = ""
    description: str = ""

    @property
    def is_unstable(self) -> bool:
        return bool(self.ub_kinds)

    def render(self, suffix: str = "") -> str:
        """Instantiate the template with unique function names."""
        tag = suffix if suffix else "0"
        return self.source_template.replace("{S}", tag)


# ---------------------------------------------------------------------------
# Unstable snippets (expected to be reported by the checker)
# ---------------------------------------------------------------------------

SNIPPETS: List[Snippet] = [
    Snippet(
        name="fig1_pointer_overflow_check",
        figure="Figure 1",
        system="Chromium",
        description="buf + len < buf sanity check discarded under no-pointer-overflow",
        ub_kinds=(UBKind.POINTER_OVERFLOW,),
        bug_class=BugClass.URGENT_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN, Algorithm.ELIMINATION),
        source_template="""
int write_check_{S}(char *buf, char *buf_end, unsigned int len) {
    if (buf + len >= buf_end)
        return -1;
    if (buf + len < buf)
        return -1;
    return 0;
}
""",
    ),
    Snippet(
        name="fig2_null_check_after_deref",
        figure="Figure 2",
        system="Linux kernel",
        description="CVE-2009-1897: tun->sk dereferenced before the !tun check",
        ub_kinds=(UBKind.NULL_DEREF,),
        bug_class=BugClass.NON_OPTIMIZATION,
        algorithms=(Algorithm.ELIMINATION, Algorithm.SIMPLIFY_BOOLEAN),
        source_template="""
struct sock_{S} { int fd; };
struct tun_struct_{S} { struct sock_{S} *sk; };
int tun_chr_poll_{S}(struct tun_struct_{S} *tun) {
    struct sock_{S} *sk = tun->sk;
    if (!tun)
        return 1;
    return 0;
}
""",
    ),
    Snippet(
        name="fig10_postgres_division_overflow",
        figure="Figure 10",
        system="Postgres",
        description="overflow check placed after the 64-bit signed division",
        ub_kinds=(UBKind.SIGNED_OVERFLOW,),
        bug_class=BugClass.NON_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN,),
        source_template="""
int64_t int8div_{S}(int64_t arg1, int64_t arg2) {
    if (arg2 == 0)
        return 0;
    int64_t result = arg1 / arg2;
    if (arg2 == -1 && arg1 < 0 && result <= 0)
        return 0;
    return result;
}
""",
    ),
    Snippet(
        name="fig11_strchr_plus_one_null_check",
        figure="Figure 11",
        system="Linux kernel",
        description="null check applied to strchr() + 1 instead of strchr()",
        ub_kinds=(UBKind.POINTER_OVERFLOW,),
        bug_class=BugClass.NON_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN, Algorithm.ELIMINATION),
        source_template="""
int dn_node_address_{S}(char *buf) {
    unsigned long node;
    char *nodep = strchr(buf, '.') + 1;
    if (!nodep)
        return -5;
    node = simple_strtoul(nodep, 0, 10);
    return 0;
}
""",
    ),
    Snippet(
        name="fig12_ffmpeg_amf_bounds_check",
        figure="Figure 12",
        system="FFmpeg+Libav",
        description="data + size < data rewritten into size < 0 by the algebra oracle",
        ub_kinds=(UBKind.POINTER_OVERFLOW,),
        bug_class=BugClass.URGENT_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_ALGEBRA,),
        source_template="""
int amf_parse_{S}(char *data, char *data_end, int size) {
    if (data + size >= data_end || data + size < data)
        return -1;
    data = data + size;
    return 0;
}
""",
    ),
    Snippet(
        name="fig13_plan9_pdec_negation",
        figure="Figure 13",
        system="plan9port",
        description="-k >= 0 used to filter INT_MIN inside a k < 0 branch",
        ub_kinds=(UBKind.SIGNED_OVERFLOW,),
        bug_class=BugClass.URGENT_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN,),
        source_template="""
int pdec_{S}(int k) {
    if (k < 0) {
        if (-k >= 0)
            return 1;
        return 2;
    }
    return 0;
}
""",
    ),
    Snippet(
        name="fig14_postgres_time_bomb",
        figure="Figure 14",
        system="Postgres",
        description="(-arg1 < 0) == (arg1 < 0) used to detect INT64_MIN",
        ub_kinds=(UBKind.SIGNED_OVERFLOW,),
        bug_class=BugClass.TIME_BOMB,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN, Algorithm.ELIMINATION),
        source_template="""
int check_int64_min_{S}(int64_t arg1) {
    if (arg1 != 0 && ((-arg1 < 0) == (arg1 < 0)))
        return -1;
    return 0;
}
""",
    ),
    Snippet(
        name="fig15_redundant_null_check",
        figure="Figure 15",
        system="Linux kernel",
        description="caller guarantees c != NULL; the flagged check is redundant",
        ub_kinds=(UBKind.NULL_DEREF,),
        bug_class=BugClass.REDUNDANT,
        algorithms=(Algorithm.ELIMINATION, Algorithm.SIMPLIFY_BOOLEAN),
        source_template="""
struct p9_client_{S} { long trans; int status; };
int rdma_close_{S}(struct p9_client_{S} *c) {
    long rdma = c->trans;
    if (c)
        return 1;
    return 0;
}
""",
    ),
    Snippet(
        name="signed_add_sanity_check",
        figure="Figure 4 (col 3)",
        description="x + 100 < x, the gcc bug 30475 debate",
        ub_kinds=(UBKind.SIGNED_OVERFLOW,),
        bug_class=BugClass.URGENT_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN, Algorithm.ELIMINATION),
        source_template="""
int alloc_guard_{S}(int len) {
    if (len + 100 < len)
        return -1;
    return len + 100;
}
""",
    ),
    Snippet(
        name="positive_signed_overflow_check",
        figure="Figure 4 (col 4)",
        description="x known positive, then x + 100 < 0 tested",
        ub_kinds=(UBKind.SIGNED_OVERFLOW,),
        bug_class=BugClass.URGENT_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN, Algorithm.ELIMINATION),
        source_template="""
int grow_buffer_{S}(int n) {
    if (n <= 0)
        return 0;
    if (n + 100 < 0)
        return -1;
    return n + 100;
}
""",
    ),
    Snippet(
        name="ext4_oversized_shift_check",
        figure="Figure 4 (col 5)",
        system="Linux kernel",
        description="!(1 << x) intended to reject large shift amounts (ext4 patch)",
        ub_kinds=(UBKind.OVERSIZED_SHIFT,),
        bug_class=BugClass.URGENT_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN, Algorithm.ELIMINATION),
        source_template="""
int ext4_fill_super_{S}(int groups_per_flex) {
    if (!(1 << groups_per_flex))
        return -22;
    return 1 << groups_per_flex;
}
""",
    ),
    Snippet(
        name="php_abs_overflow_check",
        figure="Figure 4 (col 6)",
        system="PHP",
        description="abs(x) < 0 used to catch INT_MIN in the PHP interpreter",
        ub_kinds=(UBKind.ABS_OVERFLOW,),
        bug_class=BugClass.URGENT_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN, Algorithm.ELIMINATION),
        source_template="""
int php_round_{S}(int places) {
    if (abs(places) < 0)
        return -1;
    return abs(places);
}
""",
    ),
    Snippet(
        name="division_by_zero_late_check",
        description="divide first, reject the zero divisor afterwards",
        ub_kinds=(UBKind.DIV_BY_ZERO,),
        bug_class=BugClass.NON_OPTIMIZATION,
        algorithms=(Algorithm.ELIMINATION,),
        source_template="""
int average_{S}(int total, int count) {
    int mean = total / count;
    if (count == 0)
        return 0;
    return mean;
}
""",
    ),
    Snippet(
        name="buffer_index_checked_after_use",
        description="array indexed before the bounds check",
        ub_kinds=(UBKind.BUFFER_OVERFLOW,),
        bug_class=BugClass.TIME_BOMB,
        algorithms=(Algorithm.ELIMINATION,),
        source_template="""
int table_lookup_{S}(int idx) {
    int table[16];
    int value = table[idx];
    if (idx < 0 || idx >= 16)
        return -1;
    return value;
}
""",
    ),
    Snippet(
        name="memcpy_overlap_guard_after_copy",
        description="self-copy (overlap) check placed after the memcpy",
        ub_kinds=(UBKind.MEMCPY_OVERLAP,),
        bug_class=BugClass.TIME_BOMB,
        algorithms=(Algorithm.ELIMINATION,),
        source_template="""
int copy_packet_{S}(char *dst, char *src, unsigned long len) {
    memcpy(dst, src, len);
    if (dst == src && len != 0)
        return -1;
    return 0;
}
""",
    ),
    Snippet(
        name="use_after_free_check",
        description="pointer used after free, then tested",
        ub_kinds=(UBKind.USE_AFTER_FREE,),
        bug_class=BugClass.TIME_BOMB,
        algorithms=(Algorithm.ELIMINATION,),
        source_template="""
int drop_connection_{S}(int *state) {
    free(state);
    int last = *state;
    if (!state)
        return -1;
    return last;
}
""",
    ),
    Snippet(
        name="use_after_realloc_check",
        description="old pointer dereferenced after a successful realloc",
        ub_kinds=(UBKind.USE_AFTER_REALLOC,),
        bug_class=BugClass.TIME_BOMB,
        algorithms=(Algorithm.ELIMINATION,),
        source_template="""
int grow_table_{S}(int *table, unsigned long new_size) {
    int *bigger = realloc(table, new_size);
    if (bigger != 0) {
        int first = *table;
        if (!table)
            return -1;
        return first;
    }
    return 0;
}
""",
    ),
    Snippet(
        name="null_check_after_field_write",
        description="structure field written through the pointer before the null check",
        ub_kinds=(UBKind.NULL_DEREF,),
        bug_class=BugClass.URGENT_OPTIMIZATION,
        algorithms=(Algorithm.ELIMINATION, Algorithm.SIMPLIFY_BOOLEAN),
        source_template="""
struct request_{S} { int flags; int status; };
int submit_request_{S}(struct request_{S} *req) {
    req->status = 0;
    if (req == 0)
        return -12;
    req->flags = 1;
    return 0;
}
""",
    ),
    Snippet(
        name="pointer_offset_wrap_check_unsigned",
        description="start + offset < start with an unsigned offset (Python _sre pattern)",
        system="Python",
        ub_kinds=(UBKind.POINTER_OVERFLOW,),
        bug_class=BugClass.URGENT_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN, Algorithm.ELIMINATION),
        source_template="""
int sre_match_{S}(char *ptr, unsigned long offset, char *end) {
    if (ptr + offset < ptr)
        return 0;
    if (ptr + offset > end)
        return 0;
    return 1;
}
""",
    ),
    Snippet(
        name="signed_add_overflow_check_after",
        description="overflow of a positive increment tested after the addition",
        ub_kinds=(UBKind.SIGNED_OVERFLOW,),
        bug_class=BugClass.TIME_BOMB,
        algorithms=(Algorithm.ELIMINATION,),
        source_template="""
int append_record_{S}(int used, int extra) {
    int total = used + extra;
    if (extra > 0 && total < used)
        return -1;
    return total;
}
""",
    ),
    Snippet(
        name="kerberos_length_check",
        system="Kerberos",
        description="length sanity check on a pointer sum (krb5-style buffer parsing)",
        ub_kinds=(UBKind.POINTER_OVERFLOW,),
        bug_class=BugClass.URGENT_OPTIMIZATION,
        algorithms=(Algorithm.SIMPLIFY_BOOLEAN, Algorithm.ELIMINATION),
        source_template="""
int krb5_parse_{S}(char *ptr, unsigned int len, char *limit) {
    if (ptr + len < ptr)
        return -1;
    if (ptr + len > limit)
        return -1;
    return 0;
}
""",
    ),
    Snippet(
        name="shift_by_width_guard_after",
        description="value shifted before the width guard",
        ub_kinds=(UBKind.OVERSIZED_SHIFT,),
        bug_class=BugClass.TIME_BOMB,
        algorithms=(Algorithm.ELIMINATION,),
        source_template="""
unsigned int bitmask_{S}(unsigned int bits) {
    unsigned int mask = 1u << bits;
    if (bits >= 32u)
        return 0u;
    return mask;
}
""",
    ),
]


# ---------------------------------------------------------------------------
# Stable snippets (must NOT be reported)
# ---------------------------------------------------------------------------

STABLE_SNIPPETS: List[Snippet] = [
    Snippet(
        name="stable_division_guard",
        description="divisor tested before the division",
        source_template="""
int safe_div_{S}(int a, int b) {
    if (b == 0)
        return 0;
    return a / b;
}
""",
    ),
    Snippet(
        name="stable_null_guard",
        description="pointer tested before the dereference",
        source_template="""
int deref_{S}(int *p) {
    if (!p)
        return -1;
    return *p;
}
""",
    ),
    Snippet(
        name="stable_bounds_rewrite",
        description="the recommended x >= end - start rewrite from §6.2.2",
        source_template="""
int parse_{S}(char *data, char *data_end, long size) {
    if (size < 0 || size >= data_end - data)
        return -1;
    return 0;
}
""",
    ),
    Snippet(
        name="stable_unsigned_wraparound",
        description="unsigned wraparound is defined behaviour; check is meaningful",
        source_template="""
unsigned int add_sat_{S}(unsigned int x) {
    if (x + 16u < x)
        return 0xffffffffu;
    return x + 16u;
}
""",
    ),
    Snippet(
        name="stable_limit_check_before_add",
        description="overflow avoided by checking against INT_MAX first",
        source_template="""
int bump_{S}(int x) {
    if (x > 2147483547)
        return -1;
    if (x < 0)
        return -1;
    return x + 100;
}
""",
    ),
    Snippet(
        name="stable_shift_guard",
        description="shift amount validated before shifting",
        source_template="""
unsigned int mask_{S}(unsigned int bits) {
    if (bits >= 32u)
        return 0u;
    return 1u << bits;
}
""",
    ),
    Snippet(
        name="stable_loop_sum",
        description="plain loop arithmetic, nothing to report",
        source_template="""
int sum_{S}(int n) {
    int total = 0;
    for (int i = 0; i < n; i = i + 1)
        total = total + 1;
    return total;
}
""",
    ),
    Snippet(
        name="stable_struct_walk",
        description="struct access guarded by a prior null check",
        source_template="""
struct node_{S} { int value; struct node_{S} *next; };
int head_value_{S}(struct node_{S} *head) {
    if (head == 0)
        return -1;
    return head->value;
}
""",
    ),
]


# ---------------------------------------------------------------------------
# Fuzzer-discovered snippets (registered at runtime)
# ---------------------------------------------------------------------------

#: Reducer-minimized reproducers registered by fuzz campaigns
#: (:mod:`repro.fuzz`).  Unlike the hand-written lists above, this registry
#: starts empty and grows as campaigns run; registered snippets resolve
#: through :func:`snippet_by_name` like any other.
FUZZ_SNIPPETS: List[Snippet] = []


def register_snippet(snippet: Snippet) -> Snippet:
    """Register a discovered snippet (idempotent per name *and* content).

    Re-registering an identical snippet returns the already-registered one,
    so campaigns that minimize the same shape twice do not duplicate
    entries.  Reusing a registered name for a *different* template is an
    error — as is colliding with a hand-written snippet name — so a stale
    name can never silently shadow new content.
    """
    existing = _ALL_BY_NAME.get(snippet.name)
    if existing is not None:
        if existing not in FUZZ_SNIPPETS:
            raise ValueError(f"snippet name {snippet.name!r} is already "
                             f"taken by a hand-written snippet")
        if existing.source_template != snippet.source_template:
            raise ValueError(f"snippet name {snippet.name!r} is already "
                             f"registered with a different template")
        return existing
    FUZZ_SNIPPETS.append(snippet)
    _ALL_BY_NAME[snippet.name] = snippet
    return snippet


# ---------------------------------------------------------------------------
# Lookup helpers
# ---------------------------------------------------------------------------

_ALL_BY_NAME: Dict[str, Snippet] = {s.name: s for s in SNIPPETS + STABLE_SNIPPETS}


def snippet_by_name(name: str) -> Snippet:
    """Look up any snippet (unstable, stable, or fuzzer-registered) by name."""
    if name not in _ALL_BY_NAME:
        raise KeyError(f"unknown snippet {name!r}")
    return _ALL_BY_NAME[name]


def snippets_for_kind(kind: UBKind) -> List[Snippet]:
    """All unstable snippets whose expected UB kinds include ``kind``."""
    return [s for s in SNIPPETS if kind in s.ub_kinds]


def paper_figure_snippets() -> List[Snippet]:
    """The snippets that correspond to numbered figures in the paper."""
    return [s for s in SNIPPETS if s.figure.startswith("Figure 1") or s.figure == "Figure 2"]
