"""The systems of Figure 9 and their synthetic code bases.

The paper reports 160 new bugs across 23 systems (plus an "others" bucket),
broken down by undefined-behavior kind.  The row totals (bugs per system) and
the column totals (bugs per UB kind) are reproduced here exactly as printed.
The per-cell placement is not recoverable from the paper text layout, so
:func:`apportion_bug_matrix` derives a deterministic matrix that (a) matches
both margins exactly and (b) honours hints for the well-known cases the paper
discusses (Kerberos is null-pointer-heavy, Postgres signed-overflow-heavy,
the Linux kernel has the big shift/buffer counts, and so on).

:func:`generate_system_corpus` then turns one system's row into a synthetic
code base: a list of (filename, source) pairs seeded with unstable snippets
of the right kinds plus stable filler code, which the Figure 9 experiment
feeds to the checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ubconditions import UBKind
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS, Snippet, snippets_for_kind

#: Column order of Figure 9.
FIGURE9_KINDS: Tuple[UBKind, ...] = (
    UBKind.POINTER_OVERFLOW,
    UBKind.NULL_DEREF,
    UBKind.SIGNED_OVERFLOW,
    UBKind.DIV_BY_ZERO,
    UBKind.OVERSIZED_SHIFT,
    UBKind.BUFFER_OVERFLOW,
    UBKind.ABS_OVERFLOW,
    UBKind.MEMCPY_OVERLAP,
    UBKind.USE_AFTER_FREE,
    UBKind.USE_AFTER_REALLOC,
)

#: Bugs per system exactly as the Figure 9 row totals report them.
FIGURE9_SYSTEM_TOTALS: Dict[str, int] = {
    "Binutils": 8,
    "e2fsprogs": 3,
    "FFmpeg+Libav": 21,
    "FreeType": 3,
    "GRUB": 2,
    "HiStar": 3,
    "Kerberos": 11,
    "libX11": 2,
    "libarchive": 2,
    "libgcrypt": 2,
    "Linux kernel": 32,
    "Mozilla": 3,
    "OpenAFS": 11,
    "plan9port": 3,
    "Postgres": 9,
    "Python": 5,
    "QEMU": 4,
    "Ruby+Rubinius": 2,
    "Sane": 8,
    "uClibc": 2,
    "VLC": 2,
    "Xen": 3,
    "Xpdf": 9,
    "others": 10,
}

#: Bugs per UB kind exactly as the Figure 9 column totals ("all" row).
FIGURE9_KIND_TOTALS: Dict[UBKind, int] = {
    UBKind.POINTER_OVERFLOW: 29,
    UBKind.NULL_DEREF: 44,
    UBKind.SIGNED_OVERFLOW: 23,
    UBKind.DIV_BY_ZERO: 7,
    UBKind.OVERSIZED_SHIFT: 23,
    UBKind.BUFFER_OVERFLOW: 14,
    UBKind.ABS_OVERFLOW: 1,
    UBKind.MEMCPY_OVERLAP: 7,
    UBKind.USE_AFTER_FREE: 9,
    UBKind.USE_AFTER_REALLOC: 3,
}

FIGURE9_TOTAL_BUGS = 160

#: Per-cell hints for the systems whose bug mix the paper describes in text.
_PLACEMENT_HINTS: Dict[str, Dict[UBKind, int]] = {
    "Kerberos": {UBKind.NULL_DEREF: 9, UBKind.POINTER_OVERFLOW: 1,
                 UBKind.USE_AFTER_FREE: 1},
    "Postgres": {UBKind.SIGNED_OVERFLOW: 7, UBKind.DIV_BY_ZERO: 1,
                 UBKind.NULL_DEREF: 1},
    "Linux kernel": {UBKind.OVERSIZED_SHIFT: 10, UBKind.BUFFER_OVERFLOW: 5,
                     UBKind.USE_AFTER_FREE: 5, UBKind.NULL_DEREF: 6,
                     UBKind.DIV_BY_ZERO: 2, UBKind.USE_AFTER_REALLOC: 2,
                     UBKind.POINTER_OVERFLOW: 1, UBKind.SIGNED_OVERFLOW: 1},
    "FFmpeg+Libav": {UBKind.POINTER_OVERFLOW: 9, UBKind.NULL_DEREF: 6,
                     UBKind.OVERSIZED_SHIFT: 3, UBKind.SIGNED_OVERFLOW: 1,
                     UBKind.DIV_BY_ZERO: 1, UBKind.MEMCPY_OVERLAP: 1},
    "Python": {UBKind.POINTER_OVERFLOW: 5},
    "FreeType": {UBKind.SIGNED_OVERFLOW: 3},
    "Binutils": {UBKind.POINTER_OVERFLOW: 6, UBKind.NULL_DEREF: 1,
                 UBKind.SIGNED_OVERFLOW: 1},
    "plan9port": {UBKind.SIGNED_OVERFLOW: 1, UBKind.POINTER_OVERFLOW: 1,
                  UBKind.BUFFER_OVERFLOW: 1},
    "others": {UBKind.ABS_OVERFLOW: 1},
}


@dataclass(frozen=True)
class SystemProfile:
    """One row of Figure 9."""

    name: str
    total_bugs: int
    breakdown: Dict[UBKind, int] = field(default_factory=dict)

    def kinds(self) -> List[UBKind]:
        return [kind for kind, count in self.breakdown.items() if count > 0]


def apportion_bug_matrix(
    system_totals: Optional[Dict[str, int]] = None,
    kind_totals: Optional[Dict[UBKind, int]] = None,
    hints: Optional[Dict[str, Dict[UBKind, int]]] = None,
) -> Dict[str, Dict[UBKind, int]]:
    """Build a per-system/per-kind bug matrix matching both margins exactly.

    The hinted cells are placed first (clamped to what the margins allow);
    the remainder is filled greedily in a fixed order, so the result is
    deterministic.
    """
    system_totals = dict(FIGURE9_SYSTEM_TOTALS if system_totals is None else system_totals)
    kind_totals = dict(FIGURE9_KIND_TOTALS if kind_totals is None else kind_totals)
    hints = _PLACEMENT_HINTS if hints is None else hints

    remaining_system = dict(system_totals)
    remaining_kind = dict(kind_totals)
    matrix: Dict[str, Dict[UBKind, int]] = {
        name: {kind: 0 for kind in FIGURE9_KINDS} for name in system_totals
    }

    for name, hinted in hints.items():
        if name not in matrix:
            continue
        for kind, wanted in hinted.items():
            allowed = min(wanted, remaining_system[name], remaining_kind.get(kind, 0))
            matrix[name][kind] += allowed
            remaining_system[name] -= allowed
            remaining_kind[kind] -= allowed

    for name in system_totals:
        for kind in FIGURE9_KINDS:
            if remaining_system[name] == 0:
                break
            take = min(remaining_system[name], remaining_kind.get(kind, 0))
            if take <= 0:
                continue
            matrix[name][kind] += take
            remaining_system[name] -= take
            remaining_kind[kind] -= take

    leftover_systems = {n: c for n, c in remaining_system.items() if c}
    leftover_kinds = {k: c for k, c in remaining_kind.items() if c}
    if leftover_systems or leftover_kinds:
        raise ValueError(
            f"margins cannot be satisfied: systems={leftover_systems} "
            f"kinds={leftover_kinds}")
    return matrix


def build_system_profiles() -> List[SystemProfile]:
    """All Figure 9 systems with a consistent per-kind breakdown."""
    matrix = apportion_bug_matrix()
    profiles = []
    for name, total in FIGURE9_SYSTEM_TOTALS.items():
        breakdown = {kind: count for kind, count in matrix[name].items() if count}
        profiles.append(SystemProfile(name=name, total_bugs=total, breakdown=breakdown))
    return profiles


SYSTEMS: List[SystemProfile] = build_system_profiles()


def system_by_name(name: str) -> SystemProfile:
    for profile in SYSTEMS:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown system {name!r}")


# ---------------------------------------------------------------------------
# Synthetic code-base generation
# ---------------------------------------------------------------------------

def _snippets_covering(kind: UBKind) -> List[Snippet]:
    candidates = snippets_for_kind(kind)
    if not candidates:
        raise ValueError(f"no snippet template covers UB kind {kind}")
    # Figure 9 counts confirmed (real) bugs, so the per-system corpora are
    # seeded from non-redundant templates whenever possible; redundant-code
    # reports are exercised separately by the §6.3 precision experiment.
    from repro.core.classify import BugClass

    real = [s for s in candidates if s.bug_class is not BugClass.REDUNDANT]
    return real if real else candidates


def generate_system_corpus(
    profile: SystemProfile,
    stable_files_per_bug: int = 1,
    files_per_unit: int = 1,
) -> List[Tuple[str, str, Optional[Snippet]]]:
    """Generate a synthetic code base for one system.

    Returns a list of ``(filename, source, seeded_snippet)`` triples.  Each
    seeded bug instance becomes its own translation unit (mirroring STACK's
    per-file analysis); stable filler units are interleaved so the corpus is
    not bug-only.  ``seeded_snippet`` is None for the filler units.
    """
    corpus: List[Tuple[str, str, Optional[Snippet]]] = []
    slug = profile.name.lower().replace("+", "_").replace(" ", "_")
    instance = 0
    for kind in FIGURE9_KINDS:
        count = profile.breakdown.get(kind, 0)
        candidates = _snippets_covering(kind) if count else []
        for occurrence in range(count):
            snippet = candidates[occurrence % len(candidates)]
            suffix = f"{slug}_{instance}"
            filename = f"{slug}/{snippet.name}_{instance}.c"
            corpus.append((filename, snippet.render(suffix), snippet))
            instance += 1

    stable_count = max(1, profile.total_bugs * stable_files_per_bug)
    for index in range(stable_count):
        snippet = STABLE_SNIPPETS[index % len(STABLE_SNIPPETS)]
        suffix = f"{slug}_ok_{index}"
        filename = f"{slug}/{snippet.name}_{index}.c"
        corpus.append((filename, snippet.render(suffix), None))
    return corpus


def total_seeded_bugs(profiles: Sequence[SystemProfile] = tuple(SYSTEMS)) -> int:
    return sum(p.total_bugs for p in profiles)
