"""Code corpora used by the evaluation experiments.

The paper evaluates STACK on real code bases (Linux, Postgres, Kerberos, the
whole Debian Wheezy archive).  Those trees are not available offline, so this
package provides the synthetic equivalents described in DESIGN.md:

* :mod:`repro.corpus.snippets` — the paper's verbatim examples (Figures 1, 2,
  10–15 and the six Figure 4 checks) plus a library of unstable- and
  stable-code templates covering every UB kind STACK implements,
* :mod:`repro.corpus.systems` — the 23 systems of Figure 9 with their
  reported bug mixes, and per-system synthetic code bases seeded accordingly,
* :mod:`repro.corpus.debian` — a scaled model of the Debian Wheezy archive
  for the prevalence experiments (Figures 17/18, §6.5),
* :mod:`repro.corpus.benchmark_suite` — the ten-test completeness benchmark
  of §6.6 (Regehr's contest winners plus the Wang et al. survey).
"""

from repro.corpus.snippets import (
    FUZZ_SNIPPETS,
    SNIPPETS,
    STABLE_SNIPPETS,
    Snippet,
    register_snippet,
    snippet_by_name,
    snippets_for_kind,
)
from repro.corpus.systems import SYSTEMS, SystemProfile, generate_system_corpus
from repro.corpus.debian import DebianArchiveModel
from repro.corpus.benchmark_suite import COMPLETENESS_TESTS, CompletenessTest

__all__ = [
    "COMPLETENESS_TESTS",
    "CompletenessTest",
    "DebianArchiveModel",
    "FUZZ_SNIPPETS",
    "register_snippet",
    "SNIPPETS",
    "STABLE_SNIPPETS",
    "SYSTEMS",
    "Snippet",
    "SystemProfile",
    "generate_system_corpus",
    "snippet_by_name",
    "snippets_for_kind",
]
