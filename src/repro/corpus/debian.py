"""A scaled model of the Debian Wheezy archive (§6.5, Figures 17 and 18).

The paper runs STACK over all 17,432 Debian Wheezy packages (8,575 of which
contain C/C++ code) using roughly 150 CPU-days.  The reproduction models the
archive instead: packages are generated deterministically, with the fraction
containing unstable code and the mix of undefined-behavior kinds calibrated
to the paper's published counts.  Experiments analyze a sample of packages
with the real checker and extrapolate to archive scale; EXPERIMENTS.md
records the sample size next to every extrapolated number.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ubconditions import UBKind
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS, Snippet, snippets_for_kind

#: Constants reported by the paper (§6.5, Figures 17 and 18).
PAPER_TOTAL_PACKAGES = 17_432
PAPER_C_PACKAGES = 8_575
PAPER_PACKAGES_WITH_REPORTS = 3_471
PAPER_REPORTS_BY_ALGORITHM = {
    "elimination": 23_969,
    "simplification (boolean oracle)": 47_040,
    "simplification (algebra oracle)": 871,
}
PAPER_PACKAGES_BY_ALGORITHM = {
    "elimination": 2_079,
    "simplification (boolean oracle)": 2_672,
    "simplification (algebra oracle)": 294,
}
PAPER_REPORTS_BY_KIND = {
    UBKind.NULL_DEREF: 59_230,
    UBKind.BUFFER_OVERFLOW: 5_795,
    UBKind.SIGNED_OVERFLOW: 4_364,
    UBKind.POINTER_OVERFLOW: 3_680,
    UBKind.OVERSIZED_SHIFT: 594,
    UBKind.MEMCPY_OVERLAP: 227,
    UBKind.DIV_BY_ZERO: 226,
    UBKind.USE_AFTER_FREE: 156,
    UBKind.ABS_OVERFLOW: 86,
    UBKind.USE_AFTER_REALLOC: 22,
}
PAPER_SINGLE_UB_REPORTS = 69_301
PAPER_MULTI_UB_REPORTS = 2_579
PAPER_MAX_UB_CONDITIONS = 8


@dataclass
class SyntheticPackage:
    """One synthetic Debian package: a handful of translation units."""

    name: str
    files: List[Tuple[str, str, Optional[Snippet]]] = field(default_factory=list)

    @property
    def seeded_snippets(self) -> List[Snippet]:
        return [snippet for _name, _src, snippet in self.files if snippet is not None]

    @property
    def has_seeded_unstable_code(self) -> bool:
        return bool(self.seeded_snippets)


class DebianArchiveModel:
    """Deterministic generator of archive-shaped synthetic packages."""

    def __init__(self, seed: int = 2013,
                 unstable_package_fraction: Optional[float] = None) -> None:
        self.seed = seed
        if unstable_package_fraction is None:
            unstable_package_fraction = PAPER_PACKAGES_WITH_REPORTS / PAPER_C_PACKAGES
        self.unstable_package_fraction = unstable_package_fraction
        self._kind_weights = self._kind_weight_table()

    @staticmethod
    def _kind_weight_table() -> List[Tuple[UBKind, float]]:
        total = sum(PAPER_REPORTS_BY_KIND.values())
        return [(kind, count / total) for kind, count in PAPER_REPORTS_BY_KIND.items()]

    # -- package generation -----------------------------------------------------------

    def generate_package(self, index: int) -> SyntheticPackage:
        """Deterministically generate package ``index`` of the archive."""
        rng = random.Random(f"{self.seed}:{index}")
        name = f"pkg{index:05d}"
        package = SyntheticPackage(name=name)

        stable_files = rng.randint(1, 3)
        for file_index in range(stable_files):
            snippet = STABLE_SNIPPETS[rng.randrange(len(STABLE_SNIPPETS))]
            suffix = f"{name}_s{file_index}"
            package.files.append(
                (f"{name}/util_{file_index}.c", snippet.render(suffix), None))

        if rng.random() < self.unstable_package_fraction:
            seeded = rng.randint(1, 3)
            for bug_index in range(seeded):
                kind = self._pick_kind(rng)
                candidates = snippets_for_kind(kind)
                snippet = candidates[rng.randrange(len(candidates))]
                suffix = f"{name}_b{bug_index}"
                package.files.append(
                    (f"{name}/{snippet.name}_{bug_index}.c",
                     snippet.render(suffix), snippet))
        return package

    def _pick_kind(self, rng: random.Random) -> UBKind:
        roll = rng.random()
        cumulative = 0.0
        for kind, weight in self._kind_weights:
            cumulative += weight
            if roll <= cumulative:
                return kind
        return self._kind_weights[-1][0]

    def sample_packages(self, count: int, start: int = 0) -> List[SyntheticPackage]:
        """A deterministic sample of ``count`` packages."""
        return [self.generate_package(index) for index in range(start, start + count)]

    # -- extrapolation helpers -----------------------------------------------------------

    @staticmethod
    def scale_to_archive(sample_value: float, sample_size: int,
                         population: int = PAPER_C_PACKAGES) -> float:
        """Extrapolate a per-sample count to the full 8,575-package archive."""
        if sample_size <= 0:
            return 0.0
        return sample_value * (population / sample_size)
