"""Bug reports and diagnostics (§4.5 of the paper).

A :class:`Diagnostic` describes one piece of unstable code: where it is,
which algorithm found it (elimination, boolean simplification, or algebra
simplification), what the optimizer would do to it, and the minimal set of
undefined-behavior conditions responsible.  A :class:`BugReport` aggregates
the diagnostics for a module together with the query statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.ubconditions import UBCondition, UBKind
from repro.ir.source import Origin, SourceLocation


class Algorithm(enum.Enum):
    """Which solver-based optimization identified the unstable code (§3.2)."""

    ELIMINATION = "elimination"
    SIMPLIFY_BOOLEAN = "simplification (boolean oracle)"
    SIMPLIFY_ALGEBRA = "simplification (algebra oracle)"


@dataclass
class MinimalUBSet:
    """The minimal set of UB conditions that makes a fragment unstable (Fig. 8)."""

    conditions: List[UBCondition] = field(default_factory=list)

    @property
    def kinds(self) -> List[UBKind]:
        return [c.kind for c in self.conditions]

    def __len__(self) -> int:
        return len(self.conditions)

    def __iter__(self):
        return iter(self.conditions)

    def describe(self) -> str:
        if not self.conditions:
            return "(no single UB condition isolated)"
        return "; ".join(c.describe() for c in self.conditions)


@dataclass
class Diagnostic:
    """One unstable-code warning."""

    function: str
    location: SourceLocation
    algorithm: Algorithm
    message: str
    fragment: str = ""                   # printed IR of the unstable fragment
    replacement: str = ""                # what the optimizer would fold it to
    ub_set: MinimalUBSet = field(default_factory=MinimalUBSet)
    origin: Optional[Origin] = None
    classification: Optional[str] = None  # filled by repro.core.classify
    #: Concrete replay verdict (a :class:`repro.exec.witness.WitnessReport`),
    #: attached by stage 5 when ``CheckerConfig.validate_witnesses`` is set.
    witness: Optional["WitnessReport"] = None
    #: Auto-repair verdict (a :class:`repro.repair.repair.RepairReport`),
    #: attached by stage 6 when ``CheckerConfig.repair`` is set.
    repair: Optional["RepairReport"] = None

    @property
    def ub_kinds(self) -> List[UBKind]:
        return self.ub_set.kinds

    def describe(self) -> str:
        lines = [f"{self.location}: unstable code in function '{self.function}'",
                 f"  {self.message}"]
        if self.replacement:
            lines.append(f"  the optimizer may replace it with: {self.replacement}")
        lines.append(f"  found by: {self.algorithm.value}")
        lines.append(f"  undefined behavior involved: {self.ub_set.describe()}")
        if self.classification:
            lines.append(f"  classification: {self.classification}")
        if self.witness is not None:
            lines.append(f"  {self.witness.describe()}")
        if self.repair is not None:
            lines.append(f"  {self.repair.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Diagnostic {self.function} {self.location} {self.algorithm.name}>"


def diagnostic_signature(diagnostic: Diagnostic) -> tuple:
    """Stable, comparable identity of one diagnostic.

    Used by tests and benchmarks to assert that two checker runs (e.g.
    sequential vs. parallel, incremental vs. scratch) report the same bugs.
    """
    return (diagnostic.function, str(diagnostic.location),
            diagnostic.algorithm.value, diagnostic.message,
            diagnostic.fragment, diagnostic.replacement,
            tuple(sorted(k.value for k in set(diagnostic.ub_kinds))),
            diagnostic.classification)


def report_signature(result) -> List[tuple]:
    """Sorted diagnostic signatures of anything exposing ``.bugs``.

    Accepts a :class:`BugReport` or an engine result alike.
    """
    return sorted(diagnostic_signature(d) for d in result.bugs)


@dataclass
class FunctionReport:
    """Diagnostics and counters for one analyzed function."""

    function: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    queries: int = 0
    cache_hits: int = 0                     # queries answered from the cache
    timeouts: int = 0
    analysis_time: float = 0.0
    suppressed_compiler_origin: int = 0     # warnings dropped per §4.2/§4.5
    cluster_propagated: bool = False        # verdict copied from a cluster
                                            # representative (docs/CLUSTER.md)
    # Solver-level counters (see repro.solver.solver.SolverStats / docs/SOLVER.md):
    contexts: int = 0                       # incremental query contexts opened
    sat_calls: int = 0                      # queries that reached the CDCL loop
    restarts: int = 0                       # CDCL restarts across those calls
    blasted_clauses: int = 0                # CNF clauses produced by bit-blasting
    solver_time: float = 0.0                # seconds spent inside the solver
    oracle_sat: int = 0                     # queries the oracle pre-pass decided SAT
    oracle_unsat: int = 0                   # queries constant folding decided UNSAT
    #: Definitive answers credited per backend name (backend mode only).
    backend_wins: Dict[str, int] = field(default_factory=dict)
    # Stage-5 witness validation counters (repro.exec.witness / docs/EXEC.md):
    witnesses_confirmed: int = 0            # replay trips the reported UB
    witnesses_unconfirmed: int = 0          # probable false positive
    witnesses_inconclusive: int = 0         # no model / out of fuel
    witness_time: float = 0.0               # seconds spent replaying
    # Stage-6 auto-repair counters (repro.repair / docs/REPAIR.md):
    repairs_attempted: int = 0              # diagnostics stage 6 considered
    repairs_succeeded: int = 0              # a candidate cleared all 3 gates
    repairs_rejected: int = 0               # every candidate failed a gate
    repairs_no_template: int = 0            # the library proposed nothing
    repair_gate_equivalence_rejects: int = 0
    repair_gate_recheck_rejects: int = 0
    repair_gate_replay_rejects: int = 0
    repair_time: float = 0.0                # seconds spent in stage 6

    @property
    def witnesses_validated(self) -> int:
        return (self.witnesses_confirmed + self.witnesses_unconfirmed
                + self.witnesses_inconclusive)

    @property
    def solver_queries(self) -> int:
        """Queries that actually reached the solver."""
        return self.queries - self.cache_hits


@dataclass
class BugReport:
    """The result of checking a module (or a whole build)."""

    module: str = ""
    functions: List[FunctionReport] = field(default_factory=list)

    @property
    def bugs(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for report in self.functions:
            out.extend(report.diagnostics)
        return out

    @property
    def queries(self) -> int:
        return sum(f.queries for f in self.functions)

    @property
    def cache_hits(self) -> int:
        return sum(f.cache_hits for f in self.functions)

    @property
    def solver_queries(self) -> int:
        return sum(f.solver_queries for f in self.functions)

    @property
    def timeouts(self) -> int:
        return sum(f.timeouts for f in self.functions)

    @property
    def contexts(self) -> int:
        return sum(f.contexts for f in self.functions)

    @property
    def sat_calls(self) -> int:
        return sum(f.sat_calls for f in self.functions)

    @property
    def restarts(self) -> int:
        return sum(f.restarts for f in self.functions)

    @property
    def blasted_clauses(self) -> int:
        return sum(f.blasted_clauses for f in self.functions)

    @property
    def solver_time(self) -> float:
        return sum(f.solver_time for f in self.functions)

    @property
    def oracle_sat(self) -> int:
        return sum(f.oracle_sat for f in self.functions)

    @property
    def oracle_unsat(self) -> int:
        return sum(f.oracle_unsat for f in self.functions)

    @property
    def backend_wins(self) -> Dict[str, int]:
        wins: Dict[str, int] = {}
        for report in self.functions:
            for name, count in report.backend_wins.items():
                wins[name] = wins.get(name, 0) + count
        return wins

    @property
    def analysis_time(self) -> float:
        return sum(f.analysis_time for f in self.functions)

    @property
    def witnesses_confirmed(self) -> int:
        return sum(f.witnesses_confirmed for f in self.functions)

    @property
    def witnesses_unconfirmed(self) -> int:
        return sum(f.witnesses_unconfirmed for f in self.functions)

    @property
    def witnesses_inconclusive(self) -> int:
        return sum(f.witnesses_inconclusive for f in self.functions)

    @property
    def witnesses_validated(self) -> int:
        return sum(f.witnesses_validated for f in self.functions)

    @property
    def witness_time(self) -> float:
        return sum(f.witness_time for f in self.functions)

    @property
    def repairs_attempted(self) -> int:
        return sum(f.repairs_attempted for f in self.functions)

    @property
    def repairs_succeeded(self) -> int:
        return sum(f.repairs_succeeded for f in self.functions)

    @property
    def repairs_rejected(self) -> int:
        return sum(f.repairs_rejected for f in self.functions)

    @property
    def repairs_no_template(self) -> int:
        return sum(f.repairs_no_template for f in self.functions)

    @property
    def repair_gate_equivalence_rejects(self) -> int:
        return sum(f.repair_gate_equivalence_rejects for f in self.functions)

    @property
    def repair_gate_recheck_rejects(self) -> int:
        return sum(f.repair_gate_recheck_rejects for f in self.functions)

    @property
    def repair_gate_replay_rejects(self) -> int:
        return sum(f.repair_gate_replay_rejects for f in self.functions)

    @property
    def repair_time(self) -> float:
        return sum(f.repair_time for f in self.functions)

    def metrics(self) -> "MetricsRegistry":
        """Every per-function counter lifted into one unified metrics
        registry (``report.<field>`` counters, ``report.backend_wins.<name>``
        labeled counters).  :meth:`describe` reads through this."""
        from repro.obs.metrics import MetricsRegistry, absorb_dataclass

        registry = MetricsRegistry()
        for function_report in self.functions:
            absorb_dataclass(registry, "report", function_report)
        return registry

    def by_algorithm(self) -> Dict[Algorithm, int]:
        counts = {algorithm: 0 for algorithm in Algorithm}
        for diagnostic in self.bugs:
            counts[diagnostic.algorithm] += 1
        return counts

    def by_ub_kind(self) -> Dict[UBKind, int]:
        counts: Dict[UBKind, int] = {}
        for diagnostic in self.bugs:
            for kind in set(diagnostic.ub_kinds):
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    def describe(self) -> str:
        # Every number below reads through the unified metrics registry
        # (repro.obs.metrics); the rendered text is the legacy format.
        registry = self.metrics()
        count = registry.counter
        lines = [f"== Stack report for {self.module or '<module>'} =="]
        if not self.bugs:
            lines.append("no unstable code found")
        for diagnostic in self.bugs:
            lines.append(diagnostic.describe())
            lines.append("")
        lines.append(f"{len(self.bugs)} warning(s), "
                     f"{int(count('report.queries'))} solver queries, "
                     f"{int(count('report.timeouts'))} timeouts")
        lines.append(f"solver work: {int(count('report.sat_calls'))} CDCL calls over "
                     f"{int(count('report.contexts'))} incremental contexts, "
                     f"{int(count('report.restarts'))} restarts, "
                     f"{int(count('report.blasted_clauses'))} bit-blasted clauses, "
                     f"{count('report.solver_time'):.2f}s in the solver")
        backend_wins = {name[len("report.backend_wins."):]: int(value)
                        for name, value in registry.counters.items()
                        if name.startswith("report.backend_wins.")}
        if backend_wins:
            wins = ", ".join(f"{name}={wins}" for name, wins
                             in sorted(backend_wins.items()))
            lines.append(f"backend wins: {wins}")
        witnesses_validated = (count("report.witnesses_confirmed")
                               + count("report.witnesses_unconfirmed")
                               + count("report.witnesses_inconclusive"))
        if witnesses_validated:
            lines.append(f"witness validation: "
                         f"{int(count('report.witnesses_confirmed'))} "
                         f"confirmed, "
                         f"{int(count('report.witnesses_unconfirmed'))} unconfirmed, "
                         f"{int(count('report.witnesses_inconclusive'))} inconclusive "
                         f"({count('report.witness_time'):.2f}s replaying)")
        if count("report.repairs_attempted"):
            lines.append(f"auto-repair: {int(count('report.repairs_succeeded'))} of "
                         f"{int(count('report.repairs_attempted'))} diagnostics repaired, "
                         f"{int(count('report.repairs_rejected'))} rejected by the verifier, "
                         f"{int(count('report.repairs_no_template'))} without a template "
                         f"({count('report.repair_time'):.2f}s in stage 6)")
        return "\n".join(lines)

    def merge(self, other: "BugReport") -> None:
        self.functions.extend(other.functions)
