"""Minimal UB-condition set computation (Figure 8 of the paper).

Given an unsatisfiable query ``Q_e = H ∧ ⋀_{d∈dom(e)} ¬U_d`` the checker
reports only the UB conditions that actually matter: those whose removal
makes the query satisfiable again.  This is the greedy algorithm of Figure 8;
it costs one additional query per dominating UB condition.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.encode import FunctionEncoder
from repro.core.queries import QueryEngine
from repro.core.report import MinimalUBSet
from repro.core.ubconditions import UBCondition
from repro.solver.terms import Term


def minimal_ub_conditions(
    engine: QueryEngine,
    hypothesis: Sequence[Term],
    conditions: Sequence[UBCondition],
    max_conditions: int = 32,
) -> MinimalUBSet:
    """Compute the minimal set of UB conditions needed for unsatisfiability.

    ``hypothesis`` is the H term(s) of the query (reachability and, for
    simplification, the disagreement term); ``conditions`` are the dominating
    UB conditions whose negations complete the query.  For each condition we
    re-run the query with that condition masked out; if the query becomes
    satisfiable the condition is essential and enters the minimal set.
    """
    manager = engine.encoder.manager
    # Several instructions can carry the *same* UB condition term (e.g. the
    # two identical `buf + len` computations in Figure 1).  Masking one of
    # them would leave the duplicate in place and wrongly conclude the
    # condition is inessential, so deduplicate by term identity first.
    relevant: List[UBCondition] = []
    seen_terms = set()
    for condition in conditions:
        if _is_trivially_irrelevant(condition):
            continue
        if condition.condition.tid in seen_terms:
            continue
        seen_terms.add(condition.condition.tid)
        relevant.append(condition)
    if len(relevant) > max_conditions:
        relevant = relevant[:max_conditions]

    # Every masking query shares the hypothesis H; one incremental context
    # asserts it once and each masked assumption set arrives as a delta.
    essential: List[UBCondition] = []
    with engine.context(list(hypothesis)) as ctx:
        for masked in relevant:
            assumption = manager.true()
            for other in relevant:
                if other is masked:
                    continue
                assumption = manager.and_(assumption,
                                          manager.not_(other.condition))
            result = ctx.is_unsat([assumption])
            if result is False:
                # Without this condition the code is no longer dead: essential.
                essential.append(masked)
    return MinimalUBSet(essential)


def _is_trivially_irrelevant(condition: UBCondition) -> bool:
    """Skip conditions that simplified to constant false at build time."""
    term = condition.condition
    return term.is_const() and not term.value
