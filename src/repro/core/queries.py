"""Query execution for the solver-based optimizer.

Each elimination/simplification decision is one satisfiability query.  The
:class:`QueryEngine` issues them, applies the per-query timeout (the paper
uses 5 s with Boolector), and tracks the counters reported in Figure 16
(#queries and #query timeouts).

Queries come in *batches*: for one unstable-code candidate the checker asks
an elimination or simplification question and then re-asks it under the
well-defined-program assumption (and, for minimal-UB-set computation, once
more per dominating UB condition).  Those queries share almost everything —
only a few conjuncts differ.  A :class:`QueryContext` exploits that: the
shared base terms (typically the candidate's path condition) are asserted
once into an incremental solver frame, and each query passes only its delta
terms as solver *assumptions*.  In incremental mode (the default) one
persistent :class:`~repro.solver.solver.Solver` is shared by every context
the engine opens — contexts map to activation-literal frames, so learned
clauses and bit-blasted encodings carry across the whole function.  With
``incremental=False`` each query builds a fresh scratch solver, which is the
reference semantics the incremental path is tested against.

When a :class:`~repro.engine.cache.SolverQueryCache` is attached, every
query is first content-addressed (structural hash of the query terms plus
their auxiliary definitions) and looked up; a hit replays the cached verdict
without touching any solver.  The cache therefore sits *above* the
incremental layer: a hit skips the context entirely, a miss is solved
incrementally and the verdict stored.  ``stats.queries`` keeps counting
every question asked — the Figure 16 number — while ``stats.solver_queries``
counts only the questions that actually reached a solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.core.encode import FunctionEncoder
from repro.obs.metrics import merge_counter_dataclass
from repro.obs.ops import note_query
from repro.obs.trace import span
from repro.solver.solver import CheckResult, Solver, SolverStats
from repro.solver.terms import Term


@dataclass
class QueryStats:
    """Counters across all queries issued by one checker run."""

    queries: int = 0
    timeouts: int = 0
    sat: int = 0
    unsat: int = 0
    cache_hits: int = 0
    contexts: int = 0
    total_time: float = 0.0

    @property
    def solver_queries(self) -> int:
        """Queries that reached the solver (total minus cache replays)."""
        return self.queries - self.cache_hits

    def merge(self, other: "QueryStats") -> None:
        merge_counter_dataclass(self, other)


class QueryContext:
    """One incremental context: shared base terms, per-query deltas.

    Use as a context manager::

        with engine.context([reach]) as ctx:
            plain = ctx.is_unsat()              # base only
            stable = ctx.is_unsat([delta])      # base + delta as assumption

    In incremental mode the base terms (plus their auxiliary definitions)
    live in a pushed frame of the engine's shared solver, and each
    ``is_unsat`` call passes its deltas as solver assumptions — nothing is
    re-encoded between queries.  Closing the context pops the frame.  In
    scratch mode every call builds a fresh solver, reproducing the
    pre-incremental behavior query for query.
    """

    def __init__(self, engine: "QueryEngine", base: Sequence[Term]) -> None:
        self.engine = engine
        self.base: List[Term] = list(base)
        self._frame = None            # token from Solver.push (LIFO guard)
        self._asserted: Set[int] = set()
        self._closed = False

    def __enter__(self) -> "QueryContext":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        """Pop this context's solver frame (idempotent).

        Contexts over a shared incremental solver must close in LIFO order;
        popping while a later context's frame is still open raises rather
        than silently retiring that context's assertions.
        """
        if self._closed:
            return
        if self._frame is not None:
            # Pop before marking closed: a failed non-LIFO pop must leave
            # the context open so a later (correctly ordered) close can
            # still retire the frame — otherwise the base assertions leak
            # into the shared solver and poison every later verdict.
            self.engine._shared_solver.pop(self._frame)
        self._closed = True

    def is_unsat(self, deltas: Sequence[Term] = ()) -> Optional[bool]:
        """Decide whether base ∧ deltas (∧ their definitions) is UNSAT.

        Returns True (UNSAT), False (SAT), or None when the query timed out
        (in which case the checker conservatively assumes nothing).
        """
        if self._closed:
            raise RuntimeError("query context is closed")
        engine = self.engine
        full: List[Term] = self.base + list(deltas)
        definitions = engine.encoder.definitions_for(*full)
        goal = full + definitions

        # The span's identity carries only the verdict — deliberately not
        # whether the cache answered — so traced span trees stay identical
        # whatever the cache contents (which vary across worker counts).
        with span("solver.query") as query_span:
            key: Optional[str] = None
            if engine.cache is not None:
                from repro.engine.cache import canonical_query_key

                key = canonical_query_key(goal)
                verdict = engine.cache.lookup(
                    key, timeout=engine.timeout,
                    max_conflicts=engine.max_conflicts)
                if verdict is not None:
                    engine.stats.cache_hits += 1
                    query_span.set_arg("verdict", verdict)
                    return engine._record(verdict)

            if engine.incremental:
                solver = self._ensure_frame()
                for definition in definitions:
                    if definition.tid not in self._asserted:
                        solver.add(definition)
                        self._asserted.add(definition.tid)
                before = solver.stats.total_time
                result = solver.check(assumptions=list(deltas))
                elapsed = solver.stats.total_time - before
            else:
                solver = Solver(engine.encoder.manager, timeout=engine.timeout,
                                max_conflicts=engine.max_conflicts,
                                backend=engine.backend,
                                portfolio=engine.portfolio)
                for term in goal:
                    solver.add(term)
                result = solver.check()
                elapsed = solver.stats.total_time
                engine._scratch_stats.merge(solver.stats)
            engine.stats.total_time += elapsed

            verdict = result.value
            if engine.cache is not None and key is not None:
                engine.cache.store(key, verdict, timeout=engine.timeout,
                                   max_conflicts=engine.max_conflicts,
                                   elapsed=elapsed)
            note_query(key, verdict, elapsed,
                       engine.backend or (",".join(engine.portfolio)
                                          if engine.portfolio else "builtin"))
            query_span.set_arg("verdict", verdict)
            return engine._record(verdict)

    def _ensure_frame(self) -> Solver:
        solver = self.engine._shared()
        if self._frame is None:
            self._frame = solver.push()
            for term in self.base:
                solver.add(term)
                self._asserted.add(term.tid)
        return solver


class QueryEngine:
    """Issues satisfiability queries for one function's encoder."""

    def __init__(self, encoder: FunctionEncoder, timeout: Optional[float] = 5.0,
                 max_conflicts: Optional[int] = 50_000,
                 cache: Optional["SolverQueryCache"] = None,
                 incremental: bool = True,
                 backend: Optional[str] = None,
                 portfolio: Sequence[str] = ()) -> None:
        self.encoder = encoder
        self.timeout = timeout
        self.max_conflicts = max_conflicts
        self.cache = cache
        self.incremental = incremental
        self.backend = backend
        self.portfolio = tuple(portfolio)
        self.stats = QueryStats()
        self._shared_solver: Optional[Solver] = None
        self._scratch_stats = SolverStats()

    # -- contexts ---------------------------------------------------------------

    def context(self, base: Sequence[Term] = ()) -> QueryContext:
        """Open an incremental context over shared ``base`` terms.

        In scratch mode the context is just a grouping device (every query
        still builds its own solver), so it is not counted.
        """
        if self.incremental:
            self.stats.contexts += 1
        return QueryContext(self, base)

    def is_unsat(self, terms: Sequence[Term]) -> Optional[bool]:
        """One-shot query: decide whether the conjunction of ``terms`` is UNSAT.

        Returns True (UNSAT), False (SAT), or None when the query timed out.
        Batched callers should prefer :meth:`context`.
        """
        with self.context(terms) as ctx:
            return ctx.is_unsat()

    # -- solver plumbing ---------------------------------------------------------

    def _shared(self) -> Solver:
        if self._shared_solver is None:
            self._shared_solver = Solver(self.encoder.manager,
                                         timeout=self.timeout,
                                         max_conflicts=self.max_conflicts,
                                         incremental=True,
                                         backend=self.backend,
                                         portfolio=self.portfolio)
        return self._shared_solver

    @property
    def solver_stats(self) -> SolverStats:
        """Aggregate solver-level counters across scratch and shared solvers."""
        merged = SolverStats()
        merged.merge(self._scratch_stats)
        if self._shared_solver is not None:
            merged.merge(self._shared_solver.stats)
        return merged

    def _record(self, verdict: str) -> Optional[bool]:
        """Update counters for one answered query and map verdict to bool."""
        self.stats.queries += 1
        if verdict == CheckResult.UNSAT.value:
            self.stats.unsat += 1
            return True
        if verdict == CheckResult.SAT.value:
            self.stats.sat += 1
            return False
        self.stats.timeouts += 1
        return None
