"""Query execution for the solver-based optimizer.

Each elimination/simplification decision is one satisfiability query.  The
:class:`QueryEngine` builds a fresh solver per query (the assertion sets are
small), conjoins the auxiliary definitions the encoder registered for the
variables mentioned, applies the per-query timeout (the paper uses 5 s with
Boolector), and tracks the counters reported in Figure 16 (#queries and
#query timeouts).

When a :class:`~repro.engine.cache.SolverQueryCache` is attached, every
query is first content-addressed (structural hash of the query terms plus
their auxiliary definitions) and looked up; a hit replays the cached verdict
without building a solver.  ``stats.queries`` keeps counting every question
asked — the Figure 16 number — while ``stats.solver_queries`` counts only the
questions that actually reached the solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.encode import FunctionEncoder
from repro.solver.solver import CheckResult, Solver
from repro.solver.terms import Term


@dataclass
class QueryStats:
    """Counters across all queries issued by one checker run."""

    queries: int = 0
    timeouts: int = 0
    sat: int = 0
    unsat: int = 0
    cache_hits: int = 0
    total_time: float = 0.0

    @property
    def solver_queries(self) -> int:
        """Queries that reached the solver (total minus cache replays)."""
        return self.queries - self.cache_hits

    def merge(self, other: "QueryStats") -> None:
        self.queries += other.queries
        self.timeouts += other.timeouts
        self.sat += other.sat
        self.unsat += other.unsat
        self.cache_hits += other.cache_hits
        self.total_time += other.total_time


class QueryEngine:
    """Issues satisfiability queries for one function's encoder."""

    def __init__(self, encoder: FunctionEncoder, timeout: Optional[float] = 5.0,
                 max_conflicts: Optional[int] = 50_000,
                 cache: Optional["SolverQueryCache"] = None) -> None:
        self.encoder = encoder
        self.timeout = timeout
        self.max_conflicts = max_conflicts
        self.cache = cache
        self.stats = QueryStats()

    def is_unsat(self, terms: Sequence[Term]) -> Optional[bool]:
        """Decide whether the conjunction of ``terms`` is unsatisfiable.

        Returns True (UNSAT), False (SAT), or None when the query timed out
        (in which case the checker conservatively assumes nothing).
        """
        goal: List[Term] = list(terms)
        goal.extend(self.encoder.definitions_for(*terms))

        key: Optional[str] = None
        if self.cache is not None:
            from repro.engine.cache import canonical_query_key

            key = canonical_query_key(goal)
            verdict = self.cache.lookup(key, timeout=self.timeout,
                                        max_conflicts=self.max_conflicts)
            if verdict is not None:
                self.stats.cache_hits += 1
                return self._record(verdict)

        solver = Solver(self.encoder.manager, timeout=self.timeout,
                        max_conflicts=self.max_conflicts)
        for term in goal:
            solver.add(term)
        result = solver.check()
        self.stats.total_time += solver.stats.total_time

        verdict = result.value
        if self.cache is not None and key is not None:
            self.cache.store(key, verdict, timeout=self.timeout,
                             max_conflicts=self.max_conflicts,
                             elapsed=solver.stats.total_time)
        return self._record(verdict)

    def _record(self, verdict: str) -> Optional[bool]:
        """Update counters for one answered query and map verdict to bool."""
        self.stats.queries += 1
        if verdict == CheckResult.UNSAT.value:
            self.stats.unsat += 1
            return True
        if verdict == CheckResult.SAT.value:
            self.stats.sat += 1
            return False
        self.stats.timeouts += 1
        return None
