"""Query execution for the solver-based optimizer.

Each elimination/simplification decision is one satisfiability query.  The
:class:`QueryEngine` builds a fresh solver per query (the assertion sets are
small), conjoins the auxiliary definitions the encoder registered for the
variables mentioned, applies the per-query timeout (the paper uses 5 s with
Boolector), and tracks the counters reported in Figure 16 (#queries and
#query timeouts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.encode import FunctionEncoder
from repro.solver.solver import CheckResult, Solver
from repro.solver.terms import Term


@dataclass
class QueryStats:
    """Counters across all queries issued by one checker run."""

    queries: int = 0
    timeouts: int = 0
    sat: int = 0
    unsat: int = 0
    total_time: float = 0.0

    def merge(self, other: "QueryStats") -> None:
        self.queries += other.queries
        self.timeouts += other.timeouts
        self.sat += other.sat
        self.unsat += other.unsat
        self.total_time += other.total_time


class QueryEngine:
    """Issues satisfiability queries for one function's encoder."""

    def __init__(self, encoder: FunctionEncoder, timeout: Optional[float] = 5.0,
                 max_conflicts: Optional[int] = 50_000) -> None:
        self.encoder = encoder
        self.timeout = timeout
        self.max_conflicts = max_conflicts
        self.stats = QueryStats()

    def is_unsat(self, terms: Sequence[Term]) -> Optional[bool]:
        """Decide whether the conjunction of ``terms`` is unsatisfiable.

        Returns True (UNSAT), False (SAT), or None when the query timed out
        (in which case the checker conservatively assumes nothing).
        """
        solver = Solver(self.encoder.manager, timeout=self.timeout,
                        max_conflicts=self.max_conflicts)
        for term in terms:
            solver.add(term)
        for definition in self.encoder.definitions_for(*terms):
            solver.add(definition)
        result = solver.check()

        self.stats.queries += 1
        self.stats.total_time += solver.stats.total_time
        if result is CheckResult.UNSAT:
            self.stats.unsat += 1
            return True
        if result is CheckResult.SAT:
            self.stats.sat += 1
            return False
        self.stats.timeouts += 1
        return None
