"""Undefined-behavior conditions (the paper's Figure 3).

Each :class:`UBKind` corresponds to one row of Figure 3.  A
:class:`UBCondition` attaches a solver term for the sufficient condition to
the IR instruction that would trigger it; the encoder
(:mod:`repro.core.encode`) produces these during its annotation pass, which
plays the role of STACK's ``bug_on`` call insertion (§4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.instructions import Instruction
from repro.solver.terms import Term


class UBKind(enum.Enum):
    """The undefined-behavior families from Figure 3 of the paper."""

    POINTER_OVERFLOW = "pointer overflow"
    NULL_DEREF = "null pointer dereference"
    SIGNED_OVERFLOW = "signed integer overflow"
    DIV_BY_ZERO = "division by zero"
    OVERSIZED_SHIFT = "oversized shift"
    BUFFER_OVERFLOW = "buffer overflow"
    ABS_OVERFLOW = "absolute value overflow"
    MEMCPY_OVERLAP = "overlapping memory copy"
    USE_AFTER_FREE = "use after free"
    USE_AFTER_REALLOC = "use after realloc"
    ALIASING = "strict aliasing violation"
    UNINITIALIZED = "uninitialized read"

    @property
    def short_name(self) -> str:
        return _SHORT_NAMES[self]

    @property
    def construct(self) -> str:
        """The C construct column of Figure 3."""
        return _CONSTRUCTS[self]

    @property
    def condition_description(self) -> str:
        """The sufficient-condition column of Figure 3."""
        return _CONDITIONS[self]


_SHORT_NAMES = {
    UBKind.POINTER_OVERFLOW: "pointer",
    UBKind.NULL_DEREF: "null",
    UBKind.SIGNED_OVERFLOW: "integer",
    UBKind.DIV_BY_ZERO: "div",
    UBKind.OVERSIZED_SHIFT: "shift",
    UBKind.BUFFER_OVERFLOW: "buffer",
    UBKind.ABS_OVERFLOW: "abs",
    UBKind.MEMCPY_OVERLAP: "memcpy",
    UBKind.USE_AFTER_FREE: "free",
    UBKind.USE_AFTER_REALLOC: "realloc",
    UBKind.ALIASING: "aliasing",
    UBKind.UNINITIALIZED: "uninit",
}

_CONSTRUCTS = {
    UBKind.POINTER_OVERFLOW: "p + x",
    UBKind.NULL_DEREF: "*p",
    UBKind.SIGNED_OVERFLOW: "x ops y (signed)",
    UBKind.DIV_BY_ZERO: "x / y, x % y",
    UBKind.OVERSIZED_SHIFT: "x << y, x >> y",
    UBKind.BUFFER_OVERFLOW: "a[x]",
    UBKind.ABS_OVERFLOW: "abs(x)",
    UBKind.MEMCPY_OVERLAP: "memcpy(dst, src, len)",
    UBKind.USE_AFTER_FREE: "use q after free(p)",
    UBKind.USE_AFTER_REALLOC: "use q after realloc(p, ...)",
    UBKind.ALIASING: "type-punned access",
    UBKind.UNINITIALIZED: "use of uninitialized variable",
}

_CONDITIONS = {
    UBKind.POINTER_OVERFLOW: "p∞ + x∞ outside [0, 2^n - 1]",
    UBKind.NULL_DEREF: "p = NULL",
    UBKind.SIGNED_OVERFLOW: "x∞ ops y∞ outside [-2^(n-1), 2^(n-1) - 1]",
    UBKind.DIV_BY_ZERO: "y = 0",
    UBKind.OVERSIZED_SHIFT: "y < 0 or y >= n",
    UBKind.BUFFER_OVERFLOW: "x < 0 or x >= ARRAY_SIZE(a)",
    UBKind.ABS_OVERFLOW: "x = -2^(n-1)",
    UBKind.MEMCPY_OVERLAP: "|dst - src| < len",
    UBKind.USE_AFTER_FREE: "alias(p, q)",
    UBKind.USE_AFTER_REALLOC: "alias(p, q) and p' != NULL",
    UBKind.ALIASING: "incompatible effective types",
    UBKind.UNINITIALIZED: "no prior store",
}

#: The kinds the checker implements, in the order of Figure 3.  Strict
#: aliasing and uninitialized reads are intentionally unimplemented, matching
#: the paper's §4.6 (gcc already warns for both).
IMPLEMENTED_KINDS = (
    UBKind.POINTER_OVERFLOW,
    UBKind.NULL_DEREF,
    UBKind.SIGNED_OVERFLOW,
    UBKind.DIV_BY_ZERO,
    UBKind.OVERSIZED_SHIFT,
    UBKind.BUFFER_OVERFLOW,
    UBKind.ABS_OVERFLOW,
    UBKind.MEMCPY_OVERLAP,
    UBKind.USE_AFTER_FREE,
    UBKind.USE_AFTER_REALLOC,
)

UNIMPLEMENTED_KINDS = (UBKind.ALIASING, UBKind.UNINITIALIZED)


@dataclass
class UBCondition:
    """One undefined-behavior condition attached to an instruction.

    ``condition`` is a boolean solver term that is true exactly when the
    instruction exhibits the undefined behavior (a sufficient condition, per
    Figure 3).
    """

    kind: UBKind
    condition: Term
    instruction: Instruction
    note: str = ""

    @property
    def location(self):
        return self.instruction.location

    def describe(self) -> str:
        where = f" at {self.location}" if self.location.is_known() else ""
        note = f" ({self.note})" if self.note else ""
        return f"{self.kind.value}{note}{where}"


def figure3_rows():
    """Rows of Figure 3 as (construct, condition, name) tuples (for reports)."""
    rows = []
    for kind in IMPLEMENTED_KINDS:
        rows.append((kind.construct, kind.condition_description, kind.value))
    return rows
