"""Classification of unstable-code reports (§6.2 of the paper).

The paper manually classifies STACK's reports into four categories.  This
module reproduces the taxonomy with a rule-based classifier that uses (a) the
undefined-behavior kinds in the report's minimal UB set, (b) whether the
undefined behavior executes unconditionally before the flagged check, and
(c) whether any of the simulated production compilers (:mod:`repro.compilers`)
is known to discard the pattern.  Corpus snippets carry ground-truth labels
used by the precision experiment (§6.3); the classifier is the fallback for
code without labels.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

from repro.core.report import Algorithm, Diagnostic
from repro.core.ubconditions import UBKind


class BugClass(enum.Enum):
    """The four §6.2 report categories."""

    NON_OPTIMIZATION = "non-optimization bug"
    URGENT_OPTIMIZATION = "urgent optimization bug"
    TIME_BOMB = "time bomb"
    REDUNDANT = "redundant code"

    @property
    def is_real_bug(self) -> bool:
        return self is not BugClass.REDUNDANT


#: UB kinds that mainstream 2013-era compilers already exploit aggressively at
#: default optimization levels (§2.3's survey): checks that depend on them
#: being absent are *urgent*.
_URGENT_KINDS = {
    UBKind.SIGNED_OVERFLOW,
    UBKind.POINTER_OVERFLOW,
    UBKind.NULL_DEREF,
    UBKind.OVERSIZED_SHIFT,
    UBKind.ABS_OVERFLOW,
}

#: UB kinds no surveyed production compiler currently exploits for this kind
#: of dead-code removal; reports that hinge only on them are time bombs.
_TIME_BOMB_KINDS = {
    UBKind.DIV_BY_ZERO,
    UBKind.MEMCPY_OVERLAP,
    UBKind.USE_AFTER_FREE,
    UBKind.USE_AFTER_REALLOC,
    UBKind.BUFFER_OVERFLOW,
}


def classify_diagnostic(diagnostic: Diagnostic,
                        known_label: Optional[BugClass] = None,
                        ub_executes_unconditionally: bool = False,
                        discarded_by_current_compiler: Optional[bool] = None) -> BugClass:
    """Assign one of the four §6.2 categories to a diagnostic.

    Parameters
    ----------
    known_label:
        Ground-truth label from the corpus, if available; returned unchanged.
    ub_executes_unconditionally:
        True when the undefined behavior in the minimal set is reached on
        every execution of the function (e.g. the dereference in Figure 2 or
        the division in Figure 10) — such code misbehaves even at ``-O0``,
        which is the paper's *non-optimization bug* category.
    discarded_by_current_compiler:
        Result of consulting the simulated compiler survey for the flagged
        pattern, when the caller has it; overrides the kind-based heuristic.
    """
    if known_label is not None:
        return known_label

    kinds = set(diagnostic.ub_kinds)
    if not kinds:
        # Nothing in the minimal set: the check is dead for reasons unrelated
        # to undefined behavior, i.e. ordinary redundant code.
        return BugClass.REDUNDANT

    if ub_executes_unconditionally and (
            UBKind.NULL_DEREF in kinds or UBKind.DIV_BY_ZERO in kinds
            or UBKind.SIGNED_OVERFLOW in kinds):
        return BugClass.NON_OPTIMIZATION

    if discarded_by_current_compiler is True:
        return BugClass.URGENT_OPTIMIZATION
    if discarded_by_current_compiler is False:
        return BugClass.TIME_BOMB

    if kinds & _URGENT_KINDS:
        return BugClass.URGENT_OPTIMIZATION
    if kinds & _TIME_BOMB_KINDS:
        return BugClass.TIME_BOMB
    return BugClass.TIME_BOMB


def classify_all(diagnostics: Iterable[Diagnostic]) -> None:
    """Classify diagnostics in place (fills ``Diagnostic.classification``)."""
    for diagnostic in diagnostics:
        label = classify_diagnostic(diagnostic)
        diagnostic.classification = label.value
