"""Encoding of IR into solver terms: values, reachability, UB conditions.

This module is the bridge between the IR substrate and the constraint solver.
For one function it provides:

* ``term(value)`` — the bit-vector term denoting an SSA value,
* ``block_reach(block)`` / ``edge_condition(pred, succ)`` — the reachability
  condition R'_e(x) of §4.4, computed within the function with back edges
  dropped (the paper's approximate reachability, in the spirit of the gated
  SSA construction of Tu and Padua that STACK uses),
* ``ub_conditions(inst)`` — the undefined-behavior conditions of Figure 3
  attached to each instruction (the ``bug_on`` insertion of §4.3),
* ``well_defined_over(instructions)`` — the dominator-scoped well-defined
  program assumption ⋀ ¬U_d of equation (5).

Division is encoded with a partial axiomatization by default (result values
are fresh variables constrained by implications such as ``b == -1 → q == -a``)
rather than a full divider circuit; this keeps queries small for the
pure-Python SAT solver while still deciding the paper's division examples.
The full circuit encoding can be enabled via the checker configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.cfg import back_edges
from repro.ir.dominators import DominatorTree
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    BinOpKind,
    Branch,
    Call,
    Cast,
    CastKind,
    CondBranch,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.values import Argument, Constant, UndefValue, Value
from repro.core.ubconditions import UBCondition, UBKind
from repro.solver.terms import Term, TermManager


@dataclass
class EncoderOptions:
    """Options controlling how IR is translated into terms."""

    #: Use implication axioms for division results instead of a full circuit.
    partial_division_axioms: bool = True
    #: Emit buffer-overflow conditions for GEPs with known array capacities.
    buffer_overflow_conditions: bool = True
    #: Emit use-after-free / use-after-realloc conditions.
    lifetime_conditions: bool = True


class FunctionEncoder:
    """Encodes one IR function into solver terms."""

    #: Library functions whose return value the encoder models precisely.
    PURE_LIBRARY_FUNCTIONS = {"abs", "labs"}

    def __init__(self, function: Function,
                 manager: Optional[TermManager] = None,
                 options: Optional[EncoderOptions] = None,
                 serial_start: int = 0) -> None:
        self.function = function
        self.manager = manager if manager is not None else TermManager()
        self.options = options if options is not None else EncoderOptions()
        self.dominators = DominatorTree(function)
        self._back_edges = back_edges(function)
        self._terms: Dict[int, Term] = {}
        self._reach: Dict[int, Term] = {}
        self._ub: Dict[int, List[UBCondition]] = {}
        self._definitions: Dict[str, List[Term]] = {}
        # Two encoders can share one manager (the repair equivalence gate
        # encodes original and patched side by side): a distinct serial
        # range keeps their fresh variables from accidentally unifying,
        # while same-named arguments still hash-cons to shared terms.
        self._serial = serial_start
        self._freed_pointers: List[Tuple[Call, Value, str]] = []
        self._collect_lifetime_events()

    # -- helpers -----------------------------------------------------------------

    def _fresh_name(self, prefix: str) -> str:
        self._serial += 1
        return f"{self.function.name}.{prefix}.{self._serial}"

    def _fresh_var(self, prefix: str, width: int) -> Term:
        return self.manager.bv_var(self._fresh_name(prefix), width)

    @staticmethod
    def _width_of(value: Value) -> int:
        return value.type.bit_width

    def _resize(self, term: Term, width: int, signed: bool = False) -> Term:
        """Adjust a term to ``width`` bits (defensive width reconciliation)."""
        if term.width == width:
            return term
        if term.width > width:
            return self.manager.extract(term, width - 1, 0)
        extra = width - term.width
        return self.manager.sext(term, extra) if signed else self.manager.zext(term, extra)

    # -- value encoding -----------------------------------------------------------

    def term(self, value: Value) -> Term:
        """The bit-vector term for an SSA value."""
        cached = self._terms.get(id(value))
        if cached is not None:
            return cached
        term = self._encode_value(value)
        self._terms[id(value)] = term
        return term

    def bool_term(self, value: Value) -> Term:
        """A boolean term that is true iff ``value`` is non-zero."""
        term = self.term(value)
        zero = self.manager.bv_const(0, term.width)
        return self.manager.distinct(term, zero)

    def _encode_value(self, value: Value) -> Term:
        mgr = self.manager
        if isinstance(value, Constant):
            return mgr.bv_const(value.value, self._width_of(value))
        if isinstance(value, Argument):
            return mgr.bv_var(f"{self.function.name}.arg.{value.name}",
                              self._width_of(value))
        if isinstance(value, UndefValue):
            return self._fresh_var(f"undef.{value.name}", self._width_of(value))
        if isinstance(value, Instruction):
            return self._encode_instruction(value)
        if isinstance(value, BasicBlock):
            raise TypeError("basic blocks have no term encoding")
        # Globals and anything else: unconstrained.
        return self._fresh_var(f"opaque.{value.name or 'value'}",
                               self._width_of(value))

    def _encode_instruction(self, inst: Instruction) -> Term:
        mgr = self.manager
        if isinstance(inst, BinaryOp):
            return self._encode_binop(inst)
        if isinstance(inst, ICmp):
            cmp_bool = self._icmp_bool(inst)
            one = mgr.bv_const(1, 1)
            zero = mgr.bv_const(0, 1)
            return mgr.ite(cmp_bool, one, zero)
        if isinstance(inst, Select):
            cond = self.bool_term(inst.condition)
            then = self.term(inst.on_true)
            els = self._resize(self.term(inst.on_false), then.width, signed=True)
            return mgr.ite(cond, then, els)
        if isinstance(inst, Cast):
            return self._encode_cast(inst)
        if isinstance(inst, Load):
            return self._fresh_var(f"load.{inst.name or 'mem'}", self._width_of(inst))
        if isinstance(inst, Alloca):
            # The address of a stack slot: unconstrained but non-null.
            address = self._fresh_var(f"alloca.{inst.name or 'slot'}",
                                      self._width_of(inst))
            zero = mgr.bv_const(0, address.width)
            self._definitions.setdefault(address.name, []).append(
                mgr.distinct(address, zero))
            return address
        if isinstance(inst, GetElementPtr):
            return self._encode_gep(inst)
        if isinstance(inst, Call):
            return self._encode_call(inst)
        if isinstance(inst, Phi):
            return self._encode_phi(inst)
        if isinstance(inst, (Store, Branch, CondBranch, Return, Unreachable)):
            raise TypeError(f"{type(inst).__name__} has no value")
        return self._fresh_var(f"unknown.{inst.opcode()}", self._width_of(inst))

    _BINOP_BUILDERS = {
        BinOpKind.ADD: "bvadd", BinOpKind.SUB: "bvsub", BinOpKind.MUL: "bvmul",
        BinOpKind.AND: "bvand", BinOpKind.OR: "bvor", BinOpKind.XOR: "bvxor",
        BinOpKind.SHL: "bvshl", BinOpKind.LSHR: "bvlshr", BinOpKind.ASHR: "bvashr",
    }

    def _encode_binop(self, inst: BinaryOp) -> Term:
        mgr = self.manager
        lhs = self.term(inst.lhs)
        rhs = self._resize(self.term(inst.rhs), lhs.width, signed=True)
        builder_name = self._BINOP_BUILDERS.get(inst.kind)
        if builder_name is not None:
            return getattr(mgr, builder_name)(lhs, rhs)
        if inst.kind in (BinOpKind.SDIV, BinOpKind.UDIV,
                         BinOpKind.SREM, BinOpKind.UREM):
            return self._encode_division(inst, lhs, rhs)
        raise NotImplementedError(f"unhandled binary op {inst.kind}")

    def _encode_division(self, inst: BinaryOp, lhs: Term, rhs: Term) -> Term:
        mgr = self.manager
        if not self.options.partial_division_axioms:
            full = {BinOpKind.SDIV: mgr.bvsdiv, BinOpKind.UDIV: mgr.bvudiv,
                    BinOpKind.SREM: mgr.bvsrem, BinOpKind.UREM: mgr.bvurem}
            return full[inst.kind](lhs, rhs)

        width = lhs.width
        result = self._fresh_var(f"div.{inst.name or inst.kind.value}", width)
        zero = mgr.bv_const(0, width)
        one = mgr.bv_const(1, width)
        minus_one = mgr.bv_const(-1, width)
        axioms: List[Term] = []
        if inst.kind is BinOpKind.SDIV:
            axioms.append(mgr.implies(mgr.eq(rhs, one), mgr.eq(result, lhs)))
            axioms.append(mgr.implies(mgr.eq(rhs, minus_one),
                                      mgr.eq(result, mgr.bvneg(lhs))))
            axioms.append(mgr.implies(
                mgr.and_(mgr.eq(lhs, zero), mgr.distinct(rhs, zero)),
                mgr.eq(result, zero)))
            # Sign relation: a>0, b>0 -> q >= 0 ; a<0, b>0, b != 0 -> q <= 0
            axioms.append(mgr.implies(
                mgr.and_(mgr.bvsge(lhs, zero), mgr.bvsgt(rhs, zero)),
                mgr.bvsge(result, zero)))
            axioms.append(mgr.implies(
                mgr.and_(mgr.bvsle(lhs, zero), mgr.bvsgt(rhs, zero)),
                mgr.bvsle(result, zero)))
        elif inst.kind is BinOpKind.UDIV:
            axioms.append(mgr.implies(mgr.eq(rhs, one), mgr.eq(result, lhs)))
            axioms.append(mgr.implies(mgr.distinct(rhs, zero),
                                      mgr.bvule(result, lhs)))
            axioms.append(mgr.implies(
                mgr.and_(mgr.bvult(lhs, rhs), mgr.distinct(rhs, zero)),
                mgr.eq(result, zero)))
        elif inst.kind is BinOpKind.SREM:
            axioms.append(mgr.implies(mgr.eq(rhs, one), mgr.eq(result, zero)))
            axioms.append(mgr.implies(mgr.eq(rhs, minus_one), mgr.eq(result, zero)))
            axioms.append(mgr.implies(
                mgr.and_(mgr.eq(lhs, zero), mgr.distinct(rhs, zero)),
                mgr.eq(result, zero)))
            axioms.append(mgr.implies(
                mgr.and_(mgr.bvsge(lhs, zero), mgr.distinct(rhs, zero)),
                mgr.bvsge(result, zero)))
        else:  # UREM
            axioms.append(mgr.implies(mgr.eq(rhs, one), mgr.eq(result, zero)))
            axioms.append(mgr.implies(mgr.distinct(rhs, zero),
                                      mgr.bvult(result, rhs)))
            axioms.append(mgr.implies(
                mgr.and_(mgr.bvult(lhs, rhs), mgr.distinct(rhs, zero)),
                mgr.eq(result, lhs)))
        self._definitions.setdefault(result.name, []).extend(axioms)
        return result

    _ICMP_BUILDERS = {
        ICmpPred.EQ: "eq", ICmpPred.NE: "distinct",
        ICmpPred.ULT: "bvult", ICmpPred.ULE: "bvule",
        ICmpPred.UGT: "bvugt", ICmpPred.UGE: "bvuge",
        ICmpPred.SLT: "bvslt", ICmpPred.SLE: "bvsle",
        ICmpPred.SGT: "bvsgt", ICmpPred.SGE: "bvsge",
    }

    def _icmp_bool(self, inst: ICmp) -> Term:
        lhs = self.term(inst.lhs)
        rhs = self._resize(self.term(inst.rhs), lhs.width, signed=True)
        return getattr(self.manager, self._ICMP_BUILDERS[inst.pred])(lhs, rhs)

    def comparison_bool(self, inst: ICmp) -> Term:
        """Public accessor for the boolean meaning of an ICmp (for oracles)."""
        return self._icmp_bool(inst)

    def _encode_cast(self, inst: Cast) -> Term:
        mgr = self.manager
        source = self.term(inst.value)
        target_width = self._width_of(inst)
        if inst.kind is CastKind.TRUNC:
            return mgr.extract(source, target_width - 1, 0)
        if inst.kind is CastKind.ZEXT:
            return mgr.zext(source, target_width - source.width)
        if inst.kind is CastKind.SEXT:
            return mgr.sext(source, target_width - source.width)
        # ptrtoint / inttoptr / bitcast: representation-preserving.
        return self._resize(source, target_width, signed=False)

    def _encode_gep(self, inst: GetElementPtr) -> Term:
        mgr = self.manager
        pointer = self.term(inst.pointer)
        index = self._resize(self.term(inst.index), pointer.width, signed=True)
        scale = mgr.bv_const(inst.element_size, pointer.width)
        return mgr.bvadd(pointer, mgr.bvmul(index, scale))

    def _encode_call(self, inst: Call) -> Term:
        mgr = self.manager
        width = self._width_of(inst) if not inst.type.is_void() else 8
        if inst.callee in self.PURE_LIBRARY_FUNCTIONS and inst.args:
            arg = self.term(inst.args[0])
            zero = mgr.bv_const(0, arg.width)
            result = mgr.ite(mgr.bvslt(arg, zero), mgr.bvneg(arg), arg)
            return self._resize(result, width, signed=True)
        return self._fresh_var(f"call.{inst.callee}", width)

    def _encode_phi(self, inst: Phi) -> Term:
        mgr = self.manager
        width = self._width_of(inst)
        block = inst.parent
        result: Optional[Term] = None
        for value, pred in reversed(inst.incoming):
            if block is not None and (id(pred), id(block)) in self._back_edges:
                incoming_term: Term = self._fresh_var(
                    f"loopcarried.{inst.name}", width)
            else:
                incoming_term = self._resize(self.term(value), width, signed=True)
            if result is None:
                result = incoming_term
                continue
            cond = self.edge_condition(pred, block) if block is not None else mgr.true()
            result = mgr.ite(cond, incoming_term, result)
        if result is None:
            return self._fresh_var(f"phi.{inst.name}", width)
        return result

    # -- reachability ----------------------------------------------------------------

    def edge_condition(self, pred: BasicBlock, succ: BasicBlock) -> Term:
        """Condition under which control flows along the edge pred→succ."""
        mgr = self.manager
        term = pred.terminator
        reach = self.block_reach(pred)
        if isinstance(term, Branch):
            return reach
        if isinstance(term, CondBranch):
            if term.if_true is succ and term.if_false is succ:
                return reach
            cond = self.bool_term(term.condition)
            if term.if_true is succ:
                return mgr.and_(reach, cond)
            return mgr.and_(reach, mgr.not_(cond))
        return mgr.false()

    def block_reach(self, block: BasicBlock) -> Term:
        """Reachability condition of a block from the function entry (R'_e)."""
        cached = self._reach.get(id(block))
        if cached is not None:
            return cached
        mgr = self.manager
        if block is self.function.entry:
            result = mgr.true()
        else:
            incoming = []
            for pred in block.predecessors():
                if (id(pred), id(block)) in self._back_edges:
                    continue
                incoming.append(self.edge_condition(pred, block))
            result = mgr.or_(*incoming) if incoming else mgr.false()
        self._reach[id(block)] = result
        return result

    def instruction_reach(self, inst: Instruction) -> Term:
        if inst.parent is None:
            return self.manager.true()
        return self.block_reach(inst.parent)

    # -- undefined-behavior conditions ---------------------------------------------

    def ub_conditions(self, inst: Instruction) -> List[UBCondition]:
        """The UB conditions attached to one instruction (Figure 3 rows)."""
        cached = self._ub.get(id(inst))
        if cached is not None:
            return cached
        conditions = self._compute_ub(inst)
        self._ub[id(inst)] = conditions
        return conditions

    def _compute_ub(self, inst: Instruction) -> List[UBCondition]:
        mgr = self.manager
        out: List[UBCondition] = []
        if isinstance(inst, BinaryOp):
            out.extend(self._ub_binop(inst))
        elif isinstance(inst, (Load, Store)):
            pointer = inst.pointer
            # Dereferencing any address derived from a null base pointer is
            # undefined, so the condition applies to the *root* of the
            # GEP/cast chain (e.g. `req` for `req->status`), as STACK's
            # bug_on insertion does for member accesses.
            base = self._base_pointer(pointer)
            base_term = self.term(base)
            zero = mgr.bv_const(0, base_term.width)
            out.append(UBCondition(UBKind.NULL_DEREF, mgr.eq(base_term, zero), inst,
                                   note=f"dereference of {base.short_name()}"))
            out.extend(self._ub_lifetime(inst, pointer))
        elif isinstance(inst, GetElementPtr):
            out.extend(self._ub_gep(inst))
        elif isinstance(inst, Call):
            out.extend(self._ub_call(inst))
        return out

    def _ub_binop(self, inst: BinaryOp) -> List[UBCondition]:
        mgr = self.manager
        out: List[UBCondition] = []
        lhs = self.term(inst.lhs)
        rhs = self._resize(self.term(inst.rhs), lhs.width, signed=True)
        width = lhs.width
        signed = inst.type.is_integer() and inst.type.signed

        if inst.kind in (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL) and signed:
            out.append(UBCondition(
                UBKind.SIGNED_OVERFLOW,
                self._signed_overflow(inst.kind, lhs, rhs),
                inst, note=f"{inst.kind.value} on i{width}"))
        if inst.kind in (BinOpKind.SDIV, BinOpKind.SREM,
                         BinOpKind.UDIV, BinOpKind.UREM):
            zero = mgr.bv_const(0, width)
            out.append(UBCondition(UBKind.DIV_BY_ZERO, mgr.eq(rhs, zero), inst))
            if inst.kind in (BinOpKind.SDIV, BinOpKind.SREM):
                int_min = mgr.bv_const(1 << (width - 1), width)
                minus_one = mgr.bv_const(-1, width)
                out.append(UBCondition(
                    UBKind.SIGNED_OVERFLOW,
                    mgr.and_(mgr.eq(lhs, int_min), mgr.eq(rhs, minus_one)),
                    inst, note="INT_MIN / -1"))
        if inst.kind in (BinOpKind.SHL, BinOpKind.LSHR, BinOpKind.ASHR):
            bound = mgr.bv_const(width, rhs.width)
            out.append(UBCondition(
                UBKind.OVERSIZED_SHIFT, mgr.bvuge(rhs, bound), inst,
                note=f"shift amount >= {width}"))
        return out

    def _signed_overflow(self, kind: BinOpKind, lhs: Term, rhs: Term) -> Term:
        """x∞ op y∞ outside [-2^(n-1), 2^(n-1)-1] (Figure 3)."""
        mgr = self.manager
        width = lhs.width
        if kind is BinOpKind.MUL:
            extra = width
        else:
            extra = 1
        wide_lhs = mgr.sext(lhs, extra)
        wide_rhs = mgr.sext(rhs, extra)
        op = {BinOpKind.ADD: mgr.bvadd, BinOpKind.SUB: mgr.bvsub,
              BinOpKind.MUL: mgr.bvmul}[kind]
        wide = op(wide_lhs, wide_rhs)
        lo = mgr.bv_const(-(1 << (width - 1)), width + extra)
        hi = mgr.bv_const((1 << (width - 1)) - 1, width + extra)
        return mgr.or_(mgr.bvslt(wide, lo), mgr.bvsgt(wide, hi))

    def _ub_gep(self, inst: GetElementPtr) -> List[UBCondition]:
        mgr = self.manager
        out: List[UBCondition] = []
        pointer = self.term(inst.pointer)
        index = self._resize(self.term(inst.index), pointer.width, signed=True)
        width = pointer.width
        scale = mgr.bv_const(inst.element_size, width + 2)
        wide_ptr = mgr.zext(pointer, 2)
        wide_idx = mgr.sext(index, 2)
        wide_sum = mgr.bvadd(wide_ptr, mgr.bvmul(wide_idx, scale))
        zero = mgr.bv_const(0, width + 2)
        limit = mgr.bv_const((1 << width) - 1, width + 2)
        overflow = mgr.or_(mgr.bvslt(wide_sum, zero), mgr.bvsgt(wide_sum, limit))
        out.append(UBCondition(UBKind.POINTER_OVERFLOW, overflow, inst,
                               note=f"{inst.pointer.short_name()} + index"))
        if self.options.buffer_overflow_conditions and inst.array_size is not None:
            capacity = mgr.bv_const(inst.array_size, index.width)
            index_zero = mgr.bv_const(0, index.width)
            out.append(UBCondition(
                UBKind.BUFFER_OVERFLOW,
                mgr.or_(mgr.bvslt(index, index_zero), mgr.bvsge(index, capacity)),
                inst, note=f"capacity {inst.array_size}"))
        return out

    def _ub_call(self, inst: Call) -> List[UBCondition]:
        mgr = self.manager
        out: List[UBCondition] = []
        callee = inst.callee
        if callee in ("abs", "labs") and inst.args:
            arg = self.term(inst.args[0])
            int_min = mgr.bv_const(1 << (arg.width - 1), arg.width)
            out.append(UBCondition(UBKind.ABS_OVERFLOW, mgr.eq(arg, int_min), inst))
        elif callee == "memcpy" and len(inst.args) >= 3:
            dst = self.term(inst.args[0])
            src = self._resize(self.term(inst.args[1]), dst.width)
            length = self._resize(self.term(inst.args[2]), dst.width)
            distance = mgr.ite(mgr.bvugt(dst, src), mgr.bvsub(dst, src),
                               mgr.bvsub(src, dst))
            zero = mgr.bv_const(0, dst.width)
            out.append(UBCondition(
                UBKind.MEMCPY_OVERLAP,
                mgr.and_(mgr.bvult(distance, length), mgr.distinct(length, zero)),
                inst))
        return out

    # -- use-after-free / use-after-realloc --------------------------------------------

    def _collect_lifetime_events(self) -> None:
        if not self.options.lifetime_conditions:
            return
        for inst in self.function.instructions():
            if isinstance(inst, Call) and inst.callee in ("free", "realloc") and inst.args:
                self._freed_pointers.append((inst, inst.args[0], inst.callee))

    def _ub_lifetime(self, inst: Instruction, pointer: Value) -> List[UBCondition]:
        if not self._freed_pointers:
            return []
        mgr = self.manager
        out: List[UBCondition] = []
        roots = self._pointer_roots(pointer)
        for call, freed, callee in self._freed_pointers:
            if call.parent is None or inst.parent is None:
                continue
            if not self._executes_before(call, inst):
                continue
            if id(freed) not in roots and freed is not pointer:
                continue
            if callee == "free":
                out.append(UBCondition(UBKind.USE_AFTER_FREE, mgr.true(), inst,
                                       note=f"freed at {call.location}"))
            else:
                result = self.term(call)
                zero = mgr.bv_const(0, result.width)
                out.append(UBCondition(
                    UBKind.USE_AFTER_REALLOC, mgr.distinct(result, zero), inst,
                    note=f"realloc'd at {call.location}"))
        return out

    @staticmethod
    def _base_pointer(pointer: Value) -> Value:
        """The root of a GEP/cast chain (the object the access derives from)."""
        current = pointer
        while True:
            if isinstance(current, GetElementPtr):
                current = current.pointer
            elif isinstance(current, Cast) and current.value.type.is_pointer():
                current = current.value
            else:
                return current

    def _pointer_roots(self, pointer: Value) -> Set[int]:
        """Values this pointer is derived from via GEPs/casts (may-alias set)."""
        roots: Set[int] = set()
        worklist = [pointer]
        while worklist:
            value = worklist.pop()
            if id(value) in roots:
                continue
            roots.add(id(value))
            if isinstance(value, GetElementPtr):
                worklist.append(value.pointer)
            elif isinstance(value, Cast):
                worklist.append(value.value)
            elif isinstance(value, Phi):
                worklist.extend(v for v, _b in value.incoming)
        return roots

    def _executes_before(self, first: Instruction, second: Instruction) -> bool:
        """True if ``first`` is guaranteed to execute before ``second``."""
        if first.parent is second.parent and first.parent is not None:
            block = first.parent.instructions
            return block.index(first) < block.index(second)
        if first.parent is None or second.parent is None:
            return False
        return (first.parent is not second.parent
                and self.dominators.dominates(first.parent, second.parent))

    # -- well-defined program assumption -----------------------------------------------

    def dominating_ub_conditions(self, inst: Instruction) -> List[UBCondition]:
        """UB conditions of all instructions that dominate ``inst``."""
        out: List[UBCondition] = []
        for dom in self.dominators.dominating_instructions(inst):
            out.extend(self.ub_conditions(dom))
        return out

    def block_dominating_ub_conditions(self, block: BasicBlock) -> List[UBCondition]:
        """UB conditions of instructions in all strict dominators of ``block``."""
        out: List[UBCondition] = []
        for dom_block in self.dominators.dominators_of(block):
            if dom_block is block:
                continue
            for inst in dom_block.instructions:
                out.extend(self.ub_conditions(inst))
        return out

    def well_defined_over(self, conditions: Sequence[UBCondition]) -> Term:
        """⋀ ¬U_d over the given UB conditions (equation 5)."""
        mgr = self.manager
        result = mgr.true()
        for ub in conditions:
            result = mgr.and_(result, mgr.not_(ub.condition))
        return result

    # -- auxiliary definitions -----------------------------------------------------------

    def definitions_for(self, *terms: Term) -> List[Term]:
        """Auxiliary constraints (division axioms, alloca non-nullness, ...)
        for every defined variable appearing in ``terms``, transitively."""
        from repro.solver.terms import collect_variables

        needed: List[Term] = []
        seen_names: Set[str] = set()
        worklist = list(terms)
        while worklist:
            term = worklist.pop()
            for name in collect_variables(term):
                if name in seen_names:
                    continue
                seen_names.add(name)
                for constraint in self._definitions.get(name, ()):
                    needed.append(constraint)
                    worklist.append(constraint)
        return needed
