"""The StackChecker facade: the four-stage pipeline of Figure 7.

Stage 1 — the frontend — lives in :mod:`repro.frontend` / :mod:`repro.lower`
(`stack-build` intercepting the compiler corresponds to
:func:`repro.api.compile_source`).  This module implements stages 2–4 on IR:

2. UB-condition insertion (via :class:`~repro.core.encode.FunctionEncoder`),
3. solver-based optimization — elimination, then simplification with the
   boolean oracle, then the algebra oracle (§4.4),
4. bug report generation — compiler-origin filtering, minimal UB sets, and
   classification (§4.5).

With ``CheckerConfig.validate_witnesses`` a fifth stage runs after report
generation: every diagnostic's solver model is replayed through the concrete
interpreter (:mod:`repro.exec`), before and after the UB-exploiting
optimizer, and the witness verdict is attached to the diagnostic
(docs/EXEC.md).

With ``CheckerConfig.repair`` a sixth stage runs after that: the repair
template library (:mod:`repro.repair`) proposes candidate rewrites for each
diagnostic, and every candidate must clear the three-gate verifier (solver
equivalence on UB-free inputs, stability re-check under every built-in
compiler profile, witness replay) before the patch is attached as
``Diagnostic.repair`` (docs/REPAIR.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import List, Optional, Sequence

from repro.core.classify import classify_all
from repro.core.elimination import EliminationFinding, run_elimination
from repro.core.encode import EncoderOptions, FunctionEncoder
from repro.core.mincond import minimal_ub_conditions
from repro.core.queries import QueryEngine
from repro.core.report import (
    Algorithm,
    BugReport,
    Diagnostic,
    FunctionReport,
    MinimalUBSet,
)
from repro.core.simplification import (
    AlgebraOracle,
    BooleanOracle,
    SimplificationFinding,
    run_simplification,
)
from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction
from repro.ir.printer import print_instruction
from repro.ir.verifier import verify_module
from repro.obs.trace import span


@dataclass
class CheckerConfig:
    """Configuration of a checker run."""

    #: Per-query solver timeout in seconds (the paper uses 5 s).
    solver_timeout: float = 5.0
    #: Additional deterministic budget: maximum CDCL conflicts per query.
    max_conflicts: int = 50_000
    #: Batch related queries into incremental solver contexts (shared base
    #: asserted once, per-query deltas as assumptions, learned clauses and
    #: bit-blasted encodings retained).  Disable to solve every query from
    #: scratch — the reference mode the benchmarks compare against.
    incremental: bool = True
    #: Inline same-module callees before checking (§4.2).
    inline: bool = True
    #: Suppress diagnostics whose code the compiler generated (macros /
    #: inlined callees), as §4.2/§4.5 prescribe.
    ignore_compiler_generated: bool = True
    #: Compute minimal UB sets (Figure 8).  Disabling skips the extra queries.
    minimize_ub_sets: bool = True
    #: Run the elimination algorithm.
    enable_elimination: bool = True
    #: Run simplification with the boolean oracle.
    enable_boolean_oracle: bool = True
    #: Run simplification with the algebra oracle.
    enable_algebra_oracle: bool = True
    #: Options forwarded to the encoder.
    encoder_options: EncoderOptions = field(default_factory=EncoderOptions)
    #: Classify diagnostics into the §6.2 taxonomy.
    classify: bool = True
    #: Stage 5: replay a solver model for every diagnostic through the
    #: concrete interpreter, pre- and post-optimization, and attach the
    #: witness verdict (docs/EXEC.md).
    validate_witnesses: bool = False
    #: Instruction budget per concrete witness replay.
    witness_fuel: int = 50_000
    #: Seed of the external environment used by witness replay and the
    #: repair verifier's replay gate (CLI: ``--seed``), so validation runs
    #: reproduce exactly.
    witness_seed: int = 0
    #: Stage 6: propose template rewrites for every diagnostic and attach
    #: the patches that clear the three-gate verifier (docs/REPAIR.md).
    repair: bool = False
    #: Cluster structurally identical functions, solve one representative
    #: per cluster, and propagate solver-confirmed verdicts to the other
    #: members (docs/CLUSTER.md).
    cluster: bool = False
    #: Route solver queries through one named backend ("builtin", "pysat",
    #: "dimacs"); None keeps the direct in-process CDCL path
    #: (docs/SOLVER.md).
    backend: Optional[str] = None
    #: Race several named backends per query and take the first definitive
    #: answer (ties break by order; unavailable members are dropped).
    #: Mutually exclusive with ``backend``.
    portfolio: Sequence[str] = ()
    #: Record hierarchical spans + metrics for every stage and solver query
    #: (repro.obs; CLI: ``--trace OUT.json``).  Span identities are
    #: deterministic — see docs/OBSERVABILITY.md.
    trace: bool = False
    #: Record every solver query slower than this many milliseconds (key,
    #: backend, verdict, duration) on ``UnitResult.slow_queries`` — the serve
    #: daemon's slow-query log (docs/OBSERVABILITY.md).  None disables the
    #: recorder entirely.
    slow_query_ms: Optional[float] = None

    def describe(self) -> str:
        """Render the active configuration for reports and logs.

        One ``name = value`` line per field; nested encoder options are
        flattened with an ``encoder.`` prefix.  ``docs/ENGINE.md`` carries the
        paper citation for every field.
        """
        lines = ["CheckerConfig:"]
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            if isinstance(value, EncoderOptions):
                for option_field in fields(value):
                    lines.append(f"  encoder.{option_field.name} = "
                                 f"{getattr(value, option_field.name)!r}")
                continue
            lines.append(f"  {config_field.name} = {value!r}")
        return "\n".join(lines)


class StackChecker:
    """Detects optimization-unstable code in IR modules.

    ``query_cache`` (a :class:`~repro.engine.cache.SolverQueryCache`) is
    shared by every function this checker analyzes: structurally identical
    solver queries are answered once and replayed thereafter.
    """

    def __init__(self, config: Optional[CheckerConfig] = None,
                 query_cache: Optional["SolverQueryCache"] = None) -> None:
        self.config = config if config is not None else CheckerConfig()
        self.query_cache = query_cache

    # -- public API ----------------------------------------------------------------

    def check_module(self, module: Module) -> BugReport:
        """Check every defined function in ``module``."""
        if self.config.cluster:
            from repro.cluster.propagate import check_module_clustered
            report, _stats = check_module_clustered(
                module, self.config, cache=self.query_cache)
            return report
        verify_module(module)
        if self.config.inline:
            from repro.lower.inline import inline_module
            inline_module(module)
        report = BugReport(module=module.name)
        for function in module.defined_functions():
            report.functions.append(self.check_function(function))
        return report

    def check_function(self, function: Function) -> FunctionReport:
        """Check a single function and return its report.

        With ``config.trace`` set (and a tracer active), the stage 2–6
        sub-phases each record a span under one ``check.function`` span.
        """
        with span("check.function", function=function.name):
            return self._check_function(function)

    def _check_function(self, function: Function) -> FunctionReport:
        started = time.monotonic()
        with span("stage2.encode", function=function.name):
            encoder = FunctionEncoder(function,
                                      options=self.config.encoder_options)
            engine = QueryEngine(encoder, timeout=self.config.solver_timeout,
                                 max_conflicts=self.config.max_conflicts,
                                 cache=self.query_cache,
                                 incremental=self.config.incremental,
                                 backend=self.config.backend,
                                 portfolio=self.config.portfolio)
        result = FunctionReport(function=function.name)

        elimination_findings: List[EliminationFinding] = []
        if self.config.enable_elimination:
            with span("stage3.elimination"):
                elimination_findings = run_elimination(encoder, engine)

        # Comparisons inside blocks already proven unreachable need no second
        # look by the simplification oracles.
        dead_instructions: List[Instruction] = []
        for finding in elimination_findings:
            dead_instructions.extend(finding.block.instructions)

        oracles = []
        if self.config.enable_boolean_oracle:
            oracles.append(BooleanOracle())
        if self.config.enable_algebra_oracle:
            oracles.append(AlgebraOracle())
        simplification_findings: List[SimplificationFinding] = []
        if oracles:
            with span("stage3.simplification"):
                simplification_findings = run_simplification(
                    encoder, engine, oracles,
                    skip_instructions=dead_instructions)

        diagnostics: List[Diagnostic] = []
        witness_work = []         # (diagnostic, hypothesis, conditions) triples
        repair_work = []          # the same, plus the originating finding
        suppressed = 0
        with span("stage4.report"):
            for finding in elimination_findings:
                if finding.trivially_dead:
                    continue
                diagnostic = self._diagnostic_from_elimination(
                    encoder, engine, finding)
                if diagnostic is None:
                    suppressed += 1
                    continue
                diagnostics.append(diagnostic)
                witness_work.append((diagnostic, finding.hypothesis,
                                     finding.conditions))
                repair_work.append((diagnostic, finding, finding.hypothesis,
                                    finding.conditions))
            for finding in simplification_findings:
                if finding.trivially_simplified:
                    continue
                diagnostic = self._diagnostic_from_simplification(
                    encoder, engine, finding)
                if diagnostic is None:
                    suppressed += 1
                    continue
                diagnostics.append(diagnostic)
                witness_work.append((diagnostic, finding.hypothesis,
                                     finding.conditions))
                repair_work.append((diagnostic, finding, finding.hypothesis,
                                    finding.conditions))

            if self.config.classify:
                classify_all(diagnostics)

        if self.config.validate_witnesses and witness_work:
            from repro.exec.witness import validate_diagnostics

            witness_started = time.monotonic()
            with span("stage5.witness", diagnostics=len(witness_work)):
                counts = validate_diagnostics(
                    function, encoder, witness_work,
                    fuel=self.config.witness_fuel,
                    timeout=self.config.solver_timeout,
                    max_conflicts=self.config.max_conflicts,
                    seed=self.config.witness_seed)
            result.witnesses_confirmed = counts["confirmed"]
            result.witnesses_unconfirmed = counts["unconfirmed"]
            result.witnesses_inconclusive = counts["inconclusive"]
            result.witness_time = time.monotonic() - witness_started

        if self.config.repair and repair_work:
            from repro.repair import repair_diagnostics

            repair_started = time.monotonic()
            with span("stage6.repair", diagnostics=len(repair_work)):
                counts = repair_diagnostics(function, encoder, repair_work,
                                            self.config, cache=self.query_cache)
            result.repairs_attempted = counts["attempted"]
            result.repairs_succeeded = counts["repaired"]
            result.repairs_rejected = counts["rejected"]
            result.repairs_no_template = counts["no_template"]
            result.repair_gate_equivalence_rejects = counts["gate_equivalence"]
            result.repair_gate_recheck_rejects = counts["gate_recheck"]
            result.repair_gate_replay_rejects = counts["gate_replay"]
            result.repair_time = time.monotonic() - repair_started

        result.diagnostics = diagnostics
        result.suppressed_compiler_origin = suppressed
        result.queries = engine.stats.queries
        result.cache_hits = engine.stats.cache_hits
        result.timeouts = engine.stats.timeouts
        result.contexts = engine.stats.contexts
        solver_stats = engine.solver_stats
        result.sat_calls = solver_stats.sat_calls
        result.restarts = solver_stats.restarts
        result.blasted_clauses = solver_stats.blasted_clauses
        result.solver_time = solver_stats.total_time
        result.oracle_sat = solver_stats.oracle_sat
        result.oracle_unsat = solver_stats.oracle_unsat
        result.backend_wins = dict(solver_stats.backend_wins)
        result.analysis_time = time.monotonic() - started
        return result

    # -- diagnostic construction -------------------------------------------------------

    def _minimal_set(self, encoder: FunctionEncoder, engine: QueryEngine,
                     hypothesis, conditions) -> MinimalUBSet:
        if not self.config.minimize_ub_sets:
            return MinimalUBSet(list(conditions))
        return minimal_ub_conditions(engine, hypothesis, conditions)

    def _diagnostic_from_elimination(
        self, encoder: FunctionEncoder, engine: QueryEngine,
        finding: EliminationFinding,
    ) -> Optional[Diagnostic]:
        representative = finding.representative
        if representative is None:
            return None
        if self.config.ignore_compiler_generated and \
                not representative.origin.is_user_code():
            return None
        ub_set = self._minimal_set(encoder, engine,
                                   finding.hypothesis, finding.conditions)
        fragment = print_instruction(representative)
        message = ("this code becomes unreachable once the compiler assumes "
                   "the program never invokes undefined behavior")
        return Diagnostic(
            function=encoder.function.name,
            location=representative.location,
            algorithm=Algorithm.ELIMINATION,
            message=message,
            fragment=fragment,
            replacement="(code removed)",
            ub_set=ub_set,
            origin=representative.origin,
        )

    def _diagnostic_from_simplification(
        self, encoder: FunctionEncoder, engine: QueryEngine,
        finding: SimplificationFinding,
    ) -> Optional[Diagnostic]:
        inst = finding.instruction
        if self.config.ignore_compiler_generated and not inst.origin.is_user_code():
            return None
        ub_set = self._minimal_set(encoder, engine,
                                   finding.hypothesis, finding.conditions)
        fragment = print_instruction(inst)
        message = ("this comparison can be simplified once the compiler assumes "
                   "the program never invokes undefined behavior")
        return Diagnostic(
            function=encoder.function.name,
            location=inst.location,
            algorithm=finding.algorithm,
            message=message,
            fragment=fragment,
            replacement=finding.proposal.description,
            ub_set=ub_set,
            origin=inst.origin,
        )
