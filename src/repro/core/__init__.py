"""The STACK checker: detection of optimization-unstable code.

This package implements the paper's core contribution (§3–§5):

* :mod:`repro.core.ubconditions` — the undefined-behavior condition table
  (Figure 3) and the annotation pass that attaches conditions to IR
  instructions (the paper's ``bug_on`` insertion, §4.3).
* :mod:`repro.core.encode` — translation of IR values, reachability
  conditions, and UB conditions into solver terms (§4.4).
* :mod:`repro.core.elimination` — the elimination algorithm (Figure 5).
* :mod:`repro.core.simplification` — the simplification algorithm with the
  boolean and algebra oracles (Figure 6).
* :mod:`repro.core.mincond` — minimal UB-condition sets (Figure 8).
* :mod:`repro.core.report` — diagnostics and bug reports (§4.5).
* :mod:`repro.core.classify` — the §6.2 report taxonomy (non-optimization
  bugs, urgent optimization bugs, time bombs, redundant code).
* :mod:`repro.core.checker` — the four-stage pipeline facade (Figure 7).
"""

from repro.core.checker import CheckerConfig, StackChecker
from repro.core.classify import BugClass, classify_diagnostic
from repro.core.report import BugReport, Diagnostic
from repro.core.ubconditions import UBKind, UBCondition

__all__ = [
    "BugClass",
    "BugReport",
    "CheckerConfig",
    "Diagnostic",
    "StackChecker",
    "UBCondition",
    "UBKind",
    "classify_diagnostic",
]
