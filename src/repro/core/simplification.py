"""The simplification algorithm and its oracles (Figure 6 of the paper).

The algorithm asks an *oracle* to propose simpler forms e' for an expression
e, and reports e as unstable when e ≡ e' holds only under the well-defined
program assumption Δ.  Two oracles are implemented, as in STACK:

* the **boolean oracle** proposes ``true`` and ``false`` for boolean
  expressions (comparisons),
* the **algebra oracle** proposes cancelling a common term from both sides of
  a comparison — e.g. proposing ``x < 0`` for ``p + x < p`` — which is how
  STACK finds the FFmpeg-style bounds checks of §6.2.2.

Expressions that can be simplified even without Δ are rewritten silently and
produce no report (Figure 6, line 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.encode import FunctionEncoder
from repro.core.queries import QueryEngine
from repro.core.report import Algorithm
from repro.core.ubconditions import UBCondition
from repro.ir.instructions import (
    BinaryOp,
    BinOpKind,
    Cast,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
)
from repro.ir.values import Constant, Value
from repro.solver.terms import Term, TermManager


@dataclass
class Proposal:
    """One candidate replacement e' for an expression e."""

    term: Term                 # boolean term for e'
    description: str           # human-readable form, e.g. "false" or "x < 0"


@dataclass
class SimplificationFinding:
    """One comparison identified by the simplification algorithm."""

    instruction: ICmp
    algorithm: Algorithm
    proposal: Proposal
    trivially_simplified: bool = False
    hypothesis: List[Term] = field(default_factory=list)
    conditions: List[UBCondition] = field(default_factory=list)


class BooleanOracle:
    """Proposes ``true`` and ``false`` for a boolean expression (§3.2.3)."""

    name = "boolean"
    algorithm = Algorithm.SIMPLIFY_BOOLEAN

    def propose(self, encoder: FunctionEncoder, inst: ICmp) -> List[Proposal]:
        manager = encoder.manager
        return [
            Proposal(manager.true(), "true"),
            Proposal(manager.false(), "false"),
        ]


class AlgebraOracle:
    """Proposes cancelling common terms across a comparison (§3.2.3).

    Recognized shapes (and their mirror images):

    * ``(a + b) cmp a``  →  ``b cmp 0``
    * ``(a - b) cmp a``  →  ``0 cmp b`` (i.e. ``b`` compared against 0 with
      the flipped predicate)
    * ``gep(p, i) cmp p``  →  ``i cmp 0`` (pointer arithmetic, the paper's
      ``data + x < data`` pattern)
    """

    name = "algebra"
    algorithm = Algorithm.SIMPLIFY_ALGEBRA

    _SIGNED_VERSION = {
        ICmpPred.ULT: ICmpPred.SLT, ICmpPred.ULE: ICmpPred.SLE,
        ICmpPred.UGT: ICmpPred.SGT, ICmpPred.UGE: ICmpPred.SGE,
        ICmpPred.SLT: ICmpPred.SLT, ICmpPred.SLE: ICmpPred.SLE,
        ICmpPred.SGT: ICmpPred.SGT, ICmpPred.SGE: ICmpPred.SGE,
        ICmpPred.EQ: ICmpPred.EQ, ICmpPred.NE: ICmpPred.NE,
    }
    _MIRROR = {
        ICmpPred.ULT: ICmpPred.UGT, ICmpPred.UGT: ICmpPred.ULT,
        ICmpPred.ULE: ICmpPred.UGE, ICmpPred.UGE: ICmpPred.ULE,
        ICmpPred.SLT: ICmpPred.SGT, ICmpPred.SGT: ICmpPred.SLT,
        ICmpPred.SLE: ICmpPred.SGE, ICmpPred.SGE: ICmpPred.SLE,
        ICmpPred.EQ: ICmpPred.EQ, ICmpPred.NE: ICmpPred.NE,
    }

    def propose(self, encoder: FunctionEncoder, inst: ICmp) -> List[Proposal]:
        proposals: List[Proposal] = []
        proposals.extend(self._cancel(encoder, inst, inst.lhs, inst.rhs, inst.pred))
        proposals.extend(self._cancel(encoder, inst, inst.rhs, inst.lhs,
                                      self._MIRROR[inst.pred]))
        return proposals

    def _cancel(self, encoder: FunctionEncoder, inst: ICmp,
                compound: Value, other: Value, pred: ICmpPred) -> List[Proposal]:
        """Proposals for ``compound pred other`` where compound may contain other."""
        manager = encoder.manager
        residue: Optional[Tuple[Value, bool, str]] = None

        if isinstance(compound, GetElementPtr) and compound.pointer is other:
            residue = (compound.index, True, self._name_of(compound.index))
        elif isinstance(compound, BinaryOp) and compound.kind is BinOpKind.ADD:
            if compound.lhs is other:
                residue = (compound.rhs, True, self._name_of(compound.rhs))
            elif compound.rhs is other:
                residue = (compound.lhs, True, self._name_of(compound.lhs))
        elif isinstance(compound, BinaryOp) and compound.kind is BinOpKind.SUB:
            if compound.lhs is other:
                residue = (compound.rhs, False, self._name_of(compound.rhs))

        if residue is None:
            return []
        value, positive, name = residue
        term = encoder.term(value)
        zero = manager.bv_const(0, term.width)
        signed_pred = self._SIGNED_VERSION[pred]
        if not positive:
            # (a - b) pred a  ≡  -b pred 0  ≡  0 pred' b with mirrored predicate
            signed_pred = self._MIRROR[signed_pred]

        comparison = self._build(manager, signed_pred, term, zero)
        symbol = {ICmpPred.SLT: "<", ICmpPred.SLE: "<=", ICmpPred.SGT: ">",
                  ICmpPred.SGE: ">=", ICmpPred.EQ: "==", ICmpPred.NE: "!="}[signed_pred]
        return [Proposal(comparison, f"{name} {symbol} 0")]

    @staticmethod
    def _build(manager: TermManager, pred: ICmpPred, lhs: Term, rhs: Term) -> Term:
        builders = {
            ICmpPred.EQ: manager.eq, ICmpPred.NE: manager.distinct,
            ICmpPred.SLT: manager.bvslt, ICmpPred.SLE: manager.bvsle,
            ICmpPred.SGT: manager.bvsgt, ICmpPred.SGE: manager.bvsge,
            ICmpPred.ULT: manager.bvult, ICmpPred.ULE: manager.bvule,
            ICmpPred.UGT: manager.bvugt, ICmpPred.UGE: manager.bvuge,
        }
        return builders[pred](lhs, rhs)

    @staticmethod
    def _name_of(value: Value) -> str:
        if isinstance(value, Constant):
            return str(value.value)
        if isinstance(value, Cast) and value.value.name:
            return value.value.name
        return value.name or "x"


DEFAULT_ORACLES = (BooleanOracle(), AlgebraOracle())


def run_simplification(
    encoder: FunctionEncoder,
    engine: QueryEngine,
    oracles: Sequence = DEFAULT_ORACLES,
    skip_instructions: Optional[Iterable[Instruction]] = None,
) -> List[SimplificationFinding]:
    """Run Figure 6 over every comparison of the encoder's function."""
    skip_ids = {id(inst) for inst in (skip_instructions or ())}
    findings: List[SimplificationFinding] = []
    reported_ids = set()

    for oracle in oracles:
        for block in encoder.function.blocks:
            for inst in block.instructions:
                if not isinstance(inst, ICmp):
                    continue
                if id(inst) in skip_ids or id(inst) in reported_ids:
                    continue
                finding = _try_simplify(encoder, engine, oracle, inst)
                if finding is None:
                    continue
                findings.append(finding)
                if not finding.trivially_simplified:
                    reported_ids.add(id(inst))
    return findings


def _try_simplify(encoder: FunctionEncoder, engine: QueryEngine,
                  oracle, inst: ICmp) -> Optional[SimplificationFinding]:
    manager = encoder.manager
    expression = encoder.comparison_bool(inst)
    reach = encoder.instruction_reach(inst)

    # All queries for this comparison share its reachability condition; one
    # incremental context asserts it once, and each proposal's disagreement
    # term (and the well-defined assumption Δ) arrives as an assumption.
    with engine.context([reach]) as ctx:
        for proposal in oracle.propose(encoder, inst):
            disagreement = manager.xor(expression, proposal.term)
            if disagreement.is_const() and not disagreement.value:
                # e is literally e' already; nothing to simplify.
                continue

            trivially = ctx.is_unsat([disagreement])
            if trivially is True:
                return SimplificationFinding(
                    inst, oracle.algorithm, proposal, trivially_simplified=True)
            if trivially is None:
                continue

            conditions = encoder.dominating_ub_conditions(inst)
            if not conditions:
                continue
            delta = encoder.well_defined_over(conditions)
            unstable = ctx.is_unsat([disagreement, delta])
            if unstable is True:
                return SimplificationFinding(
                    inst, oracle.algorithm, proposal,
                    hypothesis=[disagreement, reach], conditions=conditions)
    return None
