"""The elimination algorithm (Figure 5 of the paper).

A fragment is reported as unstable when it is reachable for some input under
plain C* semantics, but *unreachable* once the well-defined program
assumption Δ is added — i.e. every input that reaches it must trigger
undefined behavior earlier.  Fragments that are unreachable even without Δ
are trivially dead and removed silently, exactly as in Figure 5.

The granularity is the basic block: after lowering, every guarded statement
(e.g. the body of an ``if``) lives in its own block, so block-level
elimination corresponds to the paper's statement-level elimination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.encode import FunctionEncoder
from repro.core.queries import QueryEngine
from repro.core.report import Algorithm
from repro.core.ubconditions import UBCondition
from repro.ir.function import BasicBlock
from repro.ir.instructions import Branch, Instruction
from repro.solver.terms import Term


@dataclass
class EliminationFinding:
    """One block identified by the elimination algorithm."""

    block: BasicBlock
    algorithm: Algorithm = Algorithm.ELIMINATION
    #: True when the block is dead even without the well-defined assumption;
    #: such blocks are removed silently and never reported (Figure 5, line 4).
    trivially_dead: bool = False
    #: The H term(s) of the query, needed for minimal-UB-set computation.
    hypothesis: List[Term] = field(default_factory=list)
    #: Dominating UB conditions that were conjoined (negated) into the query.
    conditions: List[UBCondition] = field(default_factory=list)

    @property
    def representative(self) -> Optional[Instruction]:
        """The instruction used for the diagnostic's location and origin."""
        for inst in self.block.instructions:
            if inst.origin.is_user_code() and inst.location.is_known():
                return inst
        return self.block.instructions[0] if self.block.instructions else None


def run_elimination(encoder: FunctionEncoder, engine: QueryEngine,
                    skip_empty_blocks: bool = True) -> List[EliminationFinding]:
    """Run Figure 5 over every block of the encoder's function.

    Both queries for one block — reachability with and without the
    well-defined assumption Δ — share the reachability condition, so they
    run in one incremental :class:`~repro.core.queries.QueryContext`: the
    reach term is asserted once and Δ arrives as a per-query assumption.
    """
    findings: List[EliminationFinding] = []
    function = encoder.function
    for block in function.blocks:
        if block is function.entry:
            continue
        if skip_empty_blocks and _is_structural_join(block):
            continue

        reach = encoder.block_reach(block)
        with engine.context([reach]) as ctx:
            plain_unsat = ctx.is_unsat()
            if plain_unsat is True:
                findings.append(EliminationFinding(block, trivially_dead=True))
                continue
            if plain_unsat is None:
                # Timeout: conservatively skip (the paper misses such cases too).
                continue

            conditions = encoder.block_dominating_ub_conditions(block)
            if not conditions:
                continue
            delta = encoder.well_defined_over(conditions)
            with_assumption = ctx.is_unsat([delta])
            if with_assumption is True:
                findings.append(EliminationFinding(
                    block, hypothesis=[reach], conditions=conditions))
    return findings


def _is_structural_join(block: BasicBlock) -> bool:
    """True for blocks that only exist to merge control flow (no user code)."""
    interesting = [
        inst for inst in block.instructions
        if not isinstance(inst, Branch)
    ]
    return not interesting
