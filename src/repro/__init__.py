"""repro — a reproduction of STACK (SOSP 2013).

STACK detects *optimization-unstable code*: code that a C compiler may
silently discard by assuming the program never invokes undefined behavior.
This package re-implements the full system in Python:

* :mod:`repro.frontend` — a MiniC frontend (lexer, parser, types, sema),
* :mod:`repro.ir` — an LLVM-flavoured intermediate representation,
* :mod:`repro.lower` — AST→IR lowering and inlining with origin tracking,
* :mod:`repro.solver` — a QF_BV constraint solver (bit-blasting + CDCL SAT),
* :mod:`repro.core` — the STACK checker itself (UB conditions, elimination,
  simplification, minimal UB sets, report generation and classification),
* :mod:`repro.compilers` — simulated compiler profiles used for the paper's
  compiler survey (Figure 4),
* :mod:`repro.corpus` — the paper's code snippets and synthetic corpora,
* :mod:`repro.engine` — the parallel corpus-checking engine (worker pool,
  solver-query cache, timeout escalation, JSONL result streaming),
* :mod:`repro.exec` — the concrete-execution subsystem: an IR interpreter
  with runtime UB detection, witness replay for diagnostics
  (``CheckerConfig(validate_witnesses=True)``), and differential testing of
  the UB-exploiting optimizer,
* :mod:`repro.repair` — the auto-repair subsystem
  (``CheckerConfig(repair=True)``): template rewrites for unstable idioms,
  each patch proven by solver equivalence, a stability re-check under every
  compiler profile, and witness replay before it is reported,
* :mod:`repro.fuzz` — the generative fuzzing subsystem (``python -m repro
  fuzz``): seeded MiniC/IR program generation across the UB taxonomy,
  checker-guided campaigns through the engine, and ddmin reduction of every
  finding to a minimal reproducer,
* :mod:`repro.obs` — the observability layer (``--trace OUT.json``):
  deterministic hierarchical spans across every pipeline stage, a unified
  counter/gauge/histogram registry behind the existing stats objects, and
  Chrome trace-event / JSONL / text-profile exporters (docs/OBSERVABILITY.md),
* :mod:`repro.serve` — the always-on checking service (``python -m repro
  serve`` / ``submit``): a daemon holding warm engine workers and the
  solver-query cache resident across jobs, speaking line-delimited JSON
  over a Unix socket with deterministic scheduling, quotas, backpressure,
  and graceful drain (docs/SERVE.md),
* :mod:`repro.experiments` — drivers that regenerate every table and figure.

Quickstart::

    from repro import check_source

    report = check_source('''
        int f(int *p) {
            int x = *p;
            if (!p) return -1;
            return x;
        }
    ''')
    for bug in report.bugs:
        print(bug.describe())
"""

__version__ = "1.0.0"

__all__ = [
    "BugReport",
    "CheckEngine",
    "CheckerConfig",
    "Diagnostic",
    "EngineConfig",
    "EngineResult",
    "RepairReport",
    "RepairStatus",
    "SolverQueryCache",
    "StackChecker",
    "check_corpus",
    "check_function",
    "check_module",
    "check_modules_parallel",
    "check_source",
    "compile_source",
    "run_differential",
    "run_function",
    "FuzzConfig",
    "FuzzResult",
    "run_fuzz_campaign",
    "ServeClient",
    "ServeConfig",
    "ServeServer",
    "check_via_server",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "render_profile",
    "span",
    "tracing",
    "write_chrome_trace",
    "__version__",
]

_LAZY_ATTRS = {
    "check_corpus": ("repro.api", "check_corpus"),
    "check_function": ("repro.api", "check_function"),
    "check_module": ("repro.api", "check_module"),
    "check_modules_parallel": ("repro.api", "check_modules_parallel"),
    "check_source": ("repro.api", "check_source"),
    "compile_source": ("repro.api", "compile_source"),
    "StackChecker": ("repro.core.checker", "StackChecker"),
    "CheckerConfig": ("repro.core.checker", "CheckerConfig"),
    "BugReport": ("repro.core.report", "BugReport"),
    "Diagnostic": ("repro.core.report", "Diagnostic"),
    "CheckEngine": ("repro.engine.engine", "CheckEngine"),
    "EngineConfig": ("repro.engine.engine", "EngineConfig"),
    "EngineResult": ("repro.engine.engine", "EngineResult"),
    "RepairReport": ("repro.repair.repair", "RepairReport"),
    "RepairStatus": ("repro.repair.repair", "RepairStatus"),
    "SolverQueryCache": ("repro.engine.cache", "SolverQueryCache"),
    "run_differential": ("repro.exec.diff", "run_differential"),
    "run_function": ("repro.exec.interp", "run_function"),
    "FuzzConfig": ("repro.fuzz.campaign", "FuzzConfig"),
    "FuzzResult": ("repro.fuzz.campaign", "FuzzResult"),
    "run_fuzz_campaign": ("repro.fuzz.campaign", "run_fuzz_campaign"),
    "ServeClient": ("repro.serve.client", "ServeClient"),
    "ServeConfig": ("repro.serve.server", "ServeConfig"),
    "ServeServer": ("repro.serve.server", "ServeServer"),
    "check_via_server": ("repro.serve.client", "check_via_server"),
    "MetricsRegistry": ("repro.obs.metrics", "MetricsRegistry"),
    "Span": ("repro.obs.trace", "Span"),
    "Tracer": ("repro.obs.trace", "Tracer"),
    "render_profile": ("repro.obs.report", "render_profile"),
    "span": ("repro.obs.trace", "span"),
    "tracing": ("repro.obs.trace", "tracing"),
    "write_chrome_trace": ("repro.obs.chrometrace", "write_chrome_trace"),
}


def __getattr__(name: str):
    """Lazily resolve the public API to keep sub-package imports independent."""
    target = _LAZY_ATTRS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
