"""Grouping fingerprinted functions into equivalence-candidate clusters.

Clustering is pure bookkeeping: functions whose canonical forms are exactly
equal (full text, not just digests, so hash collisions cannot conflate
distinct shapes) land in one :class:`FunctionCluster`.  Order is everything
here — cluster order, member order, and therefore representative choice are
all derived from submission order, which is what makes cluster assignments
byte-identical across worker counts and repeated runs (the determinism
contract mirrored from the fuzz campaign, see docs/CLUSTER.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.cluster.fingerprint import FunctionFingerprint, fingerprint_function
from repro.ir.function import Function


@dataclass
class ClusterMember:
    """One function's place in the clustering: where it came from and its form."""

    unit: int                        # submission index of the owning unit
    index: int                       # position among the unit's defined functions
    label: str                       # "unit_name:function_name" for records
    function: Function
    fingerprint: FunctionFingerprint

    @property
    def key(self) -> Tuple[int, int]:
        return (self.unit, self.index)


@dataclass
class FunctionCluster:
    """All functions sharing one canonical form; the first member is solved."""

    digest: str
    members: List[ClusterMember] = field(default_factory=list)

    @property
    def representative(self) -> ClusterMember:
        return self.members[0]

    def __len__(self) -> int:
        return len(self.members)


def cluster_functions(
    functions: Iterable[Tuple[int, int, str, Function]],
) -> List[FunctionCluster]:
    """Group ``(unit_index, function_index, unit_name, function)`` tuples.

    Clusters appear in first-appearance order and members in submission
    order, so the representative of every cluster is the first function of
    that shape the corpus presented.
    """
    clusters: Dict[str, FunctionCluster] = {}
    ordered: List[FunctionCluster] = []
    for unit, index, unit_name, function in functions:
        fingerprint = fingerprint_function(function)
        member = ClusterMember(unit=unit, index=index,
                               label=f"{unit_name}:{function.name}",
                               function=function, fingerprint=fingerprint)
        existing = clusters.get(fingerprint.canonical)
        if existing is None:
            existing = FunctionCluster(digest=fingerprint.digest)
            clusters[fingerprint.canonical] = existing
            ordered.append(existing)
        existing.members.append(member)
    return ordered
