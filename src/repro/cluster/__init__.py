"""Archive-scale structural clustering and verdict propagation.

The paper's Debian prevalence study (§6) re-checks thousands of
near-identical functions: the same patterns instantiated under different
names across packages.  This package deduplicates that work one level above
the solver-query cache: instead of replaying individual query verdicts, it
groups whole functions into equivalence candidates and replays whole
*checker* verdicts.

The pipeline has three stages (docs/CLUSTER.md):

1. **Fingerprint** (:mod:`repro.cluster.fingerprint`) — every IR function is
   alpha-renamed and serialized into a canonical structural form
   (reverse-post-order blocks, position-numbered values, commutative
   operands in canonical order), generalizing the content-addressed cache
   keys of :mod:`repro.engine.cache` from term DAGs to whole functions.
2. **Cluster** (:mod:`repro.cluster.cluster`) — functions with identical
   canonical forms are grouped into candidate equivalence clusters, in
   deterministic first-appearance order.
3. **Propagate** (:mod:`repro.cluster.propagate`) — one representative per
   cluster is solved through the ordinary checker; every other member is
   first *confirmed* equivalent by the dual-encoder solver gate reused from
   the repair verifier (:func:`repro.repair.verify.prove_equivalence`'s
   machinery), and only then receives a copy of the representative's
   verdict, remapped onto its own instructions.  Members that cannot be
   confirmed fall back to a full check — propagation never trades soundness
   for speed.
"""

from repro.cluster.cluster import ClusterMember, FunctionCluster, cluster_functions
from repro.cluster.fingerprint import FunctionFingerprint, fingerprint_function
from repro.cluster.propagate import (
    ClusterStats,
    check_module_clustered,
    propagate_clusters,
)
from repro.cluster.synthetic import synthetic_cluster_corpus

__all__ = [
    "ClusterMember",
    "ClusterStats",
    "FunctionCluster",
    "FunctionFingerprint",
    "check_module_clustered",
    "cluster_functions",
    "fingerprint_function",
    "propagate_clusters",
    "synthetic_cluster_corpus",
]
