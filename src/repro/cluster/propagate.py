"""Solve one representative per cluster, confirm members, copy verdicts.

Propagation is gated twice.  Membership in a cluster already means *exact*
canonical-form equality (structural isomorphism up to renaming and
commutative operand order), and on top of that every member must pass a
per-member solver equivalence check before it may receive the
representative's verdict: the member is cloned, renamed onto the
representative through the fingerprint's positional isomorphism, and both
functions are encoded into one shared :class:`TermManager` exactly the way
the repair verifier's equivalence gate does it
(:func:`repro.repair.verify.prove_equivalence`) — arguments equated, the
external world correlated by result name, the representative's
reach-guarded well-definedness assumed, and ``ret_rep ≠ ret_member`` must
come back UNSAT.  Because the aligned member hash-conses onto the
representative's terms, the disequality collapses at construction time for
true clones, so confirmation costs one encoding pass rather than a full
blast-and-solve cycle.

A member that cannot be confirmed — an UNKNOWN verdict, a void return, or a
diagnostic that cannot be remapped onto the member's own instructions — is
*never* propagated to; it falls back to an ordinary full check.  The
``fallbacks`` counter makes that visible, and the benchmark asserts the
propagated/confirmed counters stay equal (zero unconfirmed propagations).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import ClusterMember, FunctionCluster, cluster_functions
from repro.core.checker import CheckerConfig, StackChecker
from repro.core.encode import FunctionEncoder
from repro.core.report import BugReport, Diagnostic, FunctionReport
from repro.exec.clone import clone_function
from repro.ir.function import Function, Module
from repro.ir.printer import print_instruction
from repro.ir.verifier import verify_module
from repro.obs.trace import counter, span
from repro.repair.verify import (
    _external_world_correlation,
    _return_term,
    _well_defined_original,
)
from repro.solver.solver import CheckResult, Solver
from repro.solver.terms import Term, TermManager


@dataclass
class ClusterStats:
    """Counters of one clustered run (nested under ``cluster`` in the JSONL)."""

    functions: int = 0               # functions that entered clustering
    clusters: int = 0                # distinct canonical forms
    propagated: int = 0              # verdicts copied from a representative
    confirmed: int = 0               # members that passed the solver gate
    fallbacks: int = 0               # members re-checked in full instead
    cluster_time: float = 0.0        # seconds fingerprinting + confirming

    def as_dict(self) -> Dict[str, object]:
        return {"functions": self.functions, "clusters": self.clusters,
                "propagated": self.propagated, "confirmed": self.confirmed,
                "fallbacks": self.fallbacks,
                "cluster_time": round(self.cluster_time, 6)}


def aligned_clone(member: ClusterMember, representative: ClusterMember) -> Function:
    """Clone ``member`` renamed onto ``representative`` via the isomorphism.

    Equal canonical forms correspond position-by-position, so copying the
    representative's function/argument/block/instruction names onto the
    member's clone makes the two encodings share variable names — unchanged
    subexpressions then hash-cons to the *same* terms, and the name-keyed
    external-world correlation of the equivalence gate lines up.
    """
    from repro.cluster.fingerprint import fingerprint_function

    clone = clone_function(member.function)
    clone.name = representative.function.name
    clone_print = fingerprint_function(clone)     # same structure, same order
    for argument, rep_argument in zip(clone.arguments,
                                      representative.function.arguments):
        argument.name = rep_argument.name
    for block, rep_block in zip(clone_print.blocks,
                                representative.fingerprint.blocks):
        block.name = rep_block.name
    for inst, rep_inst in zip(clone_print.instructions,
                              representative.fingerprint.instructions):
        inst.name = rep_inst.name
    return clone


class ClusterConfirmer:
    """Per-cluster dual-encoder equivalence gate (repair-verifier machinery).

    The representative is encoded once; every member re-uses that encoding
    through the shared manager, so confirming N members costs N single
    encodings plus N (almost always trivially UNSAT) solver calls.
    """

    def __init__(self, representative: ClusterMember,
                 timeout: Optional[float], max_conflicts: Optional[int]) -> None:
        self.representative = representative
        self.timeout = timeout
        self.max_conflicts = max_conflicts
        self.manager = TermManager()
        self.encoder = FunctionEncoder(representative.function, self.manager)
        self.return_term = _return_term(self.encoder)
        self.well_defined = _well_defined_original(self.encoder)
        self._members = 0

    def confirm(self, member: ClusterMember) -> bool:
        """True iff ``member`` is solver-proven equivalent to the representative."""
        if self.return_term is None:
            return False                  # nothing to compare (void function)
        aligned = aligned_clone(member, self.representative)

        # Fast path: encode the aligned member in the representative's own
        # serial range.  Fresh variables are named ``{function}.{kind}.{n}``,
        # so a true clone draws exactly the representative's names, its
        # terms hash-cons onto the representative's, and the return
        # disequality folds to a constant contradiction — the solver call
        # degenerates to refuting ``false``.  The aliasing this induces is
        # precisely the name-keyed external-world correlation the slow path
        # asserts, applied at hash-cons time.
        encoder = FunctionEncoder(aligned, self.manager)
        member_return = _return_term(encoder)
        if member_return is self.return_term:
            solver = Solver(self.manager, timeout=self.timeout,
                            max_conflicts=self.max_conflicts)
            solver.add(self.manager.distinct(self.return_term, member_return))
            return solver.check() is CheckResult.UNSAT

        # Anything that did not collapse gets the full repair-gate proof
        # under a disjoint serial range (serial aliasing is only justified
        # when the encodings are identical, so re-draw the fresh variables).
        self._members += 1
        encoder = FunctionEncoder(aligned, self.manager,
                                  serial_start=self._members * 1_000_000)
        member_return = _return_term(encoder)
        if member_return is None or \
                member_return.width != self.return_term.width:
            return False

        terms: List[Term] = []
        terms.extend(_external_world_correlation(
            self.representative.function, aligned, self.encoder, encoder))
        terms.extend(self.well_defined)
        terms.append(self.manager.distinct(self.return_term, member_return))

        solver = Solver(self.manager, timeout=self.timeout,
                        max_conflicts=self.max_conflicts)
        for term in terms:
            solver.add(term)
        for definitions in (self.encoder.definitions_for(*terms),
                            encoder.definitions_for(*terms)):
            for definition in definitions:
                solver.add(definition)
        return solver.check() is CheckResult.UNSAT


def _map_diagnostic(diagnostic: Diagnostic, representative: ClusterMember,
                    member: ClusterMember) -> Optional[Diagnostic]:
    """Re-anchor a representative's diagnostic onto the member's own IR."""
    for position, inst in enumerate(representative.fingerprint.instructions):
        if inst.location == diagnostic.location and \
                print_instruction(inst) == diagnostic.fragment:
            target = member.fingerprint.instructions[position]
            return dataclasses.replace(
                diagnostic, function=member.function.name,
                location=target.location, fragment=print_instruction(target))
    return None


def _propagated_report(rep_report: FunctionReport,
                       representative: ClusterMember, member: ClusterMember,
                       elapsed: float) -> Optional[FunctionReport]:
    """The member's report, copied from the representative's; None if any
    diagnostic cannot be faithfully remapped (the caller then falls back)."""
    diagnostics: List[Diagnostic] = []
    for diagnostic in rep_report.diagnostics:
        mapped = _map_diagnostic(diagnostic, representative, member)
        if mapped is None:
            return None
        diagnostics.append(mapped)
    return FunctionReport(
        function=member.function.name, diagnostics=diagnostics,
        analysis_time=elapsed,
        suppressed_compiler_origin=rep_report.suppressed_compiler_origin,
        cluster_propagated=True)


def check_function_escalating(
    function: Function, config: CheckerConfig, cache=None,
    escalation_factors: Sequence[float] = (),
) -> Tuple[FunctionReport, int, bool]:
    """One function through the checker with the engine's escalation ladder."""
    from repro.engine.workunit import escalate_config

    checker = StackChecker(config, query_cache=cache)
    report = checker.check_function(function)
    attempts, escalated = 1, False
    for factor in escalation_factors:
        if report.timeouts <= 0:
            break
        escalated = True
        attempts += 1
        retry = StackChecker(escalate_config(config, factor), query_cache=cache)
        report = retry.check_function(function)
    return report, attempts, escalated


def propagate_clusters(
    clusters: Sequence[FunctionCluster],
    config: CheckerConfig,
    cache=None,
    escalation_factors: Sequence[float] = (),
    rep_results: Optional[Dict[int, Tuple[FunctionReport, int, bool]]] = None,
) -> Tuple[Dict[Tuple[int, int], FunctionReport],
           Dict[Tuple[int, int], Tuple[int, bool]],
           ClusterStats, List[Dict[str, object]]]:
    """Solve representatives, confirm members, and copy verdicts.

    ``rep_results`` maps cluster index to an already-computed representative
    ``(report, attempts, escalated)`` triple (the engine supplies these from
    its worker pool); missing entries are checked here, sequentially.
    Returns per-function reports keyed by ``(unit, index)``, per-function
    ``(attempts, escalated)`` bookkeeping, the run's :class:`ClusterStats`,
    and one JSON-ready record per cluster for the result sink.
    """
    reports: Dict[Tuple[int, int], FunctionReport] = {}
    bookkeeping: Dict[Tuple[int, int], Tuple[int, bool]] = {}
    stats = ClusterStats(clusters=len(clusters))
    records: List[Dict[str, object]] = []

    for cluster_index, cluster in enumerate(clusters):
        stats.functions += len(cluster.members)
        representative = cluster.representative
        precomputed = (rep_results or {}).get(cluster_index)
        if precomputed is None:
            rep_report, attempts, escalated = check_function_escalating(
                representative.function, config, cache, escalation_factors)
        else:
            rep_report, attempts, escalated = precomputed
        reports[representative.key] = rep_report
        bookkeeping[representative.key] = (attempts, escalated)

        propagated = fallbacks = 0
        confirmer: Optional[ClusterConfirmer] = None
        for member in cluster.members[1:]:
            started = time.monotonic()
            if confirmer is None:
                confirmer = ClusterConfirmer(representative,
                                             config.solver_timeout,
                                             config.max_conflicts)
            report: Optional[FunctionReport] = None
            with span("cluster.confirm", member=member.label) as confirm_span:
                confirmed = confirmer.confirm(member)
                confirm_span.set_arg("confirmed", confirmed)
            if confirmed:
                stats.confirmed += 1
                counter("cluster.confirmations")
                report = _propagated_report(rep_report, representative,
                                            member,
                                            time.monotonic() - started)
            stats.cluster_time += time.monotonic() - started
            if report is not None:
                stats.propagated += 1
                propagated += 1
                bookkeeping[member.key] = (1, False)
            else:
                fallbacks += 1
                stats.fallbacks += 1
                report, attempts, escalated = check_function_escalating(
                    member.function, config, cache, escalation_factors)
                bookkeeping[member.key] = (attempts, escalated)
            reports[member.key] = report

        records.append({
            "type": "cluster",
            "index": cluster_index,
            "fingerprint": cluster.digest[:16],
            "size": len(cluster.members),
            "representative": representative.label,
            "members": [member.label for member in cluster.members],
            "diagnostics": len(rep_report.diagnostics),
            "propagated": propagated,
            "fallbacks": fallbacks,
        })
    return reports, bookkeeping, stats, records


def check_module_clustered(
    module: Module, config: CheckerConfig, cache=None,
    escalation_factors: Sequence[float] = (),
) -> Tuple[BugReport, ClusterStats]:
    """Single-module clustering: the :class:`StackChecker` cluster path.

    Verifies and (per config) inlines like ``check_module``, clusters the
    module's own functions, and checks one representative per cluster.
    """
    verify_module(module)
    if config.inline:
        from repro.lower.inline import inline_module
        inline_module(module)
    base = dataclasses.replace(config, cluster=False, inline=False)

    started = time.monotonic()
    functions = module.defined_functions()
    clusters = cluster_functions(
        (0, index, module.name, function)
        for index, function in enumerate(functions))
    fingerprint_time = time.monotonic() - started

    reports, _bookkeeping, stats, _records = propagate_clusters(
        clusters, base, cache, escalation_factors)
    stats.cluster_time += fingerprint_time

    report = BugReport(module=module.name)
    for index in range(len(functions)):
        report.functions.append(reports[(0, index)])
    return report, stats
