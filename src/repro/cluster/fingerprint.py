"""Structural fingerprints: canonical, alpha-renamed serialization of IR.

A fingerprint is to a whole function what
:func:`repro.engine.cache.canonical_query_key` is to a solver query: a
content address that is invariant under everything the checker's verdict is
invariant under, and sensitive to everything that could change it.

Invariant under:

* function, value, and block *names* (values are numbered by canonical
  position: arguments by index, instructions in reverse-post-order),
* the order of the ``blocks`` list (blocks are serialized in reverse post
  order from the entry, so reordering independent blocks is invisible),
* operand order of commutative operations (``add``/``mul``/``and``/``or``/
  ``xor`` and ``icmp eq``/``ne`` operands are serialized in sorted token
  order),
* phi incoming order (incoming pairs are sorted by predecessor block index),
* source locations (diagnostics are remapped per member at propagation
  time, so locations need not — and must not — split clusters).

Sensitive to:

* instruction kinds, types, predicates, cast kinds, GEP element types and
  declared array sizes, alloca types — everything that feeds UB conditions,
* callee names and global names (external identities the encoder and the
  interpreter key on),
* constants,
* per-instruction :class:`~repro.ir.source.Origin` kinds, because the
  report stage suppresses compiler-originated diagnostics (§4.2/§4.5).

Equal canonical text means the two functions are structurally isomorphic up
to renaming and commutative operand order; the position-wise correspondence
of ``blocks``/``instructions`` between two equal fingerprints *is* that
isomorphism, which is what the propagation layer uses to align names for
the dual-encoder confirmation and to remap diagnostics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    BinOpKind,
    Branch,
    Call,
    Cast,
    CondBranch,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value

#: Commutative IR operations whose operand order must not split clusters
#: (mirrors ``COMMUTATIVE_OPS`` at the term level).
COMMUTATIVE_BINOPS = frozenset({
    BinOpKind.ADD, BinOpKind.MUL, BinOpKind.AND, BinOpKind.OR, BinOpKind.XOR,
})
COMMUTATIVE_PREDS = frozenset({ICmpPred.EQ, ICmpPred.NE})


@dataclass
class FunctionFingerprint:
    """A function's canonical form plus the orders that define it.

    ``blocks`` and ``instructions`` are the canonical (reverse-post-order)
    sequences the serialization numbered; two fingerprints with equal
    ``canonical`` text correspond position-by-position through these lists.
    """

    digest: str                                   # SHA-256 of ``canonical``
    canonical: str                                # full canonical text
    blocks: List[BasicBlock] = field(default_factory=list)
    instructions: List[Instruction] = field(default_factory=list)

    def matches(self, other: "FunctionFingerprint") -> bool:
        """Exact canonical-form equality (collision-proof, unlike digests)."""
        return self.canonical == other.canonical


def _rpo_blocks(function: Function) -> List[BasicBlock]:
    """Blocks in reverse post order from the entry; stragglers appended."""
    if not function.blocks:
        return []
    post: List[BasicBlock] = []
    seen = {id(function.entry)}
    stack = [(function.entry, iter(function.entry.successors()))]
    while stack:
        block, successors = stack[-1]
        advanced = False
        for successor in successors:
            if id(successor) not in seen:
                seen.add(id(successor))
                stack.append((successor, iter(successor.successors())))
                advanced = True
                break
        if not advanced:
            post.append(block)
            stack.pop()
    ordered = list(reversed(post))
    # Unreachable blocks cannot influence verdicts, but keep the form total.
    ordered.extend(b for b in function.blocks if id(b) not in seen)
    return ordered


def fingerprint_function(function: Function) -> FunctionFingerprint:
    """Compute the canonical structural fingerprint of ``function``."""
    blocks = _rpo_blocks(function)
    block_index: Dict[int, int] = {id(b): i for i, b in enumerate(blocks)}
    instructions: List[Instruction] = [
        inst for block in blocks for inst in block.instructions]
    inst_index: Dict[int, int] = {id(i): n for n, i in enumerate(instructions)}

    def token(value: Optional[Value]) -> str:
        if value is None:
            return "void"
        if isinstance(value, Constant):
            return f"c{value.value}:{value.type!r}"
        if isinstance(value, Argument):
            return f"p{value.index}"
        if isinstance(value, Instruction):
            index = inst_index.get(id(value))
            return f"i{index}" if index is not None else "i?"
        if isinstance(value, BasicBlock):
            index = block_index.get(id(value))
            return f"b{index}" if index is not None else "b?"
        if isinstance(value, GlobalVariable):
            return f"@{value.name}"
        if isinstance(value, UndefValue):
            return f"undef:{value.type!r}"
        return f"?{type(value).__name__}"

    def line(inst: Instruction) -> str:
        if isinstance(inst, BinaryOp):
            operands = [token(inst.lhs), token(inst.rhs)]
            if inst.kind in COMMUTATIVE_BINOPS:
                operands.sort()
            body = f"{inst.kind.value} {inst.type!r} " + ",".join(operands)
        elif isinstance(inst, ICmp):
            operands = [token(inst.lhs), token(inst.rhs)]
            if inst.pred in COMMUTATIVE_PREDS:
                operands.sort()
            body = (f"icmp {inst.pred.value} {inst.lhs.type!r} "
                    + ",".join(operands))
        elif isinstance(inst, Select):
            body = (f"select {inst.type!r} {token(inst.condition)},"
                    f"{token(inst.on_true)},{token(inst.on_false)}")
        elif isinstance(inst, Cast):
            body = f"{inst.kind.value} {token(inst.value)} to {inst.type!r}"
        elif isinstance(inst, Alloca):
            body = f"alloca {inst.allocated_type!r}"
        elif isinstance(inst, Load):
            body = f"load {inst.type!r} {token(inst.pointer)}"
        elif isinstance(inst, Store):
            body = f"store {token(inst.value)},{token(inst.pointer)}"
        elif isinstance(inst, GetElementPtr):
            body = (f"gep {inst.element_type!r}"
                    f"[{inst.array_size if inst.array_size is not None else '?'}]"
                    f" {token(inst.pointer)},{token(inst.index)}")
        elif isinstance(inst, Call):
            args = ",".join(token(a) for a in inst.operands)
            body = f"call {inst.type!r} @{inst.callee}({args})"
        elif isinstance(inst, Phi):
            incoming = sorted(
                (block_index.get(id(pred), -1), token(value))
                for value, pred in inst.incoming)
            pairs = ",".join(f"[{i},{t}]" for i, t in incoming)
            body = f"phi {inst.type!r} {pairs}"
        elif isinstance(inst, Branch):
            body = f"br {token(inst.target)}"
        elif isinstance(inst, CondBranch):
            body = (f"condbr {token(inst.condition)},"
                    f"{token(inst.if_true)},{token(inst.if_false)}")
        elif isinstance(inst, Return):
            body = f"ret {token(inst.value)}"
        elif isinstance(inst, Unreachable):
            body = "unreachable"
        else:
            operands = ",".join(token(op) for op in inst.operands)
            body = f"{inst.opcode()} {inst.type!r} {operands}"
        return f"{body} !{inst.origin.kind.value}"

    lines = [f"function {function.ftype!r}"]
    for index, block in enumerate(blocks):
        lines.append(f"b{index}:")
        lines.extend("  " + line(inst) for inst in block.instructions)
    canonical = "\n".join(lines)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return FunctionFingerprint(digest=digest, canonical=canonical,
                               blocks=blocks, instructions=instructions)
