"""Synthetic archive corpora for the clustering benchmark and tests.

The Debian study's workload shape — the same handful of patterns
instantiated thousands of times under different identifiers — is modelled
by cycling the snippet templates and re-rendering each one with a fresh
name suffix.  Every instance of a template is structurally isomorphic to
its siblings (identical IR up to names), so a corpus of ``N × templates``
units collapses to ``templates`` clusters, which is exactly the regime the
propagation layer is built for.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS, Snippet


def synthetic_cluster_corpus(
    instances: int,
    seed: int = 0,
    snippets: Optional[Sequence[Snippet]] = None,
) -> List[Tuple[str, str]]:
    """``instances`` renderings per template as ``(unit_name, source)`` pairs.

    Templates cycle in a fixed order (unstable snippets first, then stable
    ones), and the ``seed`` only varies the rendered identifiers — corpora
    with different seeds cluster identically, which the determinism test
    leans on.  Unit names are ``{snippet}__s{seed}_{n}``.
    """
    templates = list(snippets) if snippets is not None \
        else list(SNIPPETS) + list(STABLE_SNIPPETS)
    corpus: List[Tuple[str, str]] = []
    for n in range(instances):
        snippet = templates[n % len(templates)]
        suffix = f"s{seed}_{n}"
        corpus.append((f"{snippet.name}__{suffix}", snippet.render(suffix)))
    return corpus
