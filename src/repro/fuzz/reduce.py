"""Delta-debugging reducer: from fuzzed finding to minimal reproducer.

Any program the campaign flags as unstable (and any anomaly — a miscompile
or an unsound patch — worth keeping) is worth keeping *small*.  This module
implements the classic ``ddmin`` algorithm over two granularities:

* **MiniC sources** — candidates drop subsets of source lines and are
  recompiled from scratch (:func:`reduce_source`),
* **IR modules** — candidates drop subsets of non-terminator instructions
  from a deterministic rebuild of the module (:func:`reduce_module`).

A candidate is *interesting* only when it still compiles, passes the IR
verifier (:mod:`repro.ir.verifier`) cleanly, and the checker still reports
at least one diagnostic whose UB kinds intersect the original finding's —
so every accepted intermediate, and therefore the final reproducer, still
reproduces the verdict.  The checker is re-run at every shrink step; a
shared :class:`~repro.engine.cache.SolverQueryCache` makes those re-runs
cheap because shrunken candidates share most of their solver queries.

Reduction runs ddmin to a fixpoint, which makes it idempotent: reducing an
already-reduced case performs one pass that removes nothing and returns the
input unchanged (the property ``tests/test_fuzz.py`` pins down).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.core.checker import CheckerConfig, StackChecker
from repro.core.ubconditions import UBKind
from repro.ir.function import Module
from repro.ir.instructions import Phi
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module


@dataclass
class ReducedCase:
    """A minimized reproducer plus the evidence trail that produced it."""

    source: str                      # minimized MiniC source (or printed IR)
    mode: str                        # "minic" | "ir"
    kinds: Tuple[UBKind, ...]        # UB kinds the reproducer still triggers
    elements_before: int             # lines (minic) / instructions (ir)
    elements_after: int
    checker_runs: int = 0
    #: Every accepted intermediate candidate, in order; tests assert each
    #: one still parses and verifies cleanly.
    trajectory: List[str] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return self.elements_before - self.elements_after


def _reduction_config(base: Optional[CheckerConfig] = None) -> CheckerConfig:
    """The cheap, deterministic checker configuration reduction runs under.

    Minimal UB sets, classification, witnesses, and repair contribute
    nothing to the interestingness predicate, so they are switched off; a
    conflict budget with no wall-clock timeout keeps every candidate's
    verdict reproducible.
    """
    import dataclasses

    base = base if base is not None else CheckerConfig()
    return dataclasses.replace(
        base, solver_timeout=None, minimize_ub_sets=False, classify=False,
        validate_witnesses=False, repair=False)


def ddmin(elements: Sequence[int],
          interesting: Callable[[Sequence[int]], bool]) -> List[int]:
    """Zeller/Hildebrandt ddmin over index lists (complement reduction).

    ``elements`` must be interesting as given; the result is a subsequence
    that is 1-minimal with respect to chunk removal at every granularity
    down to single elements.
    """
    current = list(elements)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if candidate and interesting(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk <= 1:
                break
            granularity = min(len(current), granularity * 2)
    # Polish: aligned chunks cannot remove pairs/triples that straddle a
    # chunk boundary (e.g. the `{`/`}` shell of an emptied function), so
    # slide small windows over every offset until nothing more comes out.
    window = 2
    while window <= 3 and len(current) > window:
        for start in range(0, len(current) - window + 1):
            candidate = current[:start] + current[start + window:]
            if candidate and interesting(candidate):
                current = candidate
                window = 2
                break
        else:
            window += 1
    return current


# ---------------------------------------------------------------------------
# MiniC source reduction
# ---------------------------------------------------------------------------


def _check_kinds(checker: StackChecker, module: Module) -> Set[UBKind]:
    report = checker.check_module(module)
    return {kind for bug in report.bugs for kind in bug.ub_kinds}


def reduce_source(source: str, *, filename: str = "<fuzz>",
                  kinds: Optional[Sequence[UBKind]] = None,
                  config: Optional[CheckerConfig] = None,
                  cache: Optional["SolverQueryCache"] = None,
                  ) -> Optional[ReducedCase]:
    """Delta-debug a MiniC translation unit down to a minimal reproducer.

    Returns ``None`` when the original does not reproduce (no diagnostic,
    or none matching ``kinds``).  Candidates that fail to compile, fail the
    IR verifier, or lose the matching diagnostic are rejected; the checker
    re-runs for every candidate that gets this far.
    """
    from repro.api import compile_source

    checker = StackChecker(_reduction_config(config), query_cache=cache)
    case = ReducedCase(source=source, mode="minic", kinds=(),
                       elements_before=0, elements_after=0)

    def observed_kinds(text: str) -> Optional[Set[UBKind]]:
        try:
            module = compile_source(text, filename=filename)
            case.checker_runs += 1
            return _check_kinds(checker, module)
        except Exception:
            return None

    original = observed_kinds(source)
    if not original:
        return None
    target = set(kinds) if kinds else set(original)
    if not (original & target):
        return None

    lines = source.split("\n")
    case.elements_before = len(lines)

    def interesting(kept: Sequence[int]) -> bool:
        candidate = "\n".join(lines[i] for i in kept)
        found = observed_kinds(candidate)
        if found is None or not (found & target):
            return False
        case.trajectory.append(candidate)
        return True

    indices = list(range(len(lines)))
    while True:                       # fixpoint => idempotent reduction
        shrunk = ddmin(indices, interesting)
        if len(shrunk) == len(indices):
            break
        indices = shrunk

    case.source = "\n".join(lines[i] for i in indices)
    case.elements_after = len(indices)
    case.kinds = tuple(sorted(original & target, key=lambda k: k.value))
    return case


# ---------------------------------------------------------------------------
# IR module reduction
# ---------------------------------------------------------------------------


def reduce_module(build: Callable[[], Module], *,
                  kinds: Optional[Sequence[UBKind]] = None,
                  config: Optional[CheckerConfig] = None,
                  cache: Optional["SolverQueryCache"] = None,
                  ) -> Optional[ReducedCase]:
    """Delta-debug an IR module by dropping instructions.

    ``build`` returns a fresh module each call (the checker mutates what it
    analyzes).  Candidates clone the module, delete a subset of
    non-terminator, non-phi instructions, and must stay verifier-clean —
    deleting an instruction that still has users fails verification and is
    rejected, which is what steers ddmin toward genuinely dead code.
    """
    checker = StackChecker(_reduction_config(config), query_cache=cache)
    baseline = build()
    positions: List[Tuple[int, int, int]] = []       # (fn, block, instruction)
    for f_index, function in enumerate(baseline.defined_functions()):
        for b_index, block in enumerate(function.blocks):
            for i_index, inst in enumerate(block.instructions):
                if inst.is_terminator() or isinstance(inst, Phi):
                    continue
                positions.append((f_index, b_index, i_index))

    case = ReducedCase(source="", mode="ir", kinds=(),
                       elements_before=len(positions), elements_after=0)

    def candidate_module(kept: Sequence[int]) -> Module:
        keep = {positions[i] for i in kept}
        module = build()
        for f_index, function in enumerate(module.defined_functions()):
            for b_index, block in enumerate(function.blocks):
                block.instructions = [
                    inst for i_index, inst in enumerate(block.instructions)
                    if inst.is_terminator() or isinstance(inst, Phi)
                    or (f_index, b_index, i_index) in keep]
        return module

    def observed_kinds(module: Module) -> Optional[Set[UBKind]]:
        if verify_module(module, raise_on_error=False):
            return None
        try:
            case.checker_runs += 1
            return _check_kinds(checker, module)
        except Exception:
            return None

    original = observed_kinds(candidate_module(range(len(positions))))
    if not original:
        return None
    target = set(kinds) if kinds else set(original)
    if not (original & target):
        return None

    def interesting(kept: Sequence[int]) -> bool:
        module = candidate_module(kept)
        found = observed_kinds(module)
        if found is None or not (found & target):
            return False
        case.trajectory.append(print_module(module))
        return True

    indices = list(range(len(positions)))
    while True:
        shrunk = ddmin(indices, interesting)
        if len(shrunk) == len(indices):
            break
        indices = shrunk

    case.source = print_module(candidate_module(indices))
    case.elements_after = len(indices)
    case.kinds = tuple(sorted(original & target, key=lambda k: k.value))
    return case


# ---------------------------------------------------------------------------
# Corpus registration
# ---------------------------------------------------------------------------


def case_to_snippet(case: ReducedCase, *, scenario: str, tag: str,
                    name: str, description: str = "") -> "Snippet":
    """Turn a reduced MiniC case into a snippet-corpus-compatible template.

    The program's unique identifier ``tag`` is replaced by the corpus
    ``{S}`` placeholder, so the minimized reproducer can be instantiated
    many times over like any hand-written snippet.
    """
    from repro.corpus.snippets import Snippet

    if case.mode != "minic":
        raise ValueError("only MiniC cases can join the snippet corpus")
    template = case.source.replace(tag, "{S}")
    return Snippet(
        name=name,
        source_template="\n" + template.strip("\n") + "\n",
        ub_kinds=case.kinds,
        system="fuzzer",
        description=description or
        f"reducer-minimized {scenario} reproducer "
        f"({case.elements_before}->{case.elements_after} lines)",
    )
