"""Seeded generation of MiniC translation units and raw IR functions.

The corpus snippets (:mod:`repro.corpus.snippets`) are hand-written; this
module is the scenario factory that produces programs nobody wrote by hand.
Every generator draws exclusively from one :class:`random.Random` instance,
so a campaign seed determines every program bit for bit — the property the
fuzz benchmarks assert end to end (docs/FUZZ.md).

Scenario classes are keyed to the paper's UB taxonomy (Figure 3): signed
overflow on arithmetic chains, pointer/array indexing with the guards in
varying orders, oversized shifts, struct field access before/after the null
check, division ordering, and loops whose bounds come from macro expansion
(including a variant whose *guard* is macro-expanded and must therefore be
suppressed by the §4.2 compiler-origin filter).  Each scenario emits both
unstable and stable-by-construction variants, so a campaign measures false
positives as well as detection.

Templates carry a ``{S}`` placeholder in every global identifier, exactly
like :class:`~repro.corpus.snippets.Snippet`; the campaign renders them
with a per-program tag so one translation unit can never collide with
another, and the reducer strips the tag again to register minimized cases
back into the snippet corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.ubconditions import UBKind
from repro.ir.builder import IRBuilder
from repro.ir.function import Function, Module
from repro.ir.instructions import ICmpPred
from repro.ir.types import FunctionType, IntType
from repro.ir.values import Constant


@dataclass
class GeneratedProgram:
    """One generated translation unit (MiniC source or a raw IR spec)."""

    index: int
    name: str                        # engine unit name, e.g. "fuzz-00017-..."
    scenario: str
    mode: str                        # "minic" | "ir"
    tag: str                         # identifier suffix rendered into names
    expected_unstable: bool
    expected_kinds: Tuple[UBKind, ...] = ()
    source: Optional[str] = None     # rendered MiniC (mode == "minic")
    ir_spec: Optional[Dict[str, object]] = None   # rebuild recipe (mode == "ir")

    @property
    def template(self) -> str:
        """The de-tagged source — the snippet-compatible ``{S}`` form."""
        if self.source is None:
            return ""
        return self.source.replace(self.tag, "{S}")

    def build_module(self) -> Module:
        """(Re)build the IR module of an IR-mode program, fresh each call.

        The checker mutates the module it analyzes (inlining), so every
        consumer — checker, differential runner, reducer — builds its own
        copy from the deterministic spec.
        """
        if self.ir_spec is None:
            raise ValueError(f"{self.name} is not an IR-mode program")
        return build_ir_module(self.ir_spec)


# ---------------------------------------------------------------------------
# MiniC scenario generators
# ---------------------------------------------------------------------------
#
# Each generator returns (template, expected_unstable, expected_kinds).  The
# parameter pools are deliberately small: distinct programs then collapse to
# a manageable number of de-tagged shapes, which is what keeps campaign-wide
# reduction memoisable.

_ADD_CONSTS = (1, 7, 16, 100, 1024)
_ARRAY_SIZES = (8, 16, 32)
_SHIFT_WIDTH = 32
_CAPS = (8, 16, 64)


def _gen_signed_overflow_chain(rng: random.Random) -> Tuple[str, bool, Tuple[UBKind, ...]]:
    length = rng.randint(1, 3)
    consts = [rng.choice(_ADD_CONSTS) for _ in range(length)]
    chain = ["    int t0 = x + %d;" % consts[0]]
    for i, c in enumerate(consts[1:], start=1):
        chain.append("    int t%d = t%d + %d;" % (i, i - 1, c))
    last = "t%d" % (length - 1)
    anchor = "x" if rng.random() < 0.7 else "t0"
    stable = rng.random() < 0.3
    if stable and anchor == "x":
        limit = 2147483647 - sum(consts)
        body = ["    if (x > %d)" % limit,
                "        return -1;",
                "    if (x < 0)",
                "        return -1;"] + chain + [
                "    if (%s < x)" % last,
                "        return -1;",
                "    return %s;" % last]
        expected = False
    else:
        body = chain + [
            "    if (%s < %s)" % (last, anchor),
            "        return -1;",
            "    return %s;" % last]
        # A length-1 chain anchored at t0 degenerates to `t0 < t0`, which
        # folds to false at term construction (no UB assumption needed), so
        # the checker rightly stays silent on it.
        expected = anchor != last
    source = "int fuzz_soc_{S}(int x, int y) {\n" + "\n".join(body) + "\n}\n"
    return source, expected, (UBKind.SIGNED_OVERFLOW,)


def _gen_pointer_guard_order(rng: random.Random) -> Tuple[str, bool, Tuple[UBKind, ...]]:
    stable = rng.random() < 0.3
    if stable:
        source = (
            "int fuzz_ptr_{S}(char *buf, char *end, long n) {\n"
            "    if (n < 0 || n >= end - buf)\n"
            "        return -1;\n"
            "    return 0;\n"
            "}\n")
        return source, False, (UBKind.POINTER_OVERFLOW,)
    wrap = "    if (buf + len < buf)\n        return -1;"
    bound = "    if (buf + len >= end)\n        return -1;"
    guards = [wrap, bound] if rng.random() < 0.5 else [bound, wrap]
    ret = rng.choice(("0", "1"))
    source = ("int fuzz_ptr_{S}(char *buf, char *end, unsigned int len) {\n"
              + "\n".join(guards)
              + "\n    return %s;\n}\n" % ret)
    return source, True, (UBKind.POINTER_OVERFLOW,)


def _gen_array_index_guard(rng: random.Random) -> Tuple[str, bool, Tuple[UBKind, ...]]:
    size = rng.choice(_ARRAY_SIZES)
    store_index = rng.randrange(size)
    store_value = rng.choice(_ADD_CONSTS)
    use = "    int v = tab[i];"
    guard = "    if (i < 0 || i >= %d)\n        return -1;" % size
    guard_first = rng.random() < 0.3
    lines = ["    int tab[%d];" % size,
             "    tab[%d] = %d;" % (store_index, store_value)]
    if guard_first:
        lines += [guard, use]
    else:
        lines += [use, guard]
    lines.append("    return v;")
    source = ("int fuzz_idx_{S}(int i) {\n" + "\n".join(lines) + "\n}\n")
    return source, not guard_first, (UBKind.BUFFER_OVERFLOW,)


def _gen_oversized_shift(rng: random.Random) -> Tuple[str, bool, Tuple[UBKind, ...]]:
    base = rng.choice((1, 3))
    ext4_style = rng.random() < 0.3
    if ext4_style:
        source = (
            "int fuzz_shift_{S}(int bits) {\n"
            "    if (!(%d << bits))\n"
            "        return -22;\n"
            "    return %d << bits;\n"
            "}\n" % (base, base))
        return source, True, (UBKind.OVERSIZED_SHIFT,)
    guard_first = rng.random() < 0.3
    compute = "    unsigned int mask = %du << bits;" % base
    guard = "    if (bits >= %du)\n        return 0u;" % _SHIFT_WIDTH
    body = [guard, compute] if guard_first else [compute, guard]
    body.append("    return mask;")
    source = ("unsigned int fuzz_shift_{S}(unsigned int bits) {\n"
              + "\n".join(body) + "\n}\n")
    return source, not guard_first, (UBKind.OVERSIZED_SHIFT,)


def _gen_struct_field_access(rng: random.Random) -> Tuple[str, bool, Tuple[UBKind, ...]]:
    fields = rng.randint(2, 4)
    target = rng.randrange(fields)
    members = " ".join("int f%d;" % i for i in range(fields))
    guard = rng.choice(("!p", "p == 0"))
    guard_first = rng.random() < 0.3
    deref = "    int v = p->f%d;" % target
    check = "    if (%s)\n        return -1;" % guard
    body = [check, deref] if guard_first else [deref, check]
    source = (
        "struct fuzz_node_{S} { %s };\n"
        "int fuzz_sf_{S}(struct fuzz_node_{S} *p) {\n" % members
        + "\n".join(body)
        + "\n    return v;\n}\n")
    return source, not guard_first, (UBKind.NULL_DEREF,)


def _gen_macro_loop_bounds(rng: random.Random) -> Tuple[str, bool, Tuple[UBKind, ...]]:
    cap = rng.choice(_CAPS)
    variant = rng.random()
    if variant < 0.3:
        # Stable: just the macro-bounded loop, nothing to flag.
        source = (
            "#define FUZZ_CAP_{S} %d\n"
            "int fuzz_loop_{S}(int n) {\n"
            "    int total = 0;\n"
            "    for (int i = 0; i < FUZZ_CAP_{S}; i = i + 1)\n"
            "        total = total + 1;\n"
            "    return total;\n"
            "}\n" % cap)
        return source, False, (UBKind.SIGNED_OVERFLOW,)
    if variant < 0.55:
        # The guard itself is macro-expanded: the idiom is unstable, but
        # every token is compiler-generated, so §4.2 suppresses the report.
        source = (
            "#define FUZZ_GUARD_{S}(v) if ((v) + %d < (v)) return -1;\n"
            "int fuzz_mloop_{S}(int n) {\n"
            "    FUZZ_GUARD_{S}(n)\n"
            "    return n + %d;\n"
            "}\n" % (cap, cap))
        return source, False, (UBKind.SIGNED_OVERFLOW,)
    # Unstable: user-written overflow check against the macro-expanded cap,
    # ahead of the macro-bounded loop that consumes it.
    source = (
        "#define FUZZ_CAP_{S} %d\n"
        "int fuzz_loop_{S}(int n) {\n"
        "    int total = 0;\n"
        "    if (n + FUZZ_CAP_{S} < n)\n"
        "        return -1;\n"
        "    for (int i = 0; i < FUZZ_CAP_{S}; i = i + 1)\n"
        "        total = total + 1;\n"
        "    return total + n;\n"
        "}\n" % cap)
    return source, True, (UBKind.SIGNED_OVERFLOW,)


def _gen_division_order(rng: random.Random) -> Tuple[str, bool, Tuple[UBKind, ...]]:
    op = rng.choice(("/", "%"))
    guard_first = rng.random() < 0.3
    compute = "    int mean = total %s count;" % op
    guard = "    if (count == 0)\n        return 0;"
    body = [guard, compute] if guard_first else [compute, guard]
    source = ("int fuzz_div_{S}(int total, int count) {\n"
              + "\n".join(body)
              + "\n    return mean;\n}\n")
    return source, not guard_first, (UBKind.DIV_BY_ZERO,)


# ---------------------------------------------------------------------------
# IR scenario generators (mode "ir": modules built via ir.builder)
# ---------------------------------------------------------------------------

_IR_WIDTHS = (16, 32, 64)


def _spec_ir_overflow_chain(rng: random.Random) -> Tuple[Dict[str, object], bool,
                                                         Tuple[UBKind, ...]]:
    width = rng.choice(_IR_WIDTHS)
    length = rng.randint(1, 3)
    consts = [rng.choice(_ADD_CONSTS) for _ in range(length)]
    guard_first = rng.random() < 0.3
    spec = {"scenario": "ir_overflow_chain", "width": width,
            "consts": consts, "guard_first": guard_first}
    return spec, not guard_first, (UBKind.SIGNED_OVERFLOW,)


def _spec_ir_oversized_shift(rng: random.Random) -> Tuple[Dict[str, object], bool,
                                                          Tuple[UBKind, ...]]:
    width = rng.choice(_IR_WIDTHS)
    base = rng.choice((1, 3))
    guard_first = rng.random() < 0.3
    spec = {"scenario": "ir_oversized_shift", "width": width,
            "base": base, "guard_first": guard_first}
    return spec, not guard_first, (UBKind.OVERSIZED_SHIFT,)


def build_ir_module(spec: Dict[str, object]) -> Module:
    """Build the IR module described by a generator spec (deterministic)."""
    scenario = spec["scenario"]
    tag = spec.get("tag", "s0")
    if scenario == "ir_overflow_chain":
        return _build_ir_overflow_chain(spec, str(tag))
    if scenario == "ir_oversized_shift":
        return _build_ir_oversized_shift(spec, str(tag))
    raise ValueError(f"unknown IR scenario {scenario!r}")


def _build_ir_overflow_chain(spec: Dict[str, object], tag: str) -> Module:
    width = int(spec["width"])
    consts = list(spec["consts"])                      # type: ignore[arg-type]
    guard_first = bool(spec["guard_first"])
    ity = IntType(width, signed=True)
    name = f"fuzz_ir_soc_{tag}"
    module = Module(name)
    fn = Function(name, FunctionType(ity, (ity,)), ["x"])
    module.add_function(fn)
    b = IRBuilder(fn)
    b.set_location(f"{name}.c", 2)
    x = fn.arguments[0]
    if guard_first:
        # Stable shape: branch on the argument range before any arithmetic.
        limit = (1 << (width - 1)) - 1 - sum(consts)
        over = b.icmp(ICmpPred.SGT, x, Constant(ity, limit & ((1 << width) - 1)))
        bail, cont = b.new_block("bail"), b.new_block("cont")
        b.cond_br(over, bail, cont)
        b.set_block(bail)
        b.ret(Constant(ity, (1 << width) - 1))
        b.set_block(cont)
        value = x
        for c in consts:
            value = b.add(value, Constant(ity, c))
        b.ret(value)
        return module
    value = x
    for c in consts:
        value = b.add(value, Constant(ity, c))
    wrapped = b.icmp(ICmpPred.SLT, value, x)
    bail, cont = b.new_block("bail"), b.new_block("cont")
    b.cond_br(wrapped, bail, cont)
    b.set_block(bail)
    b.ret(Constant(ity, (1 << width) - 1))             # -1 as a bit pattern
    b.set_block(cont)
    b.ret(value)
    return module


def _build_ir_oversized_shift(spec: Dict[str, object], tag: str) -> Module:
    width = int(spec["width"])
    base = int(spec["base"])
    guard_first = bool(spec["guard_first"])
    uty = IntType(width, signed=False)
    name = f"fuzz_ir_shift_{tag}"
    module = Module(name)
    fn = Function(name, FunctionType(uty, (uty,)), ["bits"])
    module.add_function(fn)
    b = IRBuilder(fn)
    b.set_location(f"{name}.c", 2)
    bits = fn.arguments[0]
    if guard_first:
        guard = b.icmp(ICmpPred.UGE, bits, Constant(uty, width))
        oob, ok = b.new_block("oob"), b.new_block("ok")
        b.cond_br(guard, oob, ok)
        b.set_block(oob)
        b.ret(Constant(uty, 0))
        b.set_block(ok)
        b.ret(b.shl(Constant(uty, base), bits))
        return module
    mask = b.shl(Constant(uty, base), bits)
    guard = b.icmp(ICmpPred.UGE, bits, Constant(uty, width))
    oob, ok = b.new_block("oob"), b.new_block("ok")
    b.cond_br(guard, oob, ok)
    b.set_block(oob)
    b.ret(Constant(uty, 0))
    b.set_block(ok)
    b.ret(mask)
    return module


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------

_MINIC_SCENARIOS: Dict[str, Callable[[random.Random],
                                     Tuple[str, bool, Tuple[UBKind, ...]]]] = {
    "signed_overflow_chain": _gen_signed_overflow_chain,
    "pointer_guard_order": _gen_pointer_guard_order,
    "array_index_guard": _gen_array_index_guard,
    "oversized_shift": _gen_oversized_shift,
    "struct_field_access": _gen_struct_field_access,
    "macro_loop_bounds": _gen_macro_loop_bounds,
    "division_order": _gen_division_order,
}

_IR_SCENARIOS: Dict[str, Callable[[random.Random],
                                  Tuple[Dict[str, object], bool,
                                        Tuple[UBKind, ...]]]] = {
    "ir_overflow_chain": _spec_ir_overflow_chain,
    "ir_oversized_shift": _spec_ir_oversized_shift,
}

#: All scenario class names, MiniC first — the campaign schedules over these.
ALL_SCENARIOS: Tuple[str, ...] = tuple(_MINIC_SCENARIOS) + tuple(_IR_SCENARIOS)


class ProgramGenerator:
    """Draws programs from the scenario classes, one rng for everything."""

    def __init__(self, rng: random.Random,
                 scenarios: Optional[Sequence[str]] = None) -> None:
        self.rng = rng
        self.scenarios: Tuple[str, ...] = tuple(scenarios) if scenarios \
            else ALL_SCENARIOS
        unknown = [s for s in self.scenarios if s not in _MINIC_SCENARIOS
                   and s not in _IR_SCENARIOS]
        if unknown:
            raise ValueError(f"unknown scenarios: {unknown}")

    def generate(self, index: int, scenario: Optional[str] = None) -> GeneratedProgram:
        """Generate program number ``index`` (optionally of a fixed scenario)."""
        if scenario is None:
            scenario = self.rng.choice(self.scenarios)
        tag = f"s{index}"
        name = f"fuzz-{index:05d}-{scenario}"
        if scenario in _MINIC_SCENARIOS:
            template, expected, kinds = _MINIC_SCENARIOS[scenario](self.rng)
            return GeneratedProgram(
                index=index, name=name, scenario=scenario, mode="minic",
                tag=tag, expected_unstable=expected, expected_kinds=kinds,
                source=template.replace("{S}", tag))
        spec, expected, kinds = _IR_SCENARIOS[scenario](self.rng)
        spec["tag"] = tag
        return GeneratedProgram(
            index=index, name=name, scenario=scenario, mode="ir", tag=tag,
            expected_unstable=expected, expected_kinds=kinds, ir_spec=spec)
