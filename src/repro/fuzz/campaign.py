"""Checker-guided fuzzing campaigns: generate, check, diff, reduce, stream.

A campaign is the scenario factory of the reproduction: it draws programs
from :mod:`repro.fuzz.generator`, fans them through the existing
:class:`~repro.engine.engine.CheckEngine` (frontend → lowering →
StackChecker → stage-5 witness replay → optional stage-6 repair), runs the
seeded differential optimizer over every generated module, delta-debugs
every unstable finding down to a minimal reproducer, and streams one JSONL
record per program plus a run summary.

Three properties are load-bearing and tested by ``benchmarks/bench_fuzz.py``:

* **Determinism per seed.**  One ``random.Random(seed)`` instance drives
  everything — scenario scheduling, program parameters, the stage-5 witness
  replay seed, and the differential runner's input vectors.  Solver budgets
  are conflict-counted (no wall-clock timeout) and the JSONL records carry
  no timing, so two runs with one seed are byte-identical — regardless of
  worker count, because the engine returns results in submission order.
* **Zero unexplained miscompiles.**  Every divergence the differential
  runner observes on a UB-free execution is a miscompile and is counted
  (and, like any unstable finding, reduced); the built-in profiles must
  produce none.
* **Reproducers for every finding.**  With ``reduce=True`` every flagged
  program gets a ddmin-minimized case that still reproduces the verdict;
  minimization is memoised on the de-tagged program shape, and MiniC cases
  can be registered into the snippet corpus
  (:func:`repro.corpus.snippets.register_snippet`).

Scheduling is verdict-coverage-guided: after every batch, scenario classes
that have not yet produced all of {flagged, clean, confirmed-witness} get
their selection weight boosted, so the campaign spends its budget on the
templates whose behaviour it has seen least of.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.checker import CheckerConfig
from repro.engine.engine import CheckEngine, EngineConfig, RunStats
from repro.engine.sink import JsonlResultSink
from repro.engine.workunit import UnitResult, WorkUnit
from repro.fuzz.generator import (
    ALL_SCENARIOS,
    GeneratedProgram,
    ProgramGenerator,
)
from repro.fuzz.reduce import ReducedCase, case_to_snippet, reduce_module, \
    reduce_source

#: The verdict outcomes the scheduler wants to observe per scenario class.
_COVERAGE_GOALS = ("flagged", "clean", "confirmed")


@dataclass
class FuzzConfig:
    """Configuration of one fuzzing campaign (see docs/FUZZ.md)."""

    #: Campaign seed: determines every generated program and every replay.
    seed: int = 0
    #: Total number of programs to generate and check.
    budget: int = 100
    #: Programs per engine fan-out (one check_corpus call per batch).
    batch_size: int = 25
    #: Engine worker processes (0/1 = sequential, same results either way).
    workers: int = 0
    #: Delta-debug every unstable finding to a minimal reproducer.
    reduce: bool = False
    #: Register reduced MiniC cases into the snippet corpus.
    register_snippets: bool = False
    #: Deterministic JSONL output path (None = keep records in memory only).
    out: Optional[str] = None
    #: Scenario classes to draw from (default: all of them).
    scenarios: Tuple[str, ...] = ALL_SCENARIOS
    #: Stage-5 witness replay for every diagnostic.
    validate_witnesses: bool = True
    #: Seeded differential optimizer run per generated program.
    differential: bool = True
    #: Argument vectors per function in the differential runner.
    diff_inputs: int = 4
    #: Stage-6 auto-repair for every diagnostic (off by default: slow).
    repair: bool = False
    #: Per-query CDCL conflict budget (no wall-clock timeout: determinism).
    max_conflicts: int = 50_000
    #: Chrome trace-event JSON path; enables span recording across every
    #: engine batch (docs/OBSERVABILITY.md).  The JSONL stream stays
    #: byte-identical — spans never enter campaign records.
    trace: Optional[str] = None

    def checker_config(self, witness_seed: int) -> CheckerConfig:
        """The deterministic checker configuration campaign units run under."""
        return CheckerConfig(
            solver_timeout=None,
            max_conflicts=self.max_conflicts,
            validate_witnesses=self.validate_witnesses,
            witness_seed=witness_seed,
            repair=self.repair,
            trace=self.trace is not None,
        )


@dataclass
class FuzzStats:
    """Aggregate counters of one campaign (the deterministic summary)."""

    seed: int = 0
    programs: int = 0
    minic_programs: int = 0
    ir_programs: int = 0
    failed_units: int = 0                 # compile/verify/crash — must be 0
    flagged_programs: int = 0
    diagnostics: int = 0
    expected_unstable: int = 0
    expectation_mismatches: int = 0       # expected != observed verdict
    witnesses_confirmed: int = 0
    witnesses_unconfirmed: int = 0
    witnesses_inconclusive: int = 0
    diff_executions: int = 0
    diff_agreements: int = 0
    diff_ub_justified: int = 0
    miscompiles: int = 0                  # unexplained divergences — must be 0
    diff_inconclusive: int = 0
    reduced_cases: int = 0                # distinct minimized reproducers
    reduction_checker_runs: int = 0
    by_scenario: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Aggregated engine counters across every batch (RunStats.merge).
    engine: RunStats = field(default_factory=RunStats)
    #: Campaign wall-clock; deliberately absent from the JSONL summary.
    wall_clock: float = 0.0

    @property
    def throughput(self) -> float:
        """Programs checked per second of campaign wall-clock."""
        if self.wall_clock <= 0.0:
            return 0.0
        return self.programs / self.wall_clock

    def scenario_row(self, scenario: str) -> Dict[str, int]:
        return self.by_scenario.setdefault(scenario, {
            "programs": 0, "expected_unstable": 0, "flagged": 0,
            "diagnostics": 0, "confirmed": 0, "miscompiles": 0,
            "mismatches": 0, "reduced": 0,
        })

    def as_dict(self) -> Dict[str, object]:
        """Deterministic summary (no timing, no scheduling-order counters)."""
        return {
            "seed": self.seed,
            "programs": self.programs,
            "minic_programs": self.minic_programs,
            "ir_programs": self.ir_programs,
            "failed_units": self.failed_units,
            "flagged_programs": self.flagged_programs,
            "diagnostics": self.diagnostics,
            "expected_unstable": self.expected_unstable,
            "expectation_mismatches": self.expectation_mismatches,
            "witnesses": {
                "confirmed": self.witnesses_confirmed,
                "unconfirmed": self.witnesses_unconfirmed,
                "inconclusive": self.witnesses_inconclusive,
            },
            "diff": {
                "executions": self.diff_executions,
                "agree": self.diff_agreements,
                "ub_justified": self.diff_ub_justified,
                "miscompile": self.miscompiles,
                "inconclusive": self.diff_inconclusive,
            },
            "reduced_cases": self.reduced_cases,
            "reduction_checker_runs": self.reduction_checker_runs,
            "by_scenario": {name: dict(row) for name, row
                            in sorted(self.by_scenario.items())},
        }


@dataclass
class FuzzResult:
    """Everything one campaign produced."""

    stats: FuzzStats
    records: List[Dict[str, object]] = field(default_factory=list)
    #: De-tagged shape key -> minimized reproducer.
    reduced: Dict[str, ReducedCase] = field(default_factory=dict)
    #: Snippets registered into the corpus (register_snippets=True).
    snippets: List["Snippet"] = field(default_factory=list)
    out: Optional[str] = None

    @property
    def flagged_records(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r["flagged"]]


class FuzzCampaign:
    """Runs one seeded campaign end to end."""

    def __init__(self, config: Optional[FuzzConfig] = None) -> None:
        self.config = config if config is not None else FuzzConfig()
        if self.config.budget <= 0:
            raise ValueError("fuzz budget must be positive")
        if self.config.batch_size <= 0:
            raise ValueError("fuzz batch size must be positive")
        #: The one rng threading the whole pipeline (docs/FUZZ.md).
        self.rng = random.Random(self.config.seed)
        self.generator = ProgramGenerator(self.rng, self.config.scenarios)
        self.weights: Dict[str, float] = {s: 1.0 for s in self.config.scenarios}
        self._coverage: Dict[str, set] = {s: set() for s in self.config.scenarios}
        self._reduction_cache = None      # shared SolverQueryCache, lazy

    # -- public API ----------------------------------------------------------------

    def run(self) -> FuzzResult:
        """Generate, check, diff, and (optionally) reduce ``budget`` programs."""
        cfg = self.config
        started = time.monotonic()
        stats = FuzzStats(seed=cfg.seed)
        result = FuzzResult(stats=stats, out=cfg.out)

        # Draw order is part of the campaign's identity: the stage-5 witness
        # seed comes first, then generation and per-program differential
        # seeds interleave in program order.
        witness_seed = self.rng.getrandbits(32)
        checker = cfg.checker_config(witness_seed)
        engine = CheckEngine(EngineConfig(workers=cfg.workers, checker=checker))

        trace_root: Optional["Span"] = None
        trace_metrics = None
        trace_offset = 0.0
        if cfg.trace:
            from repro.obs.metrics import MetricsRegistry
            from repro.obs.trace import Span

            trace_root = Span("fuzz-campaign")
            trace_metrics = MetricsRegistry()

        sink = JsonlResultSink(cfg.out) if cfg.out else None
        interrupted = False
        try:
            try:
                index = 0
                while index < cfg.budget:
                    batch_size = min(cfg.batch_size, cfg.budget - index)
                    programs = self._generate_batch(index, batch_size)
                    index += batch_size
                    outcome = engine.check_corpus(self._work_units(programs))
                    stats.engine.merge(outcome.stats)
                    if trace_root is not None and outcome.trace is not None:
                        from repro.obs.trace import graft, span_payloads, \
                            span_timings

                        graft(trace_root, span_payloads(outcome.trace),
                              span_timings(outcome.trace), offset=trace_offset)
                        trace_offset += outcome.trace.dur
                        if outcome.metrics is not None:
                            trace_metrics.merge(outcome.metrics)
                    for program, unit in zip(programs, outcome.results):
                        record = self._process_program(program, unit, result)
                        result.records.append(record)
                        if sink is not None:
                            sink.write_record(record)
                    self._reschedule()
            except KeyboardInterrupt as exc:
                # Ctrl-C / SIGTERM mid-campaign: fold in whatever the
                # interrupted batch finished, then fall through so the
                # partial summary still reaches the stream before exit 130.
                from repro.engine.engine import EngineInterrupted

                interrupted = True
                if isinstance(exc, EngineInterrupted):
                    stats.engine.merge(exc.result.stats)
            summary = {"type": "fuzz-run"}
            summary.update(stats.as_dict())
            import repro
            from repro.obs.metrics import config_snapshot

            summary["version"] = repro.__version__
            # Execution-environment knobs (output paths, worker count,
            # tracing) never influence the verdict stream, so they stay out
            # of the summary: runs that must be byte-identical may differ
            # in all three.
            snapshot = config_snapshot(cfg)
            for knob in ("out", "workers", "trace"):
                snapshot.pop(knob, None)
            summary["config"] = snapshot
            if interrupted:
                summary["interrupted"] = True
            if sink is not None:
                sink.write_record(summary)
        finally:
            if sink is not None:
                sink.close()
        stats.wall_clock = time.monotonic() - started
        if interrupted:
            raise KeyboardInterrupt("fuzz campaign interrupted")
        if trace_root is not None:
            from repro.obs.chrometrace import write_chrome_trace

            trace_root.dur = max(stats.wall_clock, trace_offset)
            write_chrome_trace(
                cfg.trace, trace_root,
                metrics=trace_metrics.snapshot()["counters"])
        return result

    # -- generation and scheduling ---------------------------------------------------

    def _generate_batch(self, start: int, count: int) -> List[GeneratedProgram]:
        scenarios = list(self.config.scenarios)
        weights = [self.weights[s] for s in scenarios]
        picks = self.rng.choices(scenarios, weights=weights, k=count)
        return [self.generator.generate(start + offset, scenario)
                for offset, scenario in enumerate(picks)]

    def _reschedule(self) -> None:
        """Boost scenarios whose verdict coverage is still incomplete."""
        for scenario in self.config.scenarios:
            missing = len(set(_COVERAGE_GOALS) - self._coverage[scenario])
            self.weights[scenario] = 1.0 + 2.0 * missing

    @staticmethod
    def _work_units(programs: Sequence[GeneratedProgram]) -> List[WorkUnit]:
        units = []
        for program in programs:
            meta = {"scenario": program.scenario, "mode": program.mode,
                    "tag": program.tag,
                    "expected_unstable": program.expected_unstable}
            if program.mode == "minic":
                units.append(WorkUnit(name=program.name, source=program.source,
                                      filename=f"{program.name}.c", meta=meta))
            else:
                units.append(WorkUnit(name=program.name,
                                      module=program.build_module(), meta=meta))
        return units

    # -- per-program processing --------------------------------------------------------

    def _process_program(self, program: GeneratedProgram, unit: UnitResult,
                         result: FuzzResult) -> Dict[str, object]:
        stats = result.stats
        report = unit.report
        flagged = bool(report.bugs)
        row = stats.scenario_row(program.scenario)

        stats.programs += 1
        row["programs"] += 1
        if program.mode == "minic":
            stats.minic_programs += 1
        else:
            stats.ir_programs += 1
        if not unit.ok:
            stats.failed_units += 1
        if program.expected_unstable:
            stats.expected_unstable += 1
            row["expected_unstable"] += 1
        if flagged:
            stats.flagged_programs += 1
            row["flagged"] += 1
            self._coverage[program.scenario].add("flagged")
        elif unit.ok:
            self._coverage[program.scenario].add("clean")
        stats.diagnostics += len(report.bugs)
        row["diagnostics"] += len(report.bugs)
        # A verdict matches the generator's expectation only if the flagged
        # state agrees *and* (when anything was flagged and a single UB
        # condition was isolated) the observed UB kinds intersect the
        # scenario's taxonomy annotation — which keeps expected_kinds
        # load-bearing rather than decorative.
        flagged_kinds = {k for bug in report.bugs for k in bug.ub_kinds}
        kind_mismatch = bool(
            flagged and program.expected_kinds and flagged_kinds
            and not (flagged_kinds & set(program.expected_kinds)))
        mismatch = unit.ok and (flagged != program.expected_unstable
                                or kind_mismatch)
        if mismatch:
            stats.expectation_mismatches += 1
            row["mismatches"] += 1

        stats.witnesses_confirmed += report.witnesses_confirmed
        stats.witnesses_unconfirmed += report.witnesses_unconfirmed
        stats.witnesses_inconclusive += report.witnesses_inconclusive
        row["confirmed"] += report.witnesses_confirmed
        if report.witnesses_confirmed:
            self._coverage[program.scenario].add("confirmed")

        diagnostics = []
        for bug in report.bugs:
            diagnostics.append({
                "location": str(bug.location),
                "algorithm": bug.algorithm.value,
                "kinds": sorted(k.value for k in set(bug.ub_kinds)),
                "fragment": bug.fragment,
                "witness": bug.witness.verdict.value
                if bug.witness is not None else None,
            })

        diff_record = None
        if self.config.differential and unit.ok:
            diff_record = self._run_diff(program, stats, row)

        reduced_record = None
        if self.config.reduce and flagged:
            reduced_record = self._reduce(program, report, result)

        return {
            "type": "fuzz-program",
            "index": program.index,
            "name": program.name,
            "scenario": program.scenario,
            "mode": program.mode,
            "tag": program.tag,
            "expected_unstable": program.expected_unstable,
            "error": unit.error,
            "flagged": flagged,
            "matches_expectation": not mismatch,
            "diagnostics": diagnostics,
            "witnesses": {
                "confirmed": report.witnesses_confirmed,
                "unconfirmed": report.witnesses_unconfirmed,
                "inconclusive": report.witnesses_inconclusive,
            },
            "diff": diff_record,
            "reduced": reduced_record,
        }

    def _fresh_module(self, program: GeneratedProgram):
        """A module the checker has not inlined/mutated, for diff/reduction."""
        if program.mode == "minic":
            from repro.api import compile_source

            return compile_source(program.source, filename=f"{program.name}.c")
        return program.build_module()

    def _run_diff(self, program: GeneratedProgram, stats: FuzzStats,
                  row: Dict[str, int]) -> Dict[str, object]:
        from repro.exec.diff import DiffClassification, run_differential

        module = self._fresh_module(program)
        diff = run_differential([(program.name, module)],
                                inputs_per_function=self.config.diff_inputs,
                                rng=self.rng)
        counts = diff.counts
        agree = counts.get(DiffClassification.AGREE.value, 0)
        justified = counts.get(DiffClassification.UB_JUSTIFIED.value, 0)
        miscompiles = counts.get(DiffClassification.MISCOMPILE.value, 0)
        inconclusive = counts.get(DiffClassification.INCONCLUSIVE.value, 0)
        stats.diff_executions += diff.executions
        stats.diff_agreements += agree
        stats.diff_ub_justified += justified
        stats.miscompiles += miscompiles
        stats.diff_inconclusive += inconclusive
        row["miscompiles"] += miscompiles
        return {
            "executions": diff.executions,
            "agree": agree,
            "ub_justified": justified,
            "miscompile": miscompiles,
            "inconclusive": inconclusive,
            "cases": [case.describe() for case in diff.miscompiles],
        }

    # -- reduction -----------------------------------------------------------------

    def _shape_key(self, program: GeneratedProgram) -> str:
        if program.mode == "minic":
            return f"minic:{program.template}"
        spec = {k: v for k, v in sorted(program.ir_spec.items()) if k != "tag"}
        return f"ir:{spec!r}"

    def _reduce(self, program: GeneratedProgram, report,
                result: FuzzResult) -> Optional[Dict[str, object]]:
        key = self._shape_key(program)
        stats = result.stats
        case = result.reduced.get(key)
        if case is None:
            # Programs of one de-tagged shape minimize identically, so the
            # first one pays for the reduction and the rest replay it.
            if self._reduction_cache is None:
                from repro.engine.cache import SolverQueryCache

                self._reduction_cache = SolverQueryCache(capacity=200_000)
            kinds = sorted({k for bug in report.bugs for k in bug.ub_kinds},
                           key=lambda k: k.value)
            if program.mode == "minic":
                case = reduce_source(program.source, kinds=kinds,
                                     filename=f"{program.name}.c",
                                     cache=self._reduction_cache)
            else:
                case = reduce_module(lambda p=program: p.build_module(),
                                     kinds=kinds, cache=self._reduction_cache)
            if case is None:
                return None
            if case.mode == "minic":
                # De-tag once, with the tag of the program that produced the
                # case; memo hits from other tags then reuse it verbatim.
                case.source = case.source.replace(program.tag, "{S}")
            result.reduced[key] = case
            stats.reduced_cases += 1
            stats.reduction_checker_runs += case.checker_runs
            stats.scenario_row(program.scenario)["reduced"] += 1
            if self.config.register_snippets and case.mode == "minic":
                import hashlib

                from repro.corpus.snippets import register_snippet

                # Content-hashed names: the same minimized shape gets the
                # same name in every campaign and process, so registration
                # is idempotent across seeds and never shadows different
                # content under a recycled counter.
                digest = hashlib.sha256(case.source.encode()).hexdigest()[:8]
                snippet = case_to_snippet(
                    case, scenario=program.scenario, tag="{S}",
                    name=f"fuzz_{program.scenario}_{digest}")
                result.snippets.append(register_snippet(snippet))
        return {
            "template": case.source,
            "mode": case.mode,
            "kinds": [k.value for k in case.kinds],
            "elements_before": case.elements_before,
            "elements_after": case.elements_after,
        }


def run_fuzz_campaign(config: Optional[FuzzConfig] = None, **kwargs) -> FuzzResult:
    """Convenience wrapper: build a :class:`FuzzCampaign` and run it.

    Keyword arguments become :class:`FuzzConfig` fields when no config is
    given::

        result = run_fuzz_campaign(seed=7, budget=50, reduce=True)
        assert result.stats.miscompiles == 0
    """
    if config is None:
        config = FuzzConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a FuzzConfig or keyword fields, not both")
    return FuzzCampaign(config).run()
