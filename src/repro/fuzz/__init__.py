"""Generative fuzzing for the checker pipeline.

The subsystem has three parts (docs/FUZZ.md):

* :mod:`repro.fuzz.generator` — seeded generation of MiniC translation
  units and raw IR functions across scenario classes keyed to the paper's
  UB taxonomy,
* :mod:`repro.fuzz.campaign` — the orchestrator: fans generated programs
  through the parallel :class:`~repro.engine.engine.CheckEngine` (with
  stage-5 witness replay and the seeded differential optimizer runner),
  schedules generation by observed verdict coverage, and streams
  deterministic JSONL,
* :mod:`repro.fuzz.reduce` — ddmin reduction of every unstable finding to
  a minimal reproducer that still reproduces the verdict, registrable into
  the snippet corpus.

Entry points: :func:`run_fuzz_campaign` from Python, ``python -m repro
fuzz`` from the shell, ``repro.experiments.fuzz`` for the campaign summary
table, and ``benchmarks/bench_fuzz.py`` for the invariants (determinism
per seed, zero unexplained miscompiles, throughput).
"""

from repro.fuzz.campaign import (
    FuzzCampaign,
    FuzzConfig,
    FuzzResult,
    FuzzStats,
    run_fuzz_campaign,
)
from repro.fuzz.generator import (
    ALL_SCENARIOS,
    GeneratedProgram,
    ProgramGenerator,
    build_ir_module,
)
from repro.fuzz.reduce import (
    ReducedCase,
    case_to_snippet,
    ddmin,
    reduce_module,
    reduce_source,
)

__all__ = [
    "ALL_SCENARIOS",
    "FuzzCampaign",
    "FuzzConfig",
    "FuzzResult",
    "FuzzStats",
    "GeneratedProgram",
    "ProgramGenerator",
    "ReducedCase",
    "build_ir_module",
    "case_to_snippet",
    "ddmin",
    "reduce_module",
    "reduce_source",
    "run_fuzz_campaign",
]
