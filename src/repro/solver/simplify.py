"""Structural term simplification beyond local constant folding.

The :class:`TermManager` already performs local folding at construction time.
This module adds a small rewriting pass that is applied to whole assertions
before bit-blasting.  It is not required for correctness — the bit-blaster
handles arbitrary terms — but it decides a large fraction of the checker's
queries without touching the SAT solver, which is what keeps the pure-Python
reproduction fast enough to analyze corpus-scale inputs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.solver.terms import Op, Term, TermManager


def simplify(mgr: TermManager, term: Term) -> Term:
    """Return a simplified term equivalent to ``term``."""
    cache: Dict[int, Term] = {}

    def walk(t: Term) -> Term:
        cached = cache.get(t.tid)
        if cached is not None:
            return cached
        if not t.args:
            cache[t.tid] = t
            return t
        new_args = tuple(walk(a) for a in t.args)
        rebuilt = _rebuild(mgr, t, new_args)
        rewritten = _rewrite(mgr, rebuilt)
        cache[t.tid] = rewritten
        return rewritten

    return walk(term)


def _rebuild(mgr: TermManager, t: Term, args: tuple) -> Term:
    """Re-run the manager constructor so folding applies to new arguments."""
    op = t.op
    if args == t.args:
        return t
    builders = {
        Op.NOT: lambda: mgr.not_(args[0]),
        Op.AND: lambda: mgr.and_(*args),
        Op.OR: lambda: mgr.or_(*args),
        Op.XOR: lambda: mgr.xor(args[0], args[1]),
        Op.ITE: lambda: mgr.ite(args[0], args[1], args[2]),
        Op.EQ: lambda: mgr.eq(args[0], args[1]),
        Op.DISTINCT: lambda: mgr.distinct(args[0], args[1]),
        Op.BVNEG: lambda: mgr.bvneg(args[0]),
        Op.BVADD: lambda: mgr.bvadd(args[0], args[1]),
        Op.BVSUB: lambda: mgr.bvsub(args[0], args[1]),
        Op.BVMUL: lambda: mgr.bvmul(args[0], args[1]),
        Op.BVUDIV: lambda: mgr.bvudiv(args[0], args[1]),
        Op.BVSDIV: lambda: mgr.bvsdiv(args[0], args[1]),
        Op.BVUREM: lambda: mgr.bvurem(args[0], args[1]),
        Op.BVSREM: lambda: mgr.bvsrem(args[0], args[1]),
        Op.BVNOT: lambda: mgr.bvnot(args[0]),
        Op.BVAND: lambda: mgr.bvand(args[0], args[1]),
        Op.BVOR: lambda: mgr.bvor(args[0], args[1]),
        Op.BVXOR: lambda: mgr.bvxor(args[0], args[1]),
        Op.BVSHL: lambda: mgr.bvshl(args[0], args[1]),
        Op.BVLSHR: lambda: mgr.bvlshr(args[0], args[1]),
        Op.BVASHR: lambda: mgr.bvashr(args[0], args[1]),
        Op.BVULT: lambda: mgr.bvult(args[0], args[1]),
        Op.BVULE: lambda: mgr.bvule(args[0], args[1]),
        Op.BVUGT: lambda: mgr.bvugt(args[0], args[1]),
        Op.BVUGE: lambda: mgr.bvuge(args[0], args[1]),
        Op.BVSLT: lambda: mgr.bvslt(args[0], args[1]),
        Op.BVSLE: lambda: mgr.bvsle(args[0], args[1]),
        Op.BVSGT: lambda: mgr.bvsgt(args[0], args[1]),
        Op.BVSGE: lambda: mgr.bvsge(args[0], args[1]),
        Op.CONCAT: lambda: mgr.concat(args[0], args[1]),
        Op.EXTRACT: lambda: mgr.extract(args[0], t.attrs[0], t.attrs[1]),
        Op.ZEXT: lambda: mgr.zext(args[0], t.attrs[0]),
        Op.SEXT: lambda: mgr.sext(args[0], t.attrs[0]),
    }
    builder = builders.get(op)
    if builder is None:
        return t
    return builder()


def _rewrite(mgr: TermManager, t: Term) -> Term:
    """Apply a handful of algebraic rewrites on a single node."""
    op = t.op

    # (x + c1) cmp x  and  x cmp (x + c1) patterns are left to the checker's
    # algebra oracle; here we only normalise a few cheap identities.

    if op in (Op.BVXOR, Op.BVSUB) and t.args[0] is t.args[1]:
        # x ^ x -> 0 and x - x -> 0 (hash-consing makes identity exact).
        return mgr.bv_const(0, t.sort.width)
    if op in (Op.BVAND, Op.BVOR) and t.args[0] is t.args[1]:
        # x & x -> x and x | x -> x
        return t.args[0]

    if op in (Op.BVSHL, Op.BVLSHR, Op.BVASHR) and t.args[1].is_const() \
            and t.args[1].value == 0:
        # x << 0 -> x and x >> 0 -> x (logical and arithmetic alike).
        return t.args[0]
    if op in (Op.BVSHL, Op.BVLSHR) and t.args[1].is_const() \
            and t.args[0].op is op and t.args[0].args[1].is_const():
        # Shift chains with constant amounts fold into one shift:
        # (x << c1) << c2 -> x << (c1 + c2), and likewise for lshr.  The
        # amounts add without wrapping; a total >= width zeroes the value
        # outright (both directions shift in zeros).  Fuzzed shift-guard
        # programs produce these chains constantly — see docs/FUZZ.md.
        width = t.sort.width
        total = t.args[0].args[1].value + t.args[1].value
        if total >= width:
            return mgr.bv_const(0, width)
        builder = mgr.bvshl if op is Op.BVSHL else mgr.bvlshr
        return builder(t.args[0].args[0], mgr.bv_const(total, width))
    if op is Op.BVNEG and t.args[0].op is Op.BVNEG:
        # -(-x) -> x; the NOT/BVNOT double negations fold at construction.
        return t.args[0].args[0]

    if op is Op.EXTRACT:
        hi, lo = t.attrs
        inner = t.args[0]
        if inner.op is Op.CONCAT:
            # extract of a concat that stays within one half forwards to
            # that half (encoder-produced truncations of widening chains).
            concat_hi, concat_lo = inner.args
            if hi < concat_lo.width:
                return mgr.extract(concat_lo, hi, lo)
            if lo >= concat_lo.width:
                return mgr.extract(concat_hi, hi - concat_lo.width,
                                   lo - concat_lo.width)
        if inner.op in (Op.ZEXT, Op.SEXT):
            base = inner.args[0]
            if hi < base.width:
                # The extracted bits never reach the extension.
                return mgr.extract(base, hi, lo)
            if inner.op is Op.ZEXT and lo >= base.width:
                # Purely extension bits of a zext are zero.
                return mgr.bv_const(0, hi - lo + 1)

    if op in (Op.BVAND, Op.BVOR, Op.BVXOR):
        width = t.sort.width
        ones = (1 << width) - 1
        for this, other in ((t.args[0], t.args[1]), (t.args[1], t.args[0])):
            if not other.is_const():
                continue
            if other.value == 0:
                # x & 0 -> 0;  x | 0 -> x;  x ^ 0 -> x
                return mgr.bv_const(0, width) if op is Op.BVAND else this
            if other.value == ones:
                # x & ~0 -> x;  x | ~0 -> ~0;  x ^ ~0 -> ~x
                if op is Op.BVAND:
                    return this
                if op is Op.BVOR:
                    return mgr.bv_const(ones, width)
                return mgr.bvnot(this)

    if op in (Op.EQ, Op.DISTINCT) and t.args[0].sort.is_bv():
        lhs, rhs = t.args
        # (a - b) == 0  ->  a == b
        if rhs.is_const() and rhs.value == 0 and lhs.op is Op.BVSUB:
            equal = mgr.eq(lhs.args[0], lhs.args[1])
            return equal if op is Op.EQ else mgr.not_(equal)

    if op in (Op.BVULT, Op.BVUGT, Op.BVULE, Op.BVUGE,
              Op.BVSLT, Op.BVSGT, Op.BVSLE, Op.BVSGE):
        lhs, rhs = t.args
        # x < 0 (unsigned) is always false; x >= 0 (unsigned) is always true.
        if rhs.is_const() and rhs.value == 0:
            if op is Op.BVULT:
                return mgr.false()
            if op is Op.BVUGE:
                return mgr.true()
    return t


def term_size(term: Term) -> int:
    """Number of distinct nodes in the term DAG (used for stats/tests)."""
    seen = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if t.tid in seen:
            continue
        seen.add(t.tid)
        stack.extend(t.args)
    return len(seen)
