"""Solver facade combining term simplification, bit-blasting, and CDCL SAT.

The :class:`Solver` provides the small slice of an SMT solver API that STACK
needs: assert boolean terms over bit vectors, check satisfiability with a
per-query timeout, and extract models.  Each ``check`` call builds a fresh
SAT instance from the current assertion set, which keeps the implementation
simple and deterministic (the assertion sets the checker produces are small).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.solver.bitblast import BitBlaster
from repro.solver.cnf import CnfBuilder
from repro.solver.sat import SatResult, SatSolver
from repro.solver.simplify import simplify
from repro.solver.terms import Op, Term, TermManager, collect_variables


class CheckResult(enum.Enum):
    """Outcome of a satisfiability query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"       # timeout or conflict budget exhausted


@dataclass
class SolverStats:
    """Counters accumulated across all queries issued to a solver."""

    queries: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    decided_by_simplification: int = 0
    total_time: float = 0.0

    def record(self, result: CheckResult, elapsed: float, simplified: bool) -> None:
        self.queries += 1
        self.total_time += elapsed
        if simplified:
            self.decided_by_simplification += 1
        if result is CheckResult.SAT:
            self.sat += 1
        elif result is CheckResult.UNSAT:
            self.unsat += 1
        else:
            self.unknown += 1


class Model:
    """A satisfying assignment mapping variable names to concrete values."""

    def __init__(self, values: Dict[str, int]) -> None:
        self._values = dict(values)

    def __getitem__(self, name: str) -> int:
        return self._values[name]

    def get(self, name: str, default: Optional[int] = None) -> Optional[int]:
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Model({items})"


class Solver:
    """Bit-vector satisfiability solver with an assertion stack.

    Parameters
    ----------
    manager:
        The :class:`TermManager` used to build asserted terms.  A solver may
        also be created without one, in which case it allocates its own.
    timeout:
        Default per-query timeout in seconds (``None`` disables it).  The
        paper uses a 5 second Boolector timeout; the checker passes its own
        configured value through.
    max_conflicts:
        Optional conflict budget per query, an additional determinism-friendly
        resource limit used by tests.
    """

    def __init__(
        self,
        manager: Optional[TermManager] = None,
        timeout: Optional[float] = 5.0,
        max_conflicts: Optional[int] = 200_000,
    ) -> None:
        self.manager = manager if manager is not None else TermManager()
        self.timeout = timeout
        self.max_conflicts = max_conflicts
        self.stats = SolverStats()
        self._assertions: List[Term] = []
        self._stack: List[int] = []
        self._last_model: Optional[Model] = None

    # -- assertion stack --------------------------------------------------------

    def add(self, term: Term) -> None:
        """Assert a boolean term."""
        if not term.sort.is_bool():
            raise TypeError("only boolean terms can be asserted")
        self._assertions.append(term)

    def push(self) -> None:
        """Push a backtracking point."""
        self._stack.append(len(self._assertions))

    def pop(self) -> None:
        """Pop to the most recent backtracking point."""
        if not self._stack:
            raise RuntimeError("pop without matching push")
        size = self._stack.pop()
        del self._assertions[size:]

    def assertions(self) -> List[Term]:
        return list(self._assertions)

    def reset(self) -> None:
        self._assertions.clear()
        self._stack.clear()
        self._last_model = None

    # -- checking ----------------------------------------------------------------

    def check(
        self,
        extra: Sequence[Term] = (),
        timeout: Optional[float] = None,
    ) -> CheckResult:
        """Decide satisfiability of the asserted terms plus ``extra``."""
        start = time.monotonic()
        effective_timeout = self.timeout if timeout is None else timeout
        mgr = self.manager

        terms = list(self._assertions) + list(extra)
        conjunction = mgr.true()
        for t in terms:
            conjunction = mgr.and_(conjunction, t)
        conjunction = simplify(mgr, conjunction)

        if conjunction.is_const():
            result = CheckResult.SAT if conjunction.value else CheckResult.UNSAT
            if result is CheckResult.SAT:
                self._last_model = Model(self._default_model(terms))
            self.stats.record(result, time.monotonic() - start, simplified=True)
            return result

        # Cheap SAT pre-pass: try a handful of concrete assignments with the
        # term evaluator before paying for bit-blasting.  Sound because a
        # verified satisfying assignment is a model; never claims UNSAT.
        guessed = self._guess_model(conjunction)
        if guessed is not None:
            self._last_model = guessed
            self.stats.record(CheckResult.SAT, time.monotonic() - start,
                              simplified=True)
            return CheckResult.SAT

        sat = SatSolver()
        cnf = CnfBuilder(sat)
        blaster = BitBlaster(cnf)
        blaster.assert_term(conjunction)

        remaining = None
        if effective_timeout is not None:
            remaining = max(0.0, effective_timeout - (time.monotonic() - start))
        sat_result = sat.solve(max_conflicts=self.max_conflicts, timeout=remaining)

        if sat_result is SatResult.SAT:
            result = CheckResult.SAT
            self._last_model = self._extract_model(sat, blaster, terms)
        elif sat_result is SatResult.UNSAT:
            result = CheckResult.UNSAT
            self._last_model = None
        else:
            result = CheckResult.UNKNOWN
            self._last_model = None
        self.stats.record(result, time.monotonic() - start, simplified=False)
        return result

    def model(self) -> Model:
        """Model of the last SAT query."""
        if self._last_model is None:
            raise RuntimeError("no model available; last check was not SAT")
        return self._last_model

    # -- helpers -------------------------------------------------------------------

    #: Seed patterns used by the model-guessing pre-pass, expressed as
    #: functions of the variable width.
    _GUESS_PATTERNS = (
        lambda width: 0,
        lambda width: 1,
        lambda width: (1 << width) - 1,            # -1 / all ones
        lambda width: 1 << (width - 1),            # INT_MIN
        lambda width: (1 << (width - 1)) - 1,      # INT_MAX
        lambda width: 2,
        lambda width: 0x10,
        lambda width: (1 << width) - 0x10,
    )

    def _guess_model(self, conjunction: Term) -> Optional[Model]:
        """Try a few concrete assignments; return a verified model or None."""
        variables = collect_variables(conjunction)
        if not variables or len(variables) > 24:
            return None
        names = sorted(variables)
        for pattern_index, pattern in enumerate(self._GUESS_PATTERNS):
            assignment: Dict[str, int] = {}
            for offset, name in enumerate(names):
                sort = variables[name]
                width = sort.width if sort.is_bv() else 1
                # Rotate patterns across variables so mixtures get explored.
                chosen = self._GUESS_PATTERNS[
                    (pattern_index + offset) % len(self._GUESS_PATTERNS)]
                value = chosen(width) & ((1 << width) - 1)
                assignment[name] = value if sort.is_bv() else value & 1
            try:
                if self.manager.evaluate(conjunction, assignment):
                    return Model(assignment)
            except (KeyError, NotImplementedError):
                return None
        return None

    def _default_model(self, terms: Sequence[Term]) -> Dict[str, int]:
        """Arbitrary assignment when the formula simplified to ``true``."""
        values: Dict[str, int] = {}
        for term in terms:
            for name, sort in collect_variables(term).items():
                values.setdefault(name, 0)
        return values

    def _extract_model(
        self,
        sat: SatSolver,
        blaster: BitBlaster,
        terms: Sequence[Term],
    ) -> Model:
        values: Dict[str, int] = {}
        for name, bits in blaster.known_bv_variables().items():
            value = 0
            for i, lit in enumerate(bits):
                bit_val = sat.model_value(abs(lit))
                if lit < 0:
                    bit_val = not bit_val
                if bit_val:
                    value |= 1 << i
            values[name] = value
        for name, lit in blaster.known_bool_variables().items():
            bit_val = sat.model_value(abs(lit))
            if lit < 0:
                bit_val = not bit_val
            values[name] = int(bit_val)
        # Variables folded away before blasting get an arbitrary value.
        for term in terms:
            for name, _sort in collect_variables(term).items():
                values.setdefault(name, 0)
        return Model(values)


def is_unsat(manager: TermManager, *terms: Term,
             timeout: Optional[float] = 5.0) -> bool:
    """Convenience helper: True iff the conjunction of ``terms`` is UNSAT."""
    solver = Solver(manager, timeout=timeout)
    for term in terms:
        solver.add(term)
    return solver.check() is CheckResult.UNSAT
