"""Solver facade combining term simplification, bit-blasting, and CDCL SAT.

The :class:`Solver` provides the small slice of an SMT solver API that STACK
needs: assert boolean terms over bit vectors, check satisfiability with a
per-query timeout, and extract models.

Two operating modes exist:

* **scratch** (``incremental=False``) — every ``check`` builds a fresh SAT
  instance from the current assertion set.  Simple, stateless between
  queries, and the reference semantics the incremental mode is tested
  against.
* **incremental** (``incremental=True``) — one SAT instance, one CNF, and
  one bit-blaster persist for the solver's lifetime.  Assertions are guarded
  by per-frame *activation literals*, so ``push``/``pop`` never rebuild CNF:
  a pop permanently asserts the negated activation literal, retiring the
  frame's constraints while keeping every learned clause and every
  bit-blasted encoding.  ``check(assumptions=...)`` passes per-query deltas
  straight to the SAT solver as assumption literals, which is how the
  checker batches the closely related elimination/simplification queries of
  one candidate into one context.

Both modes share the same pre-pass: the asserted conjunction is structurally
simplified (deciding many queries outright) and a handful of concrete
assignments are tried before any bit-blasting happens.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.solver.bitblast import BitBlaster
from repro.solver.cnf import CnfBuilder
from repro.solver.sat import SatResult, SatSolver
from repro.solver.simplify import simplify
from repro.solver.terms import Op, Term, TermManager, collect_variables


class CheckResult(enum.Enum):
    """Outcome of a satisfiability query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"       # timeout or conflict budget exhausted


@dataclass
class SolverStats:
    """Counters accumulated across all queries issued to a solver.

    The first block counts queries and how they were decided; the second
    block exposes the work the CDCL/bit-blasting layers did, which is what
    makes the incremental-vs-scratch comparison observable in run stats
    (see docs/SOLVER.md for a tuning table).
    """

    queries: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    decided_by_simplification: int = 0
    total_time: float = 0.0

    sat_calls: int = 0            # queries that reached the CDCL loop
    restarts: int = 0             # CDCL restarts across those calls
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    blasted_clauses: int = 0      # CNF clauses produced by bit-blasting
    blast_hits: int = 0           # term encodings reused from the blast cache
    assumption_failures: int = 0  # UNSAT answers caused by an assumption

    def record(self, result: CheckResult, elapsed: float, simplified: bool) -> None:
        self.queries += 1
        self.total_time += elapsed
        if simplified:
            self.decided_by_simplification += 1
        if result is CheckResult.SAT:
            self.sat += 1
        elif result is CheckResult.UNSAT:
            self.unsat += 1
        else:
            self.unknown += 1

    def merge(self, other: "SolverStats") -> None:
        """Accumulate another stats block into this one."""
        self.queries += other.queries
        self.sat += other.sat
        self.unsat += other.unsat
        self.unknown += other.unknown
        self.decided_by_simplification += other.decided_by_simplification
        self.total_time += other.total_time
        self.sat_calls += other.sat_calls
        self.restarts += other.restarts
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.blasted_clauses += other.blasted_clauses
        self.blast_hits += other.blast_hits
        self.assumption_failures += other.assumption_failures

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON view used by the engine's result sink."""
        return {
            "queries": self.queries, "sat": self.sat, "unsat": self.unsat,
            "unknown": self.unknown,
            "decided_by_simplification": self.decided_by_simplification,
            "total_time": round(self.total_time, 6),
            "sat_calls": self.sat_calls, "restarts": self.restarts,
            "conflicts": self.conflicts, "decisions": self.decisions,
            "propagations": self.propagations,
            "blasted_clauses": self.blasted_clauses,
            "blast_hits": self.blast_hits,
            "assumption_failures": self.assumption_failures,
        }


class Model:
    """A satisfying assignment mapping variable names to concrete values."""

    def __init__(self, values: Dict[str, int]) -> None:
        self._values = dict(values)

    def __getitem__(self, name: str) -> int:
        return self._values[name]

    def get(self, name: str, default: Optional[int] = None) -> Optional[int]:
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Model({items})"


@dataclass
class _Frame:
    """One assertion frame of the incremental solver.

    ``act`` is the frame's activation literal; it is allocated lazily, the
    first time a term of this frame is encoded.  Every assertion of the
    frame becomes the guarded clause ``(-act ∨ lit)``, and each check
    assumes ``act``; popping the frame permanently asserts ``-act``.
    """

    terms: List[Term] = field(default_factory=list)
    act: Optional[int] = None
    encoded: int = 0              # how many terms are already in the CNF


class Solver:
    """Bit-vector satisfiability solver with an assertion stack.

    Parameters
    ----------
    manager:
        The :class:`TermManager` used to build asserted terms.  A solver may
        also be created without one, in which case it allocates its own.
    timeout:
        Default per-query timeout in seconds (``None`` disables it).  The
        paper uses a 5 second Boolector timeout; the checker passes its own
        configured value through.
    max_conflicts:
        Optional conflict budget per query, an additional determinism-friendly
        resource limit used by tests.
    incremental:
        Keep one SAT instance alive across ``check`` calls: learned clauses
        are retained, bit-blasted encodings are memoized per hash-consed
        term id, and push/pop is implemented with activation literals.  A
        budget-exhausted (UNKNOWN) query leaves the solver reusable.
    """

    def __init__(
        self,
        manager: Optional[TermManager] = None,
        timeout: Optional[float] = 5.0,
        max_conflicts: Optional[int] = 200_000,
        incremental: bool = False,
    ) -> None:
        self.manager = manager if manager is not None else TermManager()
        self.timeout = timeout
        self.max_conflicts = max_conflicts
        self.incremental = incremental
        self.stats = SolverStats()
        self._frames: List[_Frame] = [_Frame()]
        self._last_model: Optional[Model] = None
        self._failed_assumptions: List[Term] = []
        # Persistent engines (incremental mode), created on first use.
        self._sat: Optional[SatSolver] = None
        self._cnf: Optional[CnfBuilder] = None
        self._blaster: Optional[BitBlaster] = None
        self._simplified: Dict[int, Term] = {}

    # -- assertion stack --------------------------------------------------------

    def add(self, term: Term) -> None:
        """Assert a boolean term."""
        if not term.sort.is_bool():
            raise TypeError("only boolean terms can be asserted")
        self._frames[-1].terms.append(term)

    def push(self) -> "_Frame":
        """Push a backtracking point; returns an opaque frame token.

        Pass the token back to :meth:`pop` to assert LIFO discipline when
        several callers share one solver.
        """
        frame = _Frame()
        self._frames.append(frame)
        return frame

    def pop(self, expected: Optional["_Frame"] = None) -> None:
        """Pop to the most recent backtracking point.

        In incremental mode the popped frame's activation literal is
        permanently negated, which retires its assertions without discarding
        learned clauses or encodings.  When ``expected`` (a token from
        :meth:`push`) is given, popping anything else raises instead of
        silently retiring another caller's frame.
        """
        if len(self._frames) == 1:
            raise RuntimeError("pop without matching push")
        if expected is not None and self._frames[-1] is not expected:
            raise RuntimeError(
                "pop does not match the pushed frame (non-LIFO use of a "
                "shared solver)")
        frame = self._frames.pop()
        if frame.act is not None and self._cnf is not None:
            self._cnf.add_clause([-frame.act])

    def assertions(self) -> List[Term]:
        out: List[Term] = []
        for frame in self._frames:
            out.extend(frame.terms)
        return out

    def reset(self) -> None:
        """Drop every assertion, frame, and (incremental) solver state."""
        self._frames = [_Frame()]
        self._last_model = None
        self._failed_assumptions = []
        self._sat = None
        self._cnf = None
        self._blaster = None
        self._simplified = {}

    # -- checking ----------------------------------------------------------------

    def check(
        self,
        extra: Sequence[Term] = (),
        timeout: Optional[float] = None,
        assumptions: Sequence[Term] = (),
    ) -> CheckResult:
        """Decide satisfiability of the asserted terms plus ``extra``.

        ``assumptions`` (and ``extra``, which is treated identically) hold
        only for this call.  In incremental mode they become SAT-level
        assumption literals over the persistent clause database; after an
        UNSAT answer :meth:`failed_assumptions` reports the per-call terms
        the refutation relied on (unminimized — no UNSAT core extraction).
        """
        start = time.monotonic()
        effective_timeout = self.timeout if timeout is None else timeout
        mgr = self.manager
        deltas = list(extra) + list(assumptions)
        self._failed_assumptions = []

        terms = self.assertions() + deltas
        if self.incremental:
            # Per-term simplification is memoized for the solver's lifetime,
            # so repeated checks over a large base only pay dictionary
            # lookups here; conjoining the simplified terms still applies
            # the constructor-level folding (constants, complements) that
            # decides trivial queries outright.
            conjunction = mgr.and_(*[self._simplify_term(t) for t in terms])
        else:
            conjunction = mgr.true()
            for t in terms:
                conjunction = mgr.and_(conjunction, t)
            conjunction = simplify(mgr, conjunction)

        if conjunction.is_const():
            result = CheckResult.SAT if conjunction.value else CheckResult.UNSAT
            if result is CheckResult.SAT:
                self._last_model = Model(self._default_model(terms))
            else:
                self._note_failure(deltas)
            self.stats.record(result, time.monotonic() - start, simplified=True)
            return result

        # Cheap SAT pre-pass: try a handful of concrete assignments with the
        # term evaluator before paying for bit-blasting.  Sound because a
        # verified satisfying assignment is a model; never claims UNSAT.
        guessed = self._guess_model(conjunction)
        if guessed is not None:
            self._last_model = guessed
            self.stats.record(CheckResult.SAT, time.monotonic() - start,
                              simplified=True)
            return CheckResult.SAT

        if self.incremental:
            result = self._check_incremental(deltas, effective_timeout, start)
        else:
            result = self._check_scratch(conjunction, terms, deltas,
                                         effective_timeout, start)
        self.stats.record(result, time.monotonic() - start, simplified=False)
        return result

    def model(self) -> Model:
        """Model of the last SAT query."""
        if self._last_model is None:
            raise RuntimeError("no model available; last check was not SAT")
        return self._last_model

    def failed_assumptions(self) -> List[Term]:
        """Per-call terms the last UNSAT answer relied on.

        This is assumption *failure reporting*, not an UNSAT core: the list
        is not minimized.  When the SAT layer identifies the specific
        assumption literal it refuted, the list narrows to the terms that
        produced that literal; otherwise every per-call term is reported.
        An empty list after UNSAT means the asserted frames themselves are
        inconsistent.
        """
        return list(self._failed_assumptions)

    # -- scratch mode ------------------------------------------------------------

    def _check_scratch(self, conjunction: Term, terms: Sequence[Term],
                       deltas: Sequence[Term],
                       effective_timeout: Optional[float],
                       start: float) -> CheckResult:
        sat = SatSolver()
        cnf = CnfBuilder(sat)
        blaster = BitBlaster(cnf)
        blaster.assert_term(conjunction)

        remaining = None
        if effective_timeout is not None:
            remaining = max(0.0, effective_timeout - (time.monotonic() - start))
        sat_result = sat.solve(max_conflicts=self.max_conflicts, timeout=remaining)
        self._account_sat_work(sat, cnf, blaster, 0, 0, 0, 0, 0, 0)

        if sat_result is SatResult.SAT:
            self._last_model = self._extract_model(sat, blaster, terms)
            return CheckResult.SAT
        if sat_result is SatResult.UNSAT:
            self._last_model = None
            self._note_failure(deltas)
            return CheckResult.UNSAT
        self._last_model = None
        return CheckResult.UNKNOWN

    # -- incremental mode --------------------------------------------------------

    def _ensure_engines(self) -> None:
        if self._sat is None:
            self._sat = SatSolver()
            self._cnf = CnfBuilder(self._sat)
            self._blaster = BitBlaster(self._cnf)

    def _simplify_term(self, term: Term) -> Term:
        cached = self._simplified.get(term.tid)
        if cached is None:
            cached = simplify(self.manager, term)
            self._simplified[term.tid] = cached
        return cached

    def _encode_pending(self) -> None:
        """Encode assertions added since the last check, frame by frame."""
        for frame in self._frames:
            if frame.encoded == len(frame.terms):
                continue
            if frame.act is None:
                frame.act = self._cnf.new_lit()
            for term in frame.terms[frame.encoded:]:
                lit = self._blaster.blast_bool(self._simplify_term(term))
                self._cnf.assert_lit(lit, guard=frame.act)
            frame.encoded = len(frame.terms)

    def _check_incremental(self, deltas: Sequence[Term],
                           effective_timeout: Optional[float],
                           start: float) -> CheckResult:
        self._ensure_engines()
        sat, cnf, blaster = self._sat, self._cnf, self._blaster
        clauses0 = cnf.num_clauses
        hits0 = blaster.cache_hits
        restarts0, conflicts0 = sat.restarts, sat.conflicts
        decisions0, propagations0 = sat.decisions, sat.propagations

        self._encode_pending()
        delta_pairs: List[Tuple[Term, int]] = [
            (term, blaster.blast_bool(self._simplify_term(term)))
            for term in deltas]
        assume = [frame.act for frame in self._frames if frame.act is not None]
        assume.extend(lit for _term, lit in delta_pairs)

        remaining = None
        if effective_timeout is not None:
            remaining = max(0.0, effective_timeout - (time.monotonic() - start))
        sat_result = sat.solve(assumptions=assume,
                               max_conflicts=self.max_conflicts,
                               timeout=remaining)
        self._account_sat_work(sat, cnf, blaster, restarts0, conflicts0,
                               decisions0, propagations0, clauses0, hits0)

        if sat_result is SatResult.SAT:
            self._last_model = self._extract_model(sat, blaster,
                                                   self.assertions() + list(deltas))
            return CheckResult.SAT
        if sat_result is SatResult.UNSAT:
            self._last_model = None
            failed_lit = sat.failed_assumption
            if failed_lit is not None and any(lit == failed_lit
                                              for _t, lit in delta_pairs):
                self._failed_assumptions = [t for t, lit in delta_pairs
                                            if lit == failed_lit]
                self.stats.assumption_failures += 1
            elif failed_lit is not None and any(frame.act == failed_lit
                                                for frame in self._frames):
                # A frame's activation literal was refuted: the asserted
                # frames themselves are inconsistent, no per-call term is to
                # blame (the documented empty-list contract).
                self._failed_assumptions = []
            else:
                self._note_failure(deltas)
            return CheckResult.UNSAT
        self._last_model = None
        return CheckResult.UNKNOWN

    # -- stats / failure bookkeeping ---------------------------------------------

    def _account_sat_work(self, sat: SatSolver, cnf: CnfBuilder,
                          blaster: BitBlaster, restarts0: int, conflicts0: int,
                          decisions0: int, propagations0: int,
                          clauses0: int, hits0: int) -> None:
        self.stats.sat_calls += 1
        self.stats.restarts += sat.restarts - restarts0
        self.stats.conflicts += sat.conflicts - conflicts0
        self.stats.decisions += sat.decisions - decisions0
        self.stats.propagations += sat.propagations - propagations0
        self.stats.blasted_clauses += cnf.num_clauses - clauses0
        self.stats.blast_hits += blaster.cache_hits - hits0

    def _note_failure(self, deltas: Sequence[Term]) -> None:
        """Record the (unminimized) per-call terms behind an UNSAT answer."""
        if deltas:
            self._failed_assumptions = list(deltas)
            self.stats.assumption_failures += 1

    # -- helpers -------------------------------------------------------------------

    #: Seed patterns used by the model-guessing pre-pass, expressed as
    #: functions of the variable width.
    _GUESS_PATTERNS = (
        lambda width: 0,
        lambda width: 1,
        lambda width: (1 << width) - 1,            # -1 / all ones
        lambda width: 1 << (width - 1),            # INT_MIN
        lambda width: (1 << (width - 1)) - 1,      # INT_MAX
        lambda width: 2,
        lambda width: 0x10,
        lambda width: (1 << width) - 0x10,
    )

    def _guess_model(self, conjunction: Term) -> Optional[Model]:
        """Try a few concrete assignments; return a verified model or None."""
        variables = collect_variables(conjunction)
        if not variables or len(variables) > 24:
            return None
        names = sorted(variables)
        for pattern_index, pattern in enumerate(self._GUESS_PATTERNS):
            assignment: Dict[str, int] = {}
            for offset, name in enumerate(names):
                sort = variables[name]
                width = sort.width if sort.is_bv() else 1
                # Rotate patterns across variables so mixtures get explored.
                chosen = self._GUESS_PATTERNS[
                    (pattern_index + offset) % len(self._GUESS_PATTERNS)]
                value = chosen(width) & ((1 << width) - 1)
                assignment[name] = value if sort.is_bv() else value & 1
            try:
                if self.manager.evaluate(conjunction, assignment):
                    return Model(assignment)
            except (KeyError, NotImplementedError):
                return None
        return None

    def _default_model(self, terms: Sequence[Term]) -> Dict[str, int]:
        """Arbitrary assignment when the formula simplified to ``true``."""
        values: Dict[str, int] = {}
        for term in terms:
            for name, sort in collect_variables(term).items():
                values.setdefault(name, 0)
        return values

    def _extract_model(
        self,
        sat: SatSolver,
        blaster: BitBlaster,
        terms: Sequence[Term],
    ) -> Model:
        values: Dict[str, int] = {}
        for name, bits in blaster.known_bv_variables().items():
            value = 0
            for i, lit in enumerate(bits):
                bit_val = sat.model_value(abs(lit))
                if lit < 0:
                    bit_val = not bit_val
                if bit_val:
                    value |= 1 << i
            values[name] = value
        for name, lit in blaster.known_bool_variables().items():
            bit_val = sat.model_value(abs(lit))
            if lit < 0:
                bit_val = not bit_val
            values[name] = int(bit_val)
        # Variables folded away before blasting get an arbitrary value.
        for term in terms:
            for name, _sort in collect_variables(term).items():
                values.setdefault(name, 0)
        return Model(values)


def is_unsat(manager: TermManager, *terms: Term,
             timeout: Optional[float] = 5.0) -> bool:
    """Convenience helper: True iff the conjunction of ``terms`` is UNSAT."""
    solver = Solver(manager, timeout=timeout)
    for term in terms:
        solver.add(term)
    return solver.check() is CheckResult.UNSAT
