"""Solver facade combining term simplification, bit-blasting, and CDCL SAT.

The :class:`Solver` provides the small slice of an SMT solver API that STACK
needs: assert boolean terms over bit vectors, check satisfiability with a
per-query timeout, and extract models.

Two operating modes exist:

* **scratch** (``incremental=False``) — every ``check`` builds a fresh SAT
  instance from the current assertion set.  Simple, stateless between
  queries, and the reference semantics the incremental mode is tested
  against.
* **incremental** (``incremental=True``) — one SAT instance, one CNF, and
  one bit-blaster persist for the solver's lifetime.  Assertions are guarded
  by per-frame *activation literals*, so ``push``/``pop`` never rebuild CNF:
  a pop permanently asserts the negated activation literal, retiring the
  frame's constraints while keeping every learned clause and every
  bit-blasted encoding.  ``check(assumptions=...)`` passes per-query deltas
  straight to the SAT solver as assumption literals, which is how the
  checker batches the closely related elimination/simplification queries of
  one candidate into one context.

Both modes share the same pre-pass: the asserted conjunction is structurally
simplified (deciding many queries outright) and the oracle chain
(:mod:`repro.solver.backends.oracle`) tries a handful of concrete
assignments before any bit-blasting happens.

Queries that survive the pre-pass are decided either by the in-process CDCL
engine directly (``backend=None``, the default) or by the pluggable backend
layer (:mod:`repro.solver.backends`): ``backend="pysat"`` routes every query
through one named backend, ``portfolio=("builtin", "pysat")`` races several
on the same bit-blasted CNF and takes the first definitive answer.  Backends
must agree on verdicts — models may differ (any satisfying assignment is
acceptable), and failed-assumption attribution in backend mode is uniformly
coarse (every per-call term is blamed), keeping diagnostics byte-identical
across backends.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import (MetricsRegistry, absorb_dataclass,
                               merge_counter_dataclass)
from repro.obs.trace import span
from repro.solver.backends import (BuiltinBackend, PortfolioAnswer,
                                   PortfolioSolver, create_backend, preanswer,
                                   resolve_portfolio)
from repro.solver.bitblast import BitBlaster
from repro.solver.cnf import CnfBuilder
from repro.solver.sat import SatResult, SatSolver
from repro.solver.simplify import simplify
from repro.solver.terms import Op, Term, TermManager, collect_variables


class CheckResult(enum.Enum):
    """Outcome of a satisfiability query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"       # timeout or conflict budget exhausted


@dataclass
class SolverStats:
    """Counters accumulated across all queries issued to a solver.

    The first block counts queries and how they were decided; the second
    block exposes the work the CDCL/bit-blasting layers did, which is what
    makes the incremental-vs-scratch comparison observable in run stats
    (see docs/SOLVER.md for a tuning table).
    """

    queries: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    decided_by_simplification: int = 0
    total_time: float = 0.0

    oracle_sat: int = 0           # queries decided SAT by the oracle pre-pass
    oracle_unsat: int = 0         # queries decided UNSAT by constant folding
    #: Definitive answers credited per backend name (backend mode only).
    backend_wins: Dict[str, int] = field(default_factory=dict)

    sat_calls: int = 0            # queries that reached the CDCL loop
    restarts: int = 0             # CDCL restarts across those calls
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    blasted_clauses: int = 0      # CNF clauses produced by bit-blasting
    blast_hits: int = 0           # term encodings reused from the blast cache
    assumption_failures: int = 0  # UNSAT answers caused by an assumption

    def record(self, result: CheckResult, elapsed: float, simplified: bool) -> None:
        self.queries += 1
        self.total_time += elapsed
        if simplified:
            self.decided_by_simplification += 1
        if result is CheckResult.SAT:
            self.sat += 1
        elif result is CheckResult.UNSAT:
            self.unsat += 1
        else:
            self.unknown += 1

    def merge(self, other: "SolverStats") -> None:
        """Accumulate another stats block into this one.

        Reflection-based (:func:`repro.obs.metrics.merge_counter_dataclass`):
        every numeric field adds and ``backend_wins`` adds per key, so a
        counter added to this dataclass later can never be silently dropped
        (``tests/test_stats_merge.py`` guards this).
        """
        merge_counter_dataclass(self, other)

    def registry(self) -> MetricsRegistry:
        """These counters lifted into the unified metrics registry
        (``solver.<field>`` counters, ``solver.backend_wins.<name>``
        labeled counters)."""
        registry = MetricsRegistry()
        return absorb_dataclass(registry, "solver", self)

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON view used by the engine's result sink.

        The legacy flat schema, read through :meth:`registry`.
        """
        reg = self.registry()
        count = reg.counter
        wins = {name[len("solver.backend_wins."):]: int(value)
                for name, value in reg.counters.items()
                if name.startswith("solver.backend_wins.")}
        return {
            "queries": int(count("solver.queries")),
            "sat": int(count("solver.sat")),
            "unsat": int(count("solver.unsat")),
            "unknown": int(count("solver.unknown")),
            "decided_by_simplification":
                int(count("solver.decided_by_simplification")),
            "total_time": round(count("solver.total_time"), 6),
            "sat_calls": int(count("solver.sat_calls")),
            "restarts": int(count("solver.restarts")),
            "conflicts": int(count("solver.conflicts")),
            "decisions": int(count("solver.decisions")),
            "propagations": int(count("solver.propagations")),
            "blasted_clauses": int(count("solver.blasted_clauses")),
            "blast_hits": int(count("solver.blast_hits")),
            "assumption_failures": int(count("solver.assumption_failures")),
            "oracle_sat": int(count("solver.oracle_sat")),
            "oracle_unsat": int(count("solver.oracle_unsat")),
            "backend_wins": dict(sorted(wins.items())),
        }


class Model:
    """A satisfying assignment mapping variable names to concrete values."""

    def __init__(self, values: Dict[str, int]) -> None:
        self._values = dict(values)

    def __getitem__(self, name: str) -> int:
        return self._values[name]

    def get(self, name: str, default: Optional[int] = None) -> Optional[int]:
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Model({items})"


@dataclass
class _Frame:
    """One assertion frame of the incremental solver.

    ``act`` is the frame's activation literal; it is allocated lazily, the
    first time a term of this frame is encoded.  Every assertion of the
    frame becomes the guarded clause ``(-act ∨ lit)``, and each check
    assumes ``act``; popping the frame permanently asserts ``-act``.
    """

    terms: List[Term] = field(default_factory=list)
    act: Optional[int] = None
    encoded: int = 0              # how many terms are already in the CNF


class Solver:
    """Bit-vector satisfiability solver with an assertion stack.

    Parameters
    ----------
    manager:
        The :class:`TermManager` used to build asserted terms.  A solver may
        also be created without one, in which case it allocates its own.
    timeout:
        Default per-query timeout in seconds (``None`` disables it).  The
        paper uses a 5 second Boolector timeout; the checker passes its own
        configured value through.
    max_conflicts:
        Optional conflict budget per query, an additional determinism-friendly
        resource limit used by tests.
    incremental:
        Keep one SAT instance alive across ``check`` calls: learned clauses
        are retained, bit-blasted encodings are memoized per hash-consed
        term id, and push/pop is implemented with activation literals.  A
        budget-exhausted (UNKNOWN) query leaves the solver reusable.
    backend:
        Route queries through one named backend from
        :data:`repro.solver.backends.BACKENDS` ("builtin", "pysat",
        "dimacs").  Naming an unavailable backend raises.  ``None`` (the
        default) keeps the direct in-process CDCL path.
    portfolio:
        Race several named backends per query; the first definitive
        SAT/UNSAT answer wins, ties break by configured order.  Unavailable
        members are dropped silently (falling back to "builtin" when none
        remain).  Mutually exclusive with ``backend``.
    """

    def __init__(
        self,
        manager: Optional[TermManager] = None,
        timeout: Optional[float] = 5.0,
        max_conflicts: Optional[int] = 200_000,
        incremental: bool = False,
        backend: Optional[str] = None,
        portfolio: Sequence[str] = (),
    ) -> None:
        if backend is not None and portfolio:
            raise ValueError("pass either backend= or portfolio=, not both")
        self.manager = manager if manager is not None else TermManager()
        self.timeout = timeout
        self.max_conflicts = max_conflicts
        self.incremental = incremental
        self.stats = SolverStats()
        self._frames: List[_Frame] = [_Frame()]
        self._last_model: Optional[Model] = None
        self._failed_assumptions: List[Term] = []
        # Backend routing: None means the legacy direct-CDCL paths.
        self._backend_names: Optional[List[str]] = None
        if portfolio:
            self._backend_names = resolve_portfolio(portfolio)
        elif backend is not None:
            self._backend_names = resolve_portfolio([backend], strict=True)
        # Persistent engines (incremental mode), created on first use.
        self._sat: Optional[SatSolver] = None
        self._cnf: Optional[CnfBuilder] = None
        self._blaster: Optional[BitBlaster] = None
        self._portfolio: Optional[PortfolioSolver] = None
        self._simplified: Dict[int, Term] = {}

    @property
    def backend_names(self) -> Optional[List[str]]:
        """Resolved backend order, or None in legacy direct mode."""
        return list(self._backend_names) if self._backend_names else None

    # -- assertion stack --------------------------------------------------------

    def add(self, term: Term) -> None:
        """Assert a boolean term."""
        if not term.sort.is_bool():
            raise TypeError("only boolean terms can be asserted")
        self._frames[-1].terms.append(term)

    def push(self) -> "_Frame":
        """Push a backtracking point; returns an opaque frame token.

        Pass the token back to :meth:`pop` to assert LIFO discipline when
        several callers share one solver.
        """
        frame = _Frame()
        self._frames.append(frame)
        return frame

    def pop(self, expected: Optional["_Frame"] = None) -> None:
        """Pop to the most recent backtracking point.

        In incremental mode the popped frame's activation literal is
        permanently negated, which retires its assertions without discarding
        learned clauses or encodings.  When ``expected`` (a token from
        :meth:`push`) is given, popping anything else raises instead of
        silently retiring another caller's frame.
        """
        if len(self._frames) == 1:
            raise RuntimeError("pop without matching push")
        if expected is not None and self._frames[-1] is not expected:
            raise RuntimeError(
                "pop does not match the pushed frame (non-LIFO use of a "
                "shared solver)")
        frame = self._frames.pop()
        if frame.act is not None and self._cnf is not None:
            self._cnf.add_clause([-frame.act])

    def assertions(self) -> List[Term]:
        out: List[Term] = []
        for frame in self._frames:
            out.extend(frame.terms)
        return out

    def reset(self) -> None:
        """Drop every assertion, frame, and (incremental) solver state."""
        self._frames = [_Frame()]
        self._last_model = None
        self._failed_assumptions = []
        self._sat = None
        self._cnf = None
        self._blaster = None
        if self._portfolio is not None:
            self._portfolio.close()
        self._portfolio = None
        self._simplified = {}

    # -- checking ----------------------------------------------------------------

    def check(
        self,
        extra: Sequence[Term] = (),
        timeout: Optional[float] = None,
        assumptions: Sequence[Term] = (),
    ) -> CheckResult:
        """Decide satisfiability of the asserted terms plus ``extra``.

        ``assumptions`` (and ``extra``, which is treated identically) hold
        only for this call.  In incremental mode they become SAT-level
        assumption literals over the persistent clause database; after an
        UNSAT answer :meth:`failed_assumptions` reports the per-call terms
        the refutation relied on (unminimized — no UNSAT core extraction).
        """
        start = time.monotonic()
        effective_timeout = self.timeout if timeout is None else timeout
        mgr = self.manager
        deltas = list(extra) + list(assumptions)
        self._failed_assumptions = []

        terms = self.assertions() + deltas
        if self.incremental:
            # Per-term simplification is memoized for the solver's lifetime,
            # so repeated checks over a large base only pay dictionary
            # lookups here; conjoining the simplified terms still applies
            # the constructor-level folding (constants, complements) that
            # decides trivial queries outright.
            conjunction = mgr.and_(*[self._simplify_term(t) for t in terms])
        else:
            conjunction = mgr.true()
            for t in terms:
                conjunction = mgr.and_(conjunction, t)
            conjunction = simplify(mgr, conjunction)

        # Oracle pre-pass: constant folding decides either way; the
        # evaluation oracle tries a handful of concrete assignments with
        # the term evaluator before paying for bit-blasting (sound because
        # a verified satisfying assignment is a model; never claims UNSAT).
        oracle = preanswer(mgr, conjunction)
        if oracle is not None:
            if oracle.verdict == "sat":
                self.stats.oracle_sat += 1
                if oracle.reason == "constant":
                    self._last_model = Model(self._default_model(terms))
                else:
                    self._last_model = Model(oracle.assignment)
                self.stats.record(CheckResult.SAT, time.monotonic() - start,
                                  simplified=True)
                return CheckResult.SAT
            self.stats.oracle_unsat += 1
            self._note_failure(deltas)
            self.stats.record(CheckResult.UNSAT, time.monotonic() - start,
                              simplified=True)
            return CheckResult.UNSAT

        if self._backend_names is not None:
            if self.incremental:
                result = self._check_backend_incremental(
                    deltas, effective_timeout, start)
            else:
                result = self._check_backend_scratch(
                    conjunction, terms, deltas, effective_timeout, start)
        elif self.incremental:
            result = self._check_incremental(deltas, effective_timeout, start)
        else:
            result = self._check_scratch(conjunction, terms, deltas,
                                         effective_timeout, start)
        self.stats.record(result, time.monotonic() - start, simplified=False)
        return result

    def model(self) -> Model:
        """Model of the last SAT query."""
        if self._last_model is None:
            raise RuntimeError("no model available; last check was not SAT")
        return self._last_model

    def failed_assumptions(self) -> List[Term]:
        """Per-call terms the last UNSAT answer relied on.

        This is assumption *failure reporting*, not an UNSAT core: the list
        is not minimized.  When the SAT layer identifies the specific
        assumption literal it refuted, the list narrows to the terms that
        produced that literal; otherwise every per-call term is reported.
        An empty list after UNSAT means the asserted frames themselves are
        inconsistent.
        """
        return list(self._failed_assumptions)

    # -- scratch mode ------------------------------------------------------------

    def _check_scratch(self, conjunction: Term, terms: Sequence[Term],
                       deltas: Sequence[Term],
                       effective_timeout: Optional[float],
                       start: float) -> CheckResult:
        sat = SatSolver()
        cnf = CnfBuilder(sat)
        blaster = BitBlaster(cnf)
        blaster.assert_term(conjunction)

        remaining = None
        if effective_timeout is not None:
            remaining = max(0.0, effective_timeout - (time.monotonic() - start))
        sat_result = sat.solve(max_conflicts=self.max_conflicts, timeout=remaining)
        self._account_sat_work(sat, cnf, blaster, 0, 0, 0, 0, 0, 0)

        if sat_result is SatResult.SAT:
            self._last_model = self._extract_model(sat.model_value, blaster,
                                                   terms)
            return CheckResult.SAT
        if sat_result is SatResult.UNSAT:
            self._last_model = None
            self._note_failure(deltas)
            return CheckResult.UNSAT
        self._last_model = None
        return CheckResult.UNKNOWN

    # -- incremental mode --------------------------------------------------------

    def _ensure_engines(self) -> None:
        if self._sat is None:
            self._sat = SatSolver()
            # Backend mode records the clause stream so external engines
            # receive exactly the CNF the in-process solver saw.
            self._cnf = CnfBuilder(self._sat,
                                   record=self._backend_names is not None)
            self._blaster = BitBlaster(self._cnf)

    def _simplify_term(self, term: Term) -> Term:
        cached = self._simplified.get(term.tid)
        if cached is None:
            cached = simplify(self.manager, term)
            self._simplified[term.tid] = cached
        return cached

    def _encode_pending(self) -> None:
        """Encode assertions added since the last check, frame by frame."""
        for frame in self._frames:
            if frame.encoded == len(frame.terms):
                continue
            if frame.act is None:
                frame.act = self._cnf.new_lit()
            for term in frame.terms[frame.encoded:]:
                lit = self._blaster.blast_bool(self._simplify_term(term))
                self._cnf.assert_lit(lit, guard=frame.act)
            frame.encoded = len(frame.terms)

    def _check_incremental(self, deltas: Sequence[Term],
                           effective_timeout: Optional[float],
                           start: float) -> CheckResult:
        self._ensure_engines()
        sat, cnf, blaster = self._sat, self._cnf, self._blaster
        clauses0 = cnf.num_clauses
        hits0 = blaster.cache_hits
        restarts0, conflicts0 = sat.restarts, sat.conflicts
        decisions0, propagations0 = sat.decisions, sat.propagations

        self._encode_pending()
        delta_pairs: List[Tuple[Term, int]] = [
            (term, blaster.blast_bool(self._simplify_term(term)))
            for term in deltas]
        assume = [frame.act for frame in self._frames if frame.act is not None]
        assume.extend(lit for _term, lit in delta_pairs)

        remaining = None
        if effective_timeout is not None:
            remaining = max(0.0, effective_timeout - (time.monotonic() - start))
        sat_result = sat.solve(assumptions=assume,
                               max_conflicts=self.max_conflicts,
                               timeout=remaining)
        self._account_sat_work(sat, cnf, blaster, restarts0, conflicts0,
                               decisions0, propagations0, clauses0, hits0)

        if sat_result is SatResult.SAT:
            self._last_model = self._extract_model(
                sat.model_value, blaster, self.assertions() + list(deltas))
            return CheckResult.SAT
        if sat_result is SatResult.UNSAT:
            self._last_model = None
            failed_lit = sat.failed_assumption
            if failed_lit is not None and any(lit == failed_lit
                                              for _t, lit in delta_pairs):
                self._failed_assumptions = [t for t, lit in delta_pairs
                                            if lit == failed_lit]
                self.stats.assumption_failures += 1
            elif failed_lit is not None and any(frame.act == failed_lit
                                                for frame in self._frames):
                # A frame's activation literal was refuted: the asserted
                # frames themselves are inconsistent, no per-call term is to
                # blame (the documented empty-list contract).
                self._failed_assumptions = []
            else:
                self._note_failure(deltas)
            return CheckResult.UNSAT
        self._last_model = None
        return CheckResult.UNKNOWN

    # -- backend mode --------------------------------------------------------------

    def _make_portfolio(self, sat: SatSolver) -> PortfolioSolver:
        """Instantiate the configured backends around a SAT instance.

        The "builtin" member wraps ``sat`` directly — the CnfBuilder feeds
        it clause by clause as they are produced, so the recorded stream is
        not replayed into it; every other member consumes the recording via
        :meth:`PortfolioSolver.feed`.
        """
        members = []
        for name in self._backend_names:
            if name == "builtin":
                members.append(BuiltinBackend(sat=sat))
            else:
                members.append(create_backend(name))
        return PortfolioSolver(members)

    def _check_backend_scratch(self, conjunction: Term, terms: Sequence[Term],
                               deltas: Sequence[Term],
                               effective_timeout: Optional[float],
                               start: float) -> CheckResult:
        sat = SatSolver()
        cnf = CnfBuilder(sat, record=True)
        blaster = BitBlaster(cnf)
        blaster.assert_term(conjunction)

        portfolio = self._make_portfolio(sat)
        try:
            portfolio.feed(sat.num_vars, cnf.clauses)
            remaining = None
            if effective_timeout is not None:
                remaining = max(0.0,
                                effective_timeout - (time.monotonic() - start))
            # The race winner stays out of the span args on purpose: it is
            # thread-timing dependent, and span identities must not be
            # (wins are still counted in SolverStats.backend_wins).
            with span("solver.race"):
                answer = portfolio.solve(max_conflicts=self.max_conflicts,
                                         timeout=remaining)
        finally:
            portfolio.close()
        self._account_backend_work(answer, cnf, blaster, 0, 0)
        return self._apply_backend_answer(answer, blaster, terms, deltas)

    def _check_backend_incremental(self, deltas: Sequence[Term],
                                   effective_timeout: Optional[float],
                                   start: float) -> CheckResult:
        self._ensure_engines()
        sat, cnf, blaster = self._sat, self._cnf, self._blaster
        clauses0 = cnf.num_clauses
        hits0 = blaster.cache_hits

        self._encode_pending()
        delta_lits = [blaster.blast_bool(self._simplify_term(term))
                      for term in deltas]
        assume = [frame.act for frame in self._frames if frame.act is not None]
        assume.extend(delta_lits)

        if self._portfolio is None:
            self._portfolio = self._make_portfolio(sat)
        # Deliver clauses appended since the last check (cursor-sliced), so
        # persistent external members stay incremental too.
        self._portfolio.feed(sat.num_vars, cnf.clauses)

        remaining = None
        if effective_timeout is not None:
            remaining = max(0.0,
                            effective_timeout - (time.monotonic() - start))
        with span("solver.race"):
            answer = self._portfolio.solve(assume,
                                           max_conflicts=self.max_conflicts,
                                           timeout=remaining)
        self._account_backend_work(answer, cnf, blaster, clauses0, hits0)
        return self._apply_backend_answer(answer, blaster,
                                          self.assertions() + list(deltas),
                                          deltas)

    def _apply_backend_answer(self, answer: PortfolioAnswer,
                              blaster: BitBlaster, terms: Sequence[Term],
                              deltas: Sequence[Term]) -> CheckResult:
        if answer.result is SatResult.SAT:
            self._last_model = self._extract_model(answer.model_value,
                                                   blaster, terms)
            return CheckResult.SAT
        if answer.result is SatResult.UNSAT:
            self._last_model = None
            # Uniform coarse attribution: every per-call term is blamed,
            # independently of which backend answered and of any core it
            # reported — the cross-backend identity contract.
            self._note_failure(deltas)
            return CheckResult.UNSAT
        self._last_model = None
        return CheckResult.UNKNOWN

    def _account_backend_work(self, answer: PortfolioAnswer, cnf: CnfBuilder,
                              blaster: BitBlaster, clauses0: int,
                              hits0: int) -> None:
        self.stats.sat_calls += 1
        work = answer.answer.stats if answer.answer is not None else {}
        self.stats.restarts += work.get("restarts", 0)
        self.stats.conflicts += work.get("conflicts", 0)
        self.stats.decisions += work.get("decisions", 0)
        self.stats.propagations += work.get("propagations", 0)
        self.stats.blasted_clauses += cnf.num_clauses - clauses0
        self.stats.blast_hits += blaster.cache_hits - hits0
        if answer.winner is not None:
            self.stats.backend_wins[answer.winner] = \
                self.stats.backend_wins.get(answer.winner, 0) + 1

    # -- stats / failure bookkeeping ---------------------------------------------

    def _account_sat_work(self, sat: SatSolver, cnf: CnfBuilder,
                          blaster: BitBlaster, restarts0: int, conflicts0: int,
                          decisions0: int, propagations0: int,
                          clauses0: int, hits0: int) -> None:
        self.stats.sat_calls += 1
        self.stats.restarts += sat.restarts - restarts0
        self.stats.conflicts += sat.conflicts - conflicts0
        self.stats.decisions += sat.decisions - decisions0
        self.stats.propagations += sat.propagations - propagations0
        self.stats.blasted_clauses += cnf.num_clauses - clauses0
        self.stats.blast_hits += blaster.cache_hits - hits0

    def _note_failure(self, deltas: Sequence[Term]) -> None:
        """Record the (unminimized) per-call terms behind an UNSAT answer."""
        if deltas:
            self._failed_assumptions = list(deltas)
            self.stats.assumption_failures += 1

    # -- helpers -------------------------------------------------------------------

    def _default_model(self, terms: Sequence[Term]) -> Dict[str, int]:
        """Arbitrary assignment when the formula simplified to ``true``."""
        values: Dict[str, int] = {}
        for term in terms:
            for name, sort in collect_variables(term).items():
                values.setdefault(name, 0)
        return values

    def _extract_model(
        self,
        model_value,
        blaster: BitBlaster,
        terms: Sequence[Term],
    ) -> Model:
        """Rebuild named values from ``model_value`` (a var → bool callable).

        Works over any backend's assignment — the builtin solver's
        ``model_value`` method or a :class:`PortfolioAnswer`'s.
        """
        values: Dict[str, int] = {}
        for name, bits in blaster.known_bv_variables().items():
            value = 0
            for i, lit in enumerate(bits):
                bit_val = model_value(abs(lit))
                if lit < 0:
                    bit_val = not bit_val
                if bit_val:
                    value |= 1 << i
            values[name] = value
        for name, lit in blaster.known_bool_variables().items():
            bit_val = model_value(abs(lit))
            if lit < 0:
                bit_val = not bit_val
            values[name] = int(bit_val)
        # Variables folded away before blasting get an arbitrary value.
        for term in terms:
            for name, _sort in collect_variables(term).items():
                values.setdefault(name, 0)
        return Model(values)


def is_unsat(manager: TermManager, *terms: Term,
             timeout: Optional[float] = 5.0) -> bool:
    """Convenience helper: True iff the conjunction of ``terms`` is UNSAT."""
    solver = Solver(manager, timeout=timeout)
    for term in terms:
        solver.add(term)
    return solver.check() is CheckResult.UNSAT
