"""CNF construction helpers for the bit-blaster.

The :class:`CnfBuilder` wraps a :class:`~repro.solver.sat.SatSolver` and
offers Tseitin-style gate encodings over SAT literals.  Literals follow the
DIMACS convention (positive/negative ints); the special constants ``TRUE``
and ``FALSE`` are represented by a dedicated root-level variable so that gate
encoders never need to special-case them.

With ``record=True`` the builder additionally keeps every emitted clause in
:attr:`CnfBuilder.clauses`, which is how the solver backends
(:mod:`repro.solver.backends`) are fed: external engines receive the exact
clause stream the in-process solver saw.  :func:`emit_dimacs` /
:func:`parse_dimacs` convert that stream to and from DIMACS text with a
*stable, sorted variable numbering* — variables are renumbered ``1..n`` in
ascending order of their original index and literals are sorted within each
clause — so two runs that blast the same terms export byte-identical files
(the property the cross-backend differential suite diffs on).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.solver.sat import SatSolver


def emit_dimacs(clauses: Sequence[Sequence[int]],
                num_vars: Optional[int] = None,
                comment: Optional[str] = None,
                canonical: bool = True) -> str:
    """Render clauses as DIMACS CNF text with canonical numbering.

    With ``canonical=True`` variables are renumbered ``1..n`` by ascending
    original index; either way the literals of each clause are sorted by
    (variable, polarity) and clause order is preserved.  Canonical output
    is therefore byte-identical across runs and across allocation gaps,
    which makes exported queries comparable between backends and between
    runs.  ``canonical=False`` keeps the original numbering — used when
    the produced model must be read back in the caller's variable space
    (the ``dimacs`` backend's solving path).
    """
    used = sorted({abs(lit) for clause in clauses for lit in clause})
    if canonical:
        remap = {var: index + 1 for index, var in enumerate(used)}
        if num_vars is None:
            num_vars = len(used)
    else:
        remap = {var: var for var in used}
        if num_vars is None:
            num_vars = used[-1] if used else 0
    lines = []
    if comment:
        for part in comment.splitlines():
            lines.append(f"c {part}")
    lines.append(f"p cnf {num_vars} {len(clauses)}")
    for clause in clauses:
        mapped = sorted(
            ((1 if lit > 0 else -1) * remap[abs(lit)] for lit in clause),
            key=lambda lit: (abs(lit), lit < 0))
        lines.append(" ".join(str(lit) for lit in mapped) + " 0")
    return "\n".join(lines) + "\n"


def parse_dimacs(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF text into ``(num_vars, clauses)``.

    Tolerates comments, blank lines, and clauses spanning multiple lines
    (terminated by ``0``, per the format).
    """
    num_vars = 0
    clauses: List[List[int]] = []
    current: List[int] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 4 or parts[1] != "cnf":
                raise ValueError(f"malformed DIMACS problem line: {line!r}")
            num_vars = int(parts[2])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
                num_vars = max(num_vars, abs(lit))
    if current:
        clauses.append(current)
    return num_vars, clauses


class CnfBuilder:
    """Builds CNF clauses incrementally on top of a SAT solver."""

    def __init__(self, sat: SatSolver, record: bool = False) -> None:
        self.sat = sat
        self.num_clauses = 0
        #: Verbatim clause stream (only populated with ``record=True``);
        #: append-only, so backends can consume it with a cursor.
        self.clauses: List[List[int]] = []
        self._record = record
        # A variable constrained to true; its negation encodes false.
        self._true = sat.new_var()
        self.add_clause([self._true])

    @property
    def true_lit(self) -> int:
        return self._true

    @property
    def false_lit(self) -> int:
        return -self._true

    # -- raw interface -------------------------------------------------------

    def new_lit(self) -> int:
        return self.sat.new_var()

    def add_clause(self, lits: Sequence[int]) -> None:
        self.num_clauses += 1
        if self._record:
            self.clauses.append(list(lits))
        self.sat.add_clause(list(lits))

    # -- constant handling ----------------------------------------------------

    def const(self, value: bool) -> int:
        return self._true if value else -self._true

    def is_const(self, lit: int) -> bool:
        return abs(lit) == self._true

    def const_value(self, lit: int) -> bool:
        return lit == self._true

    # -- gates ------------------------------------------------------------------

    def not_gate(self, a: int) -> int:
        return -a

    def and_gate(self, a: int, b: int) -> int:
        if self.is_const(a):
            return b if self.const_value(a) else self.false_lit
        if self.is_const(b):
            return a if self.const_value(b) else self.false_lit
        if a == b:
            return a
        if a == -b:
            return self.false_lit
        out = self.new_lit()
        self.add_clause([-out, a])
        self.add_clause([-out, b])
        self.add_clause([out, -a, -b])
        return out

    def or_gate(self, a: int, b: int) -> int:
        return -self.and_gate(-a, -b)

    def xor_gate(self, a: int, b: int) -> int:
        if self.is_const(a):
            return -b if self.const_value(a) else b
        if self.is_const(b):
            return -a if self.const_value(b) else a
        if a == b:
            return self.false_lit
        if a == -b:
            return self.true_lit
        out = self.new_lit()
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])
        return out

    def mux_gate(self, sel: int, then: int, els: int) -> int:
        """Return ``sel ? then : els``."""
        if self.is_const(sel):
            return then if self.const_value(sel) else els
        if then == els:
            return then
        out = self.new_lit()
        self.add_clause([-out, -sel, then])
        self.add_clause([-out, sel, els])
        self.add_clause([out, -sel, -then])
        self.add_clause([out, sel, -els])
        return out

    def and_many(self, lits: Iterable[int]) -> int:
        out = self.true_lit
        for lit in lits:
            out = self.and_gate(out, lit)
        return out

    def or_many(self, lits: Iterable[int]) -> int:
        out = self.false_lit
        for lit in lits:
            out = self.or_gate(out, lit)
        return out

    # -- arithmetic primitives -----------------------------------------------

    def half_adder(self, a: int, b: int) -> tuple[int, int]:
        """Return (sum, carry)."""
        return self.xor_gate(a, b), self.and_gate(a, b)

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Return (sum, carry-out)."""
        s1, c1 = self.half_adder(a, b)
        s2, c2 = self.half_adder(s1, cin)
        return s2, self.or_gate(c1, c2)

    def equal_gate(self, a_bits: Sequence[int], b_bits: Sequence[int]) -> int:
        diff = [self.xor_gate(a, b) for a, b in zip(a_bits, b_bits)]
        return -self.or_many(diff)

    def assert_lit(self, lit: int, guard: Optional[int] = None) -> None:
        """Force a literal to be true.

        With ``guard`` (an activation literal) the assertion only takes
        effect while ``guard`` is assumed true: the clause added is
        ``(-guard ∨ lit)``, and permanently asserting ``-guard`` later
        retires the assertion without touching the clause database — this is
        how the incremental :class:`~repro.solver.solver.Solver` implements
        push/pop without CNF rebuilds.
        """
        if guard is None:
            self.add_clause([lit])
        else:
            self.add_clause([-guard, lit])
