"""CNF construction helpers for the bit-blaster.

The :class:`CnfBuilder` wraps a :class:`~repro.solver.sat.SatSolver` and
offers Tseitin-style gate encodings over SAT literals.  Literals follow the
DIMACS convention (positive/negative ints); the special constants ``TRUE``
and ``FALSE`` are represented by a dedicated root-level variable so that gate
encoders never need to special-case them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.solver.sat import SatSolver


class CnfBuilder:
    """Builds CNF clauses incrementally on top of a SAT solver."""

    def __init__(self, sat: SatSolver) -> None:
        self.sat = sat
        self.num_clauses = 0
        # A variable constrained to true; its negation encodes false.
        self._true = sat.new_var()
        self.add_clause([self._true])

    @property
    def true_lit(self) -> int:
        return self._true

    @property
    def false_lit(self) -> int:
        return -self._true

    # -- raw interface -------------------------------------------------------

    def new_lit(self) -> int:
        return self.sat.new_var()

    def add_clause(self, lits: Sequence[int]) -> None:
        self.num_clauses += 1
        self.sat.add_clause(list(lits))

    # -- constant handling ----------------------------------------------------

    def const(self, value: bool) -> int:
        return self._true if value else -self._true

    def is_const(self, lit: int) -> bool:
        return abs(lit) == self._true

    def const_value(self, lit: int) -> bool:
        return lit == self._true

    # -- gates ------------------------------------------------------------------

    def not_gate(self, a: int) -> int:
        return -a

    def and_gate(self, a: int, b: int) -> int:
        if self.is_const(a):
            return b if self.const_value(a) else self.false_lit
        if self.is_const(b):
            return a if self.const_value(b) else self.false_lit
        if a == b:
            return a
        if a == -b:
            return self.false_lit
        out = self.new_lit()
        self.add_clause([-out, a])
        self.add_clause([-out, b])
        self.add_clause([out, -a, -b])
        return out

    def or_gate(self, a: int, b: int) -> int:
        return -self.and_gate(-a, -b)

    def xor_gate(self, a: int, b: int) -> int:
        if self.is_const(a):
            return -b if self.const_value(a) else b
        if self.is_const(b):
            return -a if self.const_value(b) else a
        if a == b:
            return self.false_lit
        if a == -b:
            return self.true_lit
        out = self.new_lit()
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])
        return out

    def mux_gate(self, sel: int, then: int, els: int) -> int:
        """Return ``sel ? then : els``."""
        if self.is_const(sel):
            return then if self.const_value(sel) else els
        if then == els:
            return then
        out = self.new_lit()
        self.add_clause([-out, -sel, then])
        self.add_clause([-out, sel, els])
        self.add_clause([out, -sel, -then])
        self.add_clause([out, sel, -els])
        return out

    def and_many(self, lits: Iterable[int]) -> int:
        out = self.true_lit
        for lit in lits:
            out = self.and_gate(out, lit)
        return out

    def or_many(self, lits: Iterable[int]) -> int:
        out = self.false_lit
        for lit in lits:
            out = self.or_gate(out, lit)
        return out

    # -- arithmetic primitives -----------------------------------------------

    def half_adder(self, a: int, b: int) -> tuple[int, int]:
        """Return (sum, carry)."""
        return self.xor_gate(a, b), self.and_gate(a, b)

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Return (sum, carry-out)."""
        s1, c1 = self.half_adder(a, b)
        s2, c2 = self.half_adder(s1, cin)
        return s2, self.or_gate(c1, c2)

    def equal_gate(self, a_bits: Sequence[int], b_bits: Sequence[int]) -> int:
        diff = [self.xor_gate(a, b) for a, b in zip(a_bits, b_bits)]
        return -self.or_many(diff)

    def assert_lit(self, lit: int, guard: Optional[int] = None) -> None:
        """Force a literal to be true.

        With ``guard`` (an activation literal) the assertion only takes
        effect while ``guard`` is assumed true: the clause added is
        ``(-guard ∨ lit)``, and permanently asserting ``-guard`` later
        retires the assertion without touching the clause database — this is
        how the incremental :class:`~repro.solver.solver.Solver` implements
        push/pop without CNF rebuilds.
        """
        if guard is None:
            self.add_clause([lit])
        else:
            self.add_clause([-guard, lit])
