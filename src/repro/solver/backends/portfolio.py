"""Racing several SAT backends on one query.

A :class:`PortfolioSolver` owns an ordered list of backends that all see
the same clause stream (:meth:`feed` keeps a cursor into the facade's
recorded CNF so each clause is delivered exactly once).  :meth:`solve`
races them on a thread pool: the first *definitive* answer (SAT or UNSAT)
wins, the losers are interrupted, and ties are broken deterministically by
configured backend order — so the winning backend, the chosen model, and
the per-backend win counters do not depend on thread scheduling whenever
more than one backend finishes.  UNKNOWN is returned only when every
backend exhausted its budget.

Definitive answers that *disagree* raise :class:`BackendDisagreement`
instead of picking one — verdict identity across backends is the solver
contract, and a divergence is a soundness bug that must never be papered
over.

With a single member the race degenerates to a plain in-thread call, which
is how ``Solver(backend="pysat")`` runs.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.solver.backends.base import BackendAnswer, SolverBackend
from repro.solver.sat import SatResult

_DEFINITIVE = (SatResult.SAT, SatResult.UNSAT)


class BackendDisagreement(RuntimeError):
    """Two backends returned contradicting definitive verdicts."""


@dataclass
class PortfolioAnswer:
    """The merged outcome of one portfolio race."""

    result: SatResult
    #: The winning backend's answer (model access); None when UNKNOWN.
    answer: Optional[BackendAnswer]
    #: Name of the winning backend; None when every backend was UNKNOWN.
    winner: Optional[str]
    #: Every backend's verdict, by name, for stats and diagnostics.
    verdicts: Dict[str, str] = field(default_factory=dict)

    def model_value(self, var: int) -> bool:
        return self.answer.model_value(var) if self.answer is not None else False


class PortfolioSolver:
    """Feeds one clause stream to N backends and races them per query."""

    def __init__(self, members: Sequence[SolverBackend]) -> None:
        if not members:
            raise ValueError("a portfolio needs at least one backend")
        self.members: List[SolverBackend] = list(members)
        self._fed = 0

    @property
    def names(self) -> List[str]:
        return [member.name for member in self.members]

    def feed(self, num_vars: int,
             clauses: Sequence[Sequence[int]]) -> None:
        """Deliver clauses appended since the last feed to every member."""
        new = clauses[self._fed:]
        for member in self.members:
            member.ensure_vars(num_vars)
            if new:
                member.add_clauses(new)
        self._fed = len(clauses)

    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None,
              timeout: Optional[float] = None) -> PortfolioAnswer:
        if len(self.members) == 1:
            member = self.members[0]
            answer = member.solve(assumptions, max_conflicts=max_conflicts,
                                  timeout=timeout)
            return self._merge([(member, answer)])

        with concurrent.futures.ThreadPoolExecutor(
                max_workers=len(self.members),
                thread_name_prefix="repro-portfolio") as pool:
            futures = {
                pool.submit(member.solve, list(assumptions),
                            max_conflicts=max_conflicts, timeout=timeout): member
                for member in self.members}
            pending = set(futures)
            interrupted = False
            while pending:
                done, pending = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED)
                if interrupted:
                    continue
                for future in done:
                    answer = self._outcome(future)
                    if answer is not None and answer.result in _DEFINITIVE:
                        # Cancel the losers; keep draining so every member
                        # lands in a reusable state before we return.
                        for other in pending:
                            futures[other].interrupt()
                        interrupted = True
                        break

        outcomes = []
        for member in self.members:          # configured order == tie-break
            future = next(f for f, m in futures.items() if m is member)
            outcomes.append((member, self._outcome(future)))
        return self._merge(outcomes)

    def interrupt(self) -> None:
        for member in self.members:
            member.interrupt()

    def close(self) -> None:
        for member in self.members:
            member.close()

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _outcome(future) -> Optional[BackendAnswer]:
        """A member's answer; a crashed backend counts as no answer."""
        exc = future.exception()
        if exc is not None:
            return None
        return future.result()

    def _merge(self, outcomes) -> PortfolioAnswer:
        verdicts: Dict[str, str] = {}
        winner = None
        winning: Optional[BackendAnswer] = None
        for member, answer in outcomes:
            verdicts[member.name] = "error" if answer is None \
                else answer.result.value
            if answer is None or answer.result not in _DEFINITIVE:
                continue
            if winning is None:
                winner, winning = member.name, answer
            elif winning.result is not answer.result:
                raise BackendDisagreement(
                    f"backends disagree: {winner} says "
                    f"{winning.result.value}, {member.name} says "
                    f"{answer.result.value}")
        if winning is None:
            return PortfolioAnswer(result=SatResult.UNKNOWN, answer=None,
                                   winner=None, verdicts=verdicts)
        return PortfolioAnswer(result=winning.result, answer=winning,
                               winner=winner, verdicts=verdicts)
