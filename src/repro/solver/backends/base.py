"""The pluggable SAT-backend contract.

A :class:`SolverBackend` decides one bit-blasted CNF query: the facade
(:class:`repro.solver.solver.Solver`) owns terms, simplification, the oracle
pre-answer stage, and bit-blasting; a backend only ever sees DIMACS-style
integer literals.  The contract is deliberately small so that radically
different engines fit behind it — the in-process CDCL solver, CaDiCaL via
``python-sat``, or any DIMACS-speaking binary reached over a pipe:

* **clauses** arrive incrementally via :meth:`add_clauses` (append-only; the
  facade never retracts — retired assertions are guarded by activation
  literals exactly as in the builtin incremental mode),
* **assume** — :meth:`solve` takes per-call assumption literals,
* **budget** — per-call ``max_conflicts`` and wall-clock ``timeout``; a
  backend that cannot honor a budget kind treats it as unlimited (the
  answer is still sound, just possibly more expensive),
* **stats** — every answer carries a plain-int counter dict so per-backend
  work lands in :class:`~repro.solver.solver.SolverStats` and the JSONL
  sink.

Verdict identity is the hard contract: for the same clause set and
assumptions, every backend must return the same SAT/UNSAT status (UNKNOWN
is always permitted under an exhausted budget).  Models may differ between
backends — any satisfying assignment is acceptable — and failure
attribution is *not* part of the backend contract: the facade blames every
per-call term on UNSAT (the coarse, backend-independent rule documented in
``docs/SOLVER.md``), so ``failed_assumptions()`` is byte-identical across
backends by construction.  ``BackendAnswer.failed`` exists for diagnostics
only.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.solver.sat import SatResult


@dataclass
class BackendAnswer:
    """One backend's answer to one solve call."""

    result: SatResult
    #: Variable assignment (var -> bool) when SAT; unset variables default
    #: to False at model-extraction time.  None for UNSAT/UNKNOWN.
    model: Optional[Dict[int, bool]] = None
    #: Assumption literals the backend attributes an UNSAT answer to, when
    #: it can tell (diagnostic only — not part of the verdict contract).
    failed: Optional[List[int]] = None
    #: Backend-specific work counters (conflicts, decisions, ...).
    stats: Dict[str, int] = field(default_factory=dict)

    def model_value(self, var: int) -> bool:
        """Model accessor mirroring :meth:`SatSolver.model_value`."""
        if self.model is None:
            return False
        return bool(self.model.get(var, False))


class SolverBackend(abc.ABC):
    """Abstract SAT backend: append clauses, solve under assumptions."""

    #: Registry/report name ("builtin", "pysat", "dimacs", ...).
    name: str = "?"

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    @abc.abstractmethod
    def ensure_vars(self, num_vars: int) -> None:
        """Make variables ``1..num_vars`` known to the backend."""

    @abc.abstractmethod
    def add_clauses(self, clauses: Sequence[Sequence[int]]) -> None:
        """Append clauses (DIMACS literals) to the backend's database."""

    @abc.abstractmethod
    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None,
              timeout: Optional[float] = None) -> BackendAnswer:
        """Decide the clause database under per-call assumptions/budgets."""

    def interrupt(self) -> None:
        """Best-effort cancellation of an in-flight :meth:`solve`.

        Called from another thread when a portfolio race has a definitive
        answer; a backend that cannot be interrupted simply finishes.
        """

    def close(self) -> None:
        """Release external resources (processes, native solver handles)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
