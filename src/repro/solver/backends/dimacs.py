"""Subprocess backend: any DIMACS-speaking solver binary.

``REPRO_SAT_BINARY`` names the command (shell-style, so arguments are
allowed — e.g. ``"python -m repro.solver.backends.selfsolve"`` drives the
bundled reference solver, and ``"cadical -q"`` or ``"kissat"`` drive real
ones).  Each solve writes the accumulated clause database plus the per-call
assumptions (as unit clauses) to a temporary CNF file, invokes the command
with that path as its last argument, and parses SAT-competition output:
the ``s SATISFIABLE`` / ``s UNSATISFIABLE`` / ``s UNKNOWN`` status line
(exit codes 10/20 are also honored) and ``v`` model lines.

The backend is stateless across calls from the binary's point of view —
assumptions cannot be retracted any other way through a pipe — so it pays
a full re-solve per query.  That is the price of total pluggability; the
portfolio layer makes it a racing participant rather than a bottleneck.
``max_conflicts`` cannot be forwarded portably and is ignored; ``timeout``
is enforced by killing the process (answer: UNKNOWN).
"""

from __future__ import annotations

import os
import shlex
import subprocess
import tempfile
import threading
from typing import Dict, List, Optional, Sequence

from repro.solver.backends.base import BackendAnswer, SolverBackend
from repro.solver.cnf import emit_dimacs
from repro.solver.sat import SatResult

#: Environment variable naming the external solver command.
SAT_BINARY_ENV = "REPRO_SAT_BINARY"


def parse_solver_output(text: str) -> "tuple[Optional[SatResult], Dict[int, bool]]":
    """Parse SAT-competition style output into (status, model)."""
    status: Optional[SatResult] = None
    model: Dict[int, bool] = {}
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("s "):
            verdict = line[2:].strip().upper()
            if verdict == "SATISFIABLE":
                status = SatResult.SAT
            elif verdict == "UNSATISFIABLE":
                status = SatResult.UNSAT
            else:
                status = SatResult.UNKNOWN
        elif line.startswith("v ") or line == "v":
            for token in line[1:].split():
                lit = int(token)
                if lit != 0:
                    model[abs(lit)] = lit > 0
    return status, model


class DimacsBackend(SolverBackend):
    """Adapter around an external DIMACS solver process."""

    name = "dimacs"

    def __init__(self, command: Optional[str] = None) -> None:
        command = command if command is not None \
            else os.environ.get(SAT_BINARY_ENV, "")
        if not command:
            raise RuntimeError(
                "the 'dimacs' backend needs a solver command in the "
                f"{SAT_BINARY_ENV} environment variable")
        self.command = shlex.split(command)
        self._clauses: List[List[int]] = []
        self._num_vars = 0
        self._lock = threading.Lock()
        self._process: Optional[subprocess.Popen] = None

    @classmethod
    def available(cls) -> bool:
        return bool(os.environ.get(SAT_BINARY_ENV))

    # -- contract ----------------------------------------------------------------

    def ensure_vars(self, num_vars: int) -> None:
        self._num_vars = max(self._num_vars, num_vars)

    def add_clauses(self, clauses: Sequence[Sequence[int]]) -> None:
        for clause in clauses:
            self._clauses.append(list(clause))

    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None,
              timeout: Optional[float] = None) -> BackendAnswer:
        clauses = self._clauses + [[lit] for lit in assumptions]
        num_vars = max([self._num_vars]
                       + [abs(lit) for c in clauses for lit in c] or [0])
        text = emit_dimacs(clauses, num_vars=num_vars, canonical=False)

        path = None
        try:
            with tempfile.NamedTemporaryFile(
                    "w", suffix=".cnf", delete=False, encoding="utf-8") as cnf:
                cnf.write(text)
                path = cnf.name
            with self._lock:
                self._process = subprocess.Popen(
                    self.command + [path],
                    stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                    text=True)
            process = self._process
            try:
                stdout, _ = process.communicate(timeout=timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                process.communicate()
                return BackendAnswer(result=SatResult.UNKNOWN,
                                     stats={"solves": 1})
        except OSError as exc:
            raise RuntimeError(
                f"dimacs backend failed to run {self.command[0]!r}: {exc}")
        finally:
            with self._lock:
                self._process = None
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass

        status, model = parse_solver_output(stdout or "")
        if status is None:
            # No status line: fall back to the 10/20 exit-code convention.
            if process.returncode == 10:
                status = SatResult.SAT
            elif process.returncode == 20:
                status = SatResult.UNSAT
            else:
                status = SatResult.UNKNOWN
        if status is SatResult.SAT:
            return BackendAnswer(result=SatResult.SAT, model=model,
                                 stats={"solves": 1})
        return BackendAnswer(result=status, stats={"solves": 1})

    def interrupt(self) -> None:
        with self._lock:
            if self._process is not None and self._process.poll() is None:
                self._process.kill()
