"""The builtin backend: the in-process CDCL solver behind the contract.

Two construction modes:

* ``BuiltinBackend()`` owns a fresh :class:`~repro.solver.sat.SatSolver`
  and consumes the clause stream via :meth:`add_clauses` like any other
  backend (how portfolio tests and standalone races use it).
* ``BuiltinBackend(sat=solver)`` wraps an *externally fed* solver — the
  facade's own SAT instance, which already receives every clause directly
  through its :class:`~repro.solver.cnf.CnfBuilder`.  ``add_clauses`` is a
  no-op then, so the shared clause stream is not applied twice.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from repro.solver.backends.base import BackendAnswer, SolverBackend
from repro.solver.sat import SatResult, SatSolver


class BuiltinBackend(SolverBackend):
    """Adapter around the dependency-free incremental CDCL solver."""

    name = "builtin"

    def __init__(self, sat: Optional[SatSolver] = None) -> None:
        self._external = sat is not None
        self.sat = sat if sat is not None else SatSolver()
        self._stop = threading.Event()

    def ensure_vars(self, num_vars: int) -> None:
        while self.sat.num_vars < num_vars:
            self.sat.new_var()

    def add_clauses(self, clauses: Sequence[Sequence[int]]) -> None:
        if self._external:
            return  # the wrapped solver is fed directly by its CnfBuilder
        for clause in clauses:
            self.sat.add_clause(list(clause))

    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None,
              timeout: Optional[float] = None) -> BackendAnswer:
        self._stop.clear()
        sat = self.sat
        conflicts0, decisions0 = sat.conflicts, sat.decisions
        propagations0, restarts0 = sat.propagations, sat.restarts
        result = sat.solve(assumptions=list(assumptions),
                           max_conflicts=max_conflicts, timeout=timeout,
                           stop=self._stop)
        stats = {
            "conflicts": sat.conflicts - conflicts0,
            "decisions": sat.decisions - decisions0,
            "propagations": sat.propagations - propagations0,
            "restarts": sat.restarts - restarts0,
        }
        model = sat.model() if result is SatResult.SAT else None
        failed = None
        if result is SatResult.UNSAT and sat.failed_assumption is not None:
            failed = [sat.failed_assumption]
        return BackendAnswer(result=result, model=model, failed=failed,
                             stats=stats)

    def interrupt(self) -> None:
        self._stop.set()
