"""Pluggable SAT backends and the portfolio racer.

The registry maps backend names to classes; :func:`available_backends`
filters it down to what the current environment can actually run (the
``pysat`` entry needs the python-sat package, ``dimacs`` needs a solver
command in ``REPRO_SAT_BINARY``).  The :class:`~repro.solver.solver.Solver`
facade resolves names through :func:`create_backend` and races multiple
backends with :class:`PortfolioSolver`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.solver.backends.base import BackendAnswer, SolverBackend
from repro.solver.backends.builtin import BuiltinBackend
from repro.solver.backends.dimacs import SAT_BINARY_ENV, DimacsBackend
from repro.solver.backends.oracle import (GUESS_PATTERNS, MAX_GUESS_VARIABLES,
                                          OracleAnswer, constant_answer,
                                          evaluation_answer, preanswer)
from repro.solver.backends.portfolio import (BackendDisagreement,
                                             PortfolioAnswer, PortfolioSolver)
from repro.solver.backends.pysat_backend import PysatBackend

#: Name → class registry, in default preference order.
BACKENDS: Dict[str, Type[SolverBackend]] = {
    "builtin": BuiltinBackend,
    "pysat": PysatBackend,
    "dimacs": DimacsBackend,
}


def available_backends() -> List[str]:
    """Names of the backends the current environment can instantiate."""
    return [name for name, cls in BACKENDS.items() if cls.available()]


def create_backend(name: str, **kwargs) -> SolverBackend:
    """Instantiate a backend by registry name.

    Raises :class:`ValueError` for names not in the registry and
    :class:`RuntimeError` when the named backend exists but cannot run
    here (missing package / unset environment).
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown solver backend {name!r} (known: {known})")
    return cls(**kwargs)


def resolve_portfolio(names: Sequence[str],
                      strict: bool = False) -> List[str]:
    """Filter a portfolio spec down to backends that can run here.

    Unavailable members are dropped silently (``strict=False``, the
    portfolio policy: racing degrades gracefully); with ``strict=True`` an
    unavailable name raises, which is the single-``backend=`` policy.
    Falls back to ``["builtin"]`` when nothing in the spec is available.
    """
    resolved: List[str] = []
    for name in names:
        if name not in BACKENDS:
            known = ", ".join(sorted(BACKENDS))
            raise ValueError(
                f"unknown solver backend {name!r} (known: {known})")
        if BACKENDS[name].available():
            resolved.append(name)
        elif strict:
            raise RuntimeError(f"solver backend {name!r} is not available "
                               "in this environment")
    return resolved or ["builtin"]


__all__ = [
    "BACKENDS",
    "BackendAnswer",
    "BackendDisagreement",
    "BuiltinBackend",
    "DimacsBackend",
    "GUESS_PATTERNS",
    "MAX_GUESS_VARIABLES",
    "OracleAnswer",
    "PortfolioAnswer",
    "PortfolioSolver",
    "PysatBackend",
    "SAT_BINARY_ENV",
    "SolverBackend",
    "available_backends",
    "constant_answer",
    "create_backend",
    "evaluation_answer",
    "preanswer",
    "resolve_portfolio",
]
