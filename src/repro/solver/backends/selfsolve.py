"""Reference DIMACS solver CLI: ``python -m repro.solver.backends.selfsolve``.

Reads one DIMACS CNF file (or stdin when the argument is ``-``), decides it
with the builtin CDCL solver, and speaks SAT-competition output — an
``s`` status line, ``v`` model lines, exit code 10/20.  Two jobs:

* a real, dependency-free target for the ``dimacs`` backend — pointing
  ``REPRO_SAT_BINARY`` at this module exercises the whole subprocess path
  (emit → parse → solve → model read-back) on any machine, which is how
  the differential suite covers the backend without a native solver;
* a template for wiring an actual binary: anything that produces the same
  four lines of protocol drops in unchanged.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.solver.cnf import parse_dimacs
from repro.solver.sat import SatResult, SatSolver


def solve_dimacs_text(text: str) -> "tuple[SatResult, List[int]]":
    """Solve DIMACS text; return (status, signed model literals)."""
    num_vars, clauses = parse_dimacs(text)
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()
    model: List[int] = []
    if result is SatResult.SAT:
        model = [var if solver.model_value(var) else -var
                 for var in range(1, num_vars + 1)]
    return result, model


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.solver.backends.selfsolve FILE.cnf",
              file=sys.stderr)
        return 1
    if argv[0] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[0], "r", encoding="utf-8") as handle:
            text = handle.read()

    result, model = solve_dimacs_text(text)
    if result is SatResult.SAT:
        print("s SATISFIABLE")
        # Model literals in chunks, each v-line 0-terminated on the last.
        for start in range(0, len(model), 16):
            chunk = model[start:start + 16]
            tail = " 0" if start + 16 >= len(model) else ""
            print("v " + " ".join(str(lit) for lit in chunk) + tail)
        if not model:
            print("v 0")
        return 10
    if result is SatResult.UNSAT:
        print("s UNSATISFIABLE")
        return 20
    print("s UNKNOWN")
    return 0


if __name__ == "__main__":
    sys.exit(main())
