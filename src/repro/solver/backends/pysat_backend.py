"""CaDiCaL (and friends) via ``python-sat``, behind the backend contract.

The import is optional: :meth:`PysatBackend.available` answers False on a
stock install and the registry simply skips the backend, so tier-1 stays
dependency-free.  When ``python-sat`` is present the backend keeps one
native solver alive for the facade's lifetime and feeds it the recorded
clause stream incrementally — CaDiCaL's own incremental interface does the
rest (assumptions, learned-clause retention).

Budgets: ``max_conflicts`` maps to ``conf_budget``/``solve_limited`` where
the chosen engine supports limited solving, and ``timeout`` is enforced
with a timer that calls ``interrupt()``.  Engines without those hooks fall
back to an unbounded ``solve`` — sound, just not budgeted.

``REPRO_PYSAT_SOLVER`` selects the engine name (default ``cadical195``,
the ZK-ARCKIT-style bootstrap choice).
"""

from __future__ import annotations

import importlib.util
import os
import threading
from typing import Optional, Sequence

from repro.solver.backends.base import BackendAnswer, SolverBackend
from repro.solver.sat import SatResult

#: Environment variable naming the pysat engine to instantiate.
PYSAT_SOLVER_ENV = "REPRO_PYSAT_SOLVER"
DEFAULT_PYSAT_SOLVER = "cadical195"


class PysatBackend(SolverBackend):
    """Adapter around a ``pysat.solvers.Solver`` instance."""

    name = "pysat"

    def __init__(self, solver_name: Optional[str] = None) -> None:
        if not self.available():
            raise RuntimeError(
                "the 'pysat' backend requires the python-sat package "
                "(pip install python-sat)")
        from pysat.solvers import Solver as _PysatSolver

        self.solver_name = solver_name or os.environ.get(
            PYSAT_SOLVER_ENV, DEFAULT_PYSAT_SOLVER)
        self._solver = _PysatSolver(name=self.solver_name)
        self._num_vars = 0
        self._interrupted = threading.Event()

    @classmethod
    def available(cls) -> bool:
        return importlib.util.find_spec("pysat") is not None

    # -- contract ----------------------------------------------------------------

    def ensure_vars(self, num_vars: int) -> None:
        self._num_vars = max(self._num_vars, num_vars)

    def add_clauses(self, clauses: Sequence[Sequence[int]]) -> None:
        for clause in clauses:
            self._solver.add_clause(list(clause))

    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None,
              timeout: Optional[float] = None) -> BackendAnswer:
        solver = self._solver
        self._interrupted.clear()
        stats0 = self._accum_stats()

        timer: Optional[threading.Timer] = None
        limited = max_conflicts is not None or timeout is not None
        if limited and timeout is not None:
            timer = threading.Timer(timeout, self.interrupt)
            timer.daemon = True

        try:
            if limited:
                try:
                    if max_conflicts is not None:
                        solver.conf_budget(int(max_conflicts))
                    if timer is not None:
                        timer.start()
                    status = solver.solve_limited(
                        assumptions=list(assumptions), expect_interrupt=True)
                except NotImplementedError:
                    # This engine has no limited solving; run unbounded.
                    status = solver.solve(assumptions=list(assumptions))
            else:
                status = solver.solve(assumptions=list(assumptions))
        finally:
            if timer is not None:
                timer.cancel()
            if self._interrupted.is_set():
                try:
                    solver.clear_interrupt()
                except NotImplementedError:
                    pass

        stats = self._stats_delta(stats0)
        if status is True:
            model = {abs(lit): lit > 0 for lit in (solver.get_model() or [])}
            return BackendAnswer(result=SatResult.SAT, model=model,
                                 stats=stats)
        if status is False:
            core = None
            if assumptions:
                try:
                    raw = solver.get_core()
                except NotImplementedError:
                    raw = None
                core = list(raw) if raw else None
            return BackendAnswer(result=SatResult.UNSAT, failed=core,
                                 stats=stats)
        return BackendAnswer(result=SatResult.UNKNOWN, stats=stats)

    def interrupt(self) -> None:
        self._interrupted.set()
        try:
            self._solver.interrupt()
        except NotImplementedError:
            pass

    def close(self) -> None:
        self._solver.delete()

    # -- stats helpers -----------------------------------------------------------

    def _accum_stats(self) -> dict:
        try:
            stats = self._solver.accum_stats()
        except NotImplementedError:
            return {}
        return dict(stats) if stats else {}

    def _stats_delta(self, before: dict) -> dict:
        after = self._accum_stats()
        keys = ("conflicts", "decisions", "propagations", "restarts")
        return {key: int(after.get(key, 0)) - int(before.get(key, 0))
                for key in keys if key in after}
