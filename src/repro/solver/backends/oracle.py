"""Oracle pre-answers: decide trivial queries before any CNF exists.

gasol-optimizer-style cheap pre-checks that run ahead of the backend race.
Two oracles, both sound and both CNF-free:

* **constant** — the simplified conjunction folded to a boolean constant;
  the query is decided outright (``true`` → SAT, ``false`` → UNSAT).
* **evaluation** — a handful of structured concrete assignments (zeros,
  ones, INT_MIN/INT_MAX, small powers of two, rotated across variables)
  are run through the term evaluator; a verified satisfying assignment is
  a model, so the answer SAT needs no solver.  This oracle never claims
  UNSAT.

Answers are expressed in plain values (verdict string + name→int
assignment) so the module depends only on the term layer; the
:class:`~repro.solver.solver.Solver` facade maps them onto its
``CheckResult``/``Model`` types and counts them in ``SolverStats``
(``oracle_sat`` / ``oracle_unsat``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.solver.terms import Term, TermManager, collect_variables

#: Seed patterns tried by the evaluation oracle, as functions of the
#: variable width.
GUESS_PATTERNS = (
    lambda width: 0,
    lambda width: 1,
    lambda width: (1 << width) - 1,            # -1 / all ones
    lambda width: 1 << (width - 1),            # INT_MIN
    lambda width: (1 << (width - 1)) - 1,      # INT_MAX
    lambda width: 2,
    lambda width: 0x10,
    lambda width: (1 << width) - 0x10,
)

#: Queries with more variables than this skip the evaluation oracle.
MAX_GUESS_VARIABLES = 24


@dataclass
class OracleAnswer:
    """A pre-answer: 'sat' or 'unsat', with a concrete model when SAT."""

    verdict: str                               # "sat" | "unsat"
    assignment: Optional[Dict[str, int]]       # name -> value (SAT only)
    reason: str                                # "constant" | "evaluation"


def constant_answer(conjunction: Term) -> Optional[OracleAnswer]:
    """Decide a conjunction that simplification folded to a constant."""
    if not conjunction.is_const():
        return None
    if conjunction.value:
        return OracleAnswer(verdict="sat", assignment={}, reason="constant")
    return OracleAnswer(verdict="unsat", assignment=None, reason="constant")


def evaluation_answer(manager: TermManager,
                      conjunction: Term) -> Optional[OracleAnswer]:
    """Try concrete assignments; return a verified SAT answer or None."""
    variables = collect_variables(conjunction)
    if not variables or len(variables) > MAX_GUESS_VARIABLES:
        return None
    names = sorted(variables)
    for pattern_index in range(len(GUESS_PATTERNS)):
        assignment: Dict[str, int] = {}
        for offset, name in enumerate(names):
            sort = variables[name]
            width = sort.width if sort.is_bv() else 1
            # Rotate patterns across variables so mixtures get explored.
            chosen = GUESS_PATTERNS[
                (pattern_index + offset) % len(GUESS_PATTERNS)]
            value = chosen(width) & ((1 << width) - 1)
            assignment[name] = value if sort.is_bv() else value & 1
        try:
            if manager.evaluate(conjunction, assignment):
                return OracleAnswer(verdict="sat", assignment=assignment,
                                    reason="evaluation")
        except (KeyError, NotImplementedError):
            return None
    return None


def preanswer(manager: TermManager,
              conjunction: Term) -> Optional[OracleAnswer]:
    """Run the oracle chain; None means the query needs a real backend."""
    answer = constant_answer(conjunction)
    if answer is not None:
        return answer
    return evaluation_answer(manager, conjunction)
