"""A CDCL SAT solver.

This is the boolean engine underneath the bit-vector solver.  It implements
the standard conflict-driven clause-learning loop:

* two-watched-literal clause propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style activity-based decision heuristic with phase saving,
* Luby-sequence restarts,
* learned-clause deletion based on activity.

The solver is *incremental*: ``solve`` may be called repeatedly on the same
instance, clauses may be added between calls, and each call may pass a set
of assumption literals that hold only for that call.  Learned clauses,
variable activities, and saved phases persist across calls, which is what
makes closely related queries cheap after the first one.  Resource budgets
(``max_conflicts``, ``timeout``) are per call, and exhausting one leaves the
solver reusable.  When a call returns UNSAT because an assumption literal
was refuted, ``failed_assumption`` names it and the clause database stays
consistent (``ok`` remains True).

Literals use the DIMACS convention: variable ``v`` (a positive integer) is
represented by the literals ``v`` and ``-v``.  The solver is deliberately
dependency-free so that the whole reproduction runs on a stock Python
install.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence


class SatResult(enum.Enum):
    """Outcome of a SAT solver invocation."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"      # resource limit (timeout / conflict budget) reached


class _Clause:
    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool = False) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0


class SatSolver:
    """Incremental CDCL solver over integer literals.

    Typical use::

        solver = SatSolver()
        x, y = solver.new_var(), solver.new_var()
        solver.add_clause([x, y])
        solver.add_clause([-x])
        assert solver.solve() is SatResult.SAT
        assert solver.model_value(y) is True
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[_Clause] = []
        self.learned: List[_Clause] = []
        # watches[lit] -> clauses watching lit
        self.watches: Dict[int, List[_Clause]] = {}
        # assignment: var -> bool or None
        self.assign: List[Optional[bool]] = [None]
        self.level: List[int] = [0]
        self.reason: List[Optional[_Clause]] = [None]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0

        self.activity: List[float] = [0.0]
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.phase: List[bool] = [False]

        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        #: The assumption literal whose refutation caused the last UNSAT
        #: answer, or None when the clause database itself is inconsistent.
        self.failed_assumption: Optional[int] = None

    # -- problem construction ---------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self.num_vars += 1
        self.assign.append(None)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        v = self.num_vars
        self.watches.setdefault(v, [])
        self.watches.setdefault(-v, [])
        return v

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause; returns False if the formula is trivially UNSAT."""
        if not self.ok:
            return False
        # A previous SAT answer leaves its model on the trail; root-level
        # simplification below is only sound against root-level assignments.
        if self.trail_lim:
            self._cancel_until(0)
        seen = set()
        out: List[int] = []
        for lit in lits:
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value is True and self._lit_level(lit) == 0:
                return True  # already satisfied at root
            if value is False and self._lit_level(lit) == 0:
                continue      # falsified at root; drop literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        clause = _Clause(out)
        self.clauses.append(clause)
        self._attach(clause)
        return True

    def _attach(self, clause: _Clause) -> None:
        self.watches[clause.lits[0]].append(clause)
        self.watches[clause.lits[1]].append(clause)

    # -- assignment helpers --------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        val = self.assign[abs(lit)]
        if val is None:
            return None
        return val if lit > 0 else not val

    def _lit_level(self, lit: int) -> int:
        return self.level[abs(lit)]

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.phase[var] = lit > 0
        self.trail.append(lit)
        return True

    # -- propagation -------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            neg = -lit
            watchers = self.watches[neg]
            new_watchers: List[_Clause] = []
            i = 0
            conflict: Optional[_Clause] = None
            while i < len(watchers):
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # Make sure the falsified literal is at position 1.
                if lits[0] == neg:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) is True:
                    new_watchers.append(clause)
                    continue
                # Look for a replacement watch.
                found = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.watches[lits[1]].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watchers.append(clause)
                if self._value(first) is False:
                    conflict = clause
                    new_watchers.extend(watchers[i:])
                    break
                self._enqueue(first, clause)
            self.watches[neg] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis ---------------------------------------------------

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause: Optional[_Clause] = conflict
        index = len(self.trail) - 1

        while True:
            assert clause is not None
            self._bump_clause(clause)
            for q in clause.lits:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self.level[var] >= self._decision_level():
                        counter += 1
                    else:
                        learnt.append(q)
            # Pick next literal from the trail to resolve on.
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = self.trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            clause = self.reason[var]
        learnt[0] = -lit

        # Compute backtrack level (second highest level in the clause).
        if len(learnt) == 1:
            back_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self.level[abs(learnt[i])] > self.level[abs(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = self.level[abs(learnt[1])]
        return learnt, back_level

    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for i in range(1, self.num_vars + 1):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        if clause.learned:
            clause.activity += 1.0

    def _decay_var_activity(self) -> None:
        self.var_inc /= self.var_decay

    # -- backtracking ---------------------------------------------------------

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self.trail_lim[level]
        for lit in reversed(self.trail[limit:]):
            var = abs(lit)
            self.assign[var] = None
            self.reason[var] = None
        del self.trail[limit:]
        del self.trail_lim[level:]
        self.qhead = len(self.trail)

    # -- decisions ------------------------------------------------------------

    def _pick_branch_var(self) -> Optional[int]:
        best_var = None
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assign[var] is None and self.activity[var] > best_act:
                best_act = self.activity[var]
                best_var = var
        if best_var is None:
            return None
        return best_var if self.phase[best_var] else -best_var

    # -- learned clause management -----------------------------------------

    def _reduce_learned(self) -> None:
        self.learned.sort(key=lambda c: c.activity)
        keep = self.learned[len(self.learned) // 2:]
        dropped = set(id(c) for c in self.learned[: len(self.learned) // 2]
                      if len(c.lits) > 2)
        if not dropped:
            return
        self.learned = [c for c in self.learned if id(c) not in dropped or len(c.lits) <= 2]
        for lit in list(self.watches):
            self.watches[lit] = [c for c in self.watches[lit] if id(c) not in dropped]

    # -- main loop -------------------------------------------------------------

    @staticmethod
    def _luby(i: int) -> int:
        """The i-th element (1-based) of the Luby restart sequence (1,1,2,1,1,2,4,...)."""
        x = i - 1
        size, seq = 1, 0
        while size < x + 1:
            seq += 1
            size = 2 * size + 1
        while size - 1 != x:
            size = (size - 1) // 2
            seq -= 1
            x = x % size
        return 1 << seq

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        timeout: Optional[float] = None,
        stop: Optional["threading.Event"] = None,
    ) -> SatResult:
        """Decide satisfiability under optional assumptions and budgets.

        ``max_conflicts`` and ``timeout`` are budgets for *this call*; the
        cumulative ``conflicts`` counter keeps growing across calls.
        ``stop`` is an optional :class:`threading.Event`: setting it from
        another thread makes the loop return UNKNOWN at the next decision
        point with the solver left reusable — how a portfolio race cancels
        a losing backend.
        """
        self.failed_assumption = None
        if not self.ok:
            return SatResult.UNSAT
        deadline = None if timeout is None else time.monotonic() + timeout
        restart_idx = 1
        conflict_budget = 100 * self._luby(restart_idx)
        conflicts_here = 0
        conflicts_at_entry = self.conflicts
        max_learned = max(1000, len(self.clauses) // 2)

        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self.ok = False
            return SatResult.UNSAT

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return SatResult.UNSAT
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    clause = _Clause(learnt, learned=True)
                    self.learned.append(clause)
                    self._attach(clause)
                    self._enqueue(learnt[0], clause)
                self._decay_var_activity()
                if len(self.learned) > max_learned:
                    self._reduce_learned()
                    max_learned = int(max_learned * 1.3)
                continue

            if deadline is not None and time.monotonic() > deadline:
                self._cancel_until(0)
                return SatResult.UNKNOWN
            if stop is not None and stop.is_set():
                self._cancel_until(0)
                return SatResult.UNKNOWN
            if max_conflicts is not None and \
                    self.conflicts - conflicts_at_entry >= max_conflicts:
                self._cancel_until(0)
                return SatResult.UNKNOWN
            if conflicts_here >= conflict_budget:
                conflicts_here = 0
                restart_idx += 1
                self.restarts += 1
                conflict_budget = 100 * self._luby(restart_idx)
                self._cancel_until(len(assumptions) if assumptions else 0)
                continue

            # Apply assumptions first.
            if self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                value = self._value(lit)
                if value is True:
                    self.trail_lim.append(len(self.trail))
                    continue
                if value is False:
                    # The clause database refutes this assumption: UNSAT
                    # relative to the assumptions, but the solver stays
                    # consistent and reusable.
                    self.failed_assumption = lit
                    self._cancel_until(0)
                    return SatResult.UNSAT
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)
                continue

            lit = self._pick_branch_var()
            if lit is None:
                return SatResult.SAT
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)

    # -- model access ------------------------------------------------------

    def model_value(self, var: int) -> bool:
        """Value of a variable in the most recent SAT model (False if unset)."""
        value = self.assign[var]
        return bool(value)

    def model(self) -> Dict[int, bool]:
        """Full variable assignment of the most recent SAT model."""
        return {v: bool(self.assign[v]) for v in range(1, self.num_vars + 1)}
