"""Hash-consed term DAG for the QF_BV fragment used by the checker.

Terms are immutable and created through a :class:`TermManager`, which performs
hash-consing (structurally identical terms are the same object) and light
constant folding.  Two sorts exist:

* ``BOOL`` — propositional values,
* ``BV(width)`` — fixed-width bit vectors.

The operator set covers what the STACK queries need: bit-vector arithmetic
(including the wrap-around semantics the paper's ``C*`` dialect assumes),
signed/unsigned comparisons, shifts, zero/sign extension, extraction,
concatenation, if-then-else, and the usual boolean connectives.

Each term carries a manager-unique, stable id (``tid``).  Several layers
key memoization on it: the structural simplifier, the solver-query cache's
canonical serialization, and — critically for incremental solving — the
bit-blaster, which encodes every hash-consed subterm at most once per
solver lifetime.  Ids are only comparable within one manager; the checker
therefore threads a single :class:`TermManager` per function through the
encoder, the query engine, and the solver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple


class Op(enum.Enum):
    """Term operators."""

    # Leaves
    CONST = "const"            # boolean or bit-vector constant
    VAR = "var"                # free variable

    # Boolean connectives
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    IMPLIES = "=>"
    ITE = "ite"                # boolean or bit-vector valued

    # Equality (over bit vectors or booleans)
    EQ = "="
    DISTINCT = "distinct"

    # Bit-vector arithmetic
    BVNEG = "bvneg"
    BVADD = "bvadd"
    BVSUB = "bvsub"
    BVMUL = "bvmul"
    BVUDIV = "bvudiv"
    BVSDIV = "bvsdiv"
    BVUREM = "bvurem"
    BVSREM = "bvsrem"

    # Bit-vector bitwise
    BVNOT = "bvnot"
    BVAND = "bvand"
    BVOR = "bvor"
    BVXOR = "bvxor"

    # Shifts
    BVSHL = "bvshl"
    BVLSHR = "bvlshr"
    BVASHR = "bvashr"

    # Comparisons (boolean result)
    BVULT = "bvult"
    BVULE = "bvule"
    BVUGT = "bvugt"
    BVUGE = "bvuge"
    BVSLT = "bvslt"
    BVSLE = "bvsle"
    BVSGT = "bvsgt"
    BVSGE = "bvsge"

    # Structure
    CONCAT = "concat"
    EXTRACT = "extract"        # attrs: (hi, lo)
    ZEXT = "zext"              # attrs: (extra_bits,)
    SEXT = "sext"              # attrs: (extra_bits,)


@dataclass(frozen=True)
class Sort:
    """Sort of a term: ``BOOL`` or a bit vector of a given width."""

    kind: str                  # "bool" or "bv"
    width: int = 0

    def is_bool(self) -> bool:
        return self.kind == "bool"

    def is_bv(self) -> bool:
        return self.kind == "bv"

    def __repr__(self) -> str:
        if self.is_bool():
            return "Bool"
        return f"BV({self.width})"


BOOL = Sort("bool")


def BV(width: int) -> Sort:
    """Return the bit-vector sort of the given width."""
    if width <= 0:
        raise ValueError(f"bit-vector width must be positive, got {width}")
    return Sort("bv", width)


class Term:
    """A node in the term DAG.

    Instances are created only by :class:`TermManager`; equality is identity
    because the manager hash-conses structurally identical terms.
    """

    __slots__ = ("op", "sort", "args", "attrs", "tid", "_hash")

    def __init__(
        self,
        op: Op,
        sort: Sort,
        args: Tuple["Term", ...],
        attrs: Tuple,
        tid: int,
    ) -> None:
        self.op = op
        self.sort = sort
        self.args = args
        self.attrs = attrs
        self.tid = tid
        self._hash = hash((op, sort, tuple(a.tid for a in args), attrs))

    # -- convenience ------------------------------------------------------

    def is_const(self) -> bool:
        return self.op is Op.CONST

    def is_var(self) -> bool:
        return self.op is Op.VAR

    @property
    def value(self):
        """Constant value (int for BV, bool for BOOL)."""
        if not self.is_const():
            raise ValueError("value is only defined for constant terms")
        return self.attrs[0]

    @property
    def name(self) -> str:
        """Variable name."""
        if not self.is_var():
            raise ValueError("name is only defined for variable terms")
        return self.attrs[0]

    @property
    def width(self) -> int:
        return self.sort.width

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return term_to_str(self)


def term_to_str(term: Term, max_depth: int = 8) -> str:
    """Render a term as an SMT-LIB-flavoured s-expression (for debugging)."""
    if max_depth <= 0:
        return "..."
    if term.op is Op.CONST:
        if term.sort.is_bool():
            return "true" if term.value else "false"
        return f"#x{term.value:0{(term.width + 3) // 4}x}"
    if term.op is Op.VAR:
        return term.name
    parts = [term.op.value]
    if term.op is Op.EXTRACT:
        parts[0] = f"extract[{term.attrs[0]}:{term.attrs[1]}]"
    elif term.op in (Op.ZEXT, Op.SEXT):
        parts[0] = f"{term.op.value}[{term.attrs[0]}]"
    parts.extend(term_to_str(a, max_depth - 1) for a in term.args)
    return "(" + " ".join(parts) + ")"


_COMMUTATIVE = {
    Op.AND, Op.OR, Op.XOR, Op.EQ, Op.DISTINCT,
    Op.BVADD, Op.BVMUL, Op.BVAND, Op.BVOR, Op.BVXOR,
}

#: Public view of the commutative operator set, used by the content-addressed
#: cache and the structural fingerprinter to canonicalize operand order.
COMMUTATIVE_OPS = frozenset(_COMMUTATIVE)


class TermManager:
    """Factory and hash-consing table for :class:`Term` objects.

    The manager also performs local constant folding and a handful of cheap
    structural rewrites (``x & x == x``, ``x + 0 == x``, double negation, ...)
    so that many of the checker's queries are decided without ever reaching
    the SAT solver.
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple, Term] = {}
        self._next_tid = 0
        self._true = self._mk(Op.CONST, BOOL, (), (True,))
        self._false = self._mk(Op.CONST, BOOL, (), (False,))

    # -- internal construction -------------------------------------------

    def _mk(self, op: Op, sort: Sort, args: Tuple[Term, ...], attrs: Tuple) -> Term:
        if op in _COMMUTATIVE and len(args) == 2 and args[0].tid > args[1].tid:
            args = (args[1], args[0])
        key = (op, sort, tuple(a.tid for a in args), attrs)
        existing = self._table.get(key)
        if existing is not None:
            return existing
        term = Term(op, sort, args, attrs, self._next_tid)
        self._next_tid += 1
        self._table[key] = term
        return term

    def __len__(self) -> int:
        return len(self._table)

    # -- leaves ------------------------------------------------------------

    def true(self) -> Term:
        return self._true

    def false(self) -> Term:
        return self._false

    def bool_const(self, value: bool) -> Term:
        return self._true if value else self._false

    def bv_const(self, value: int, width: int) -> Term:
        mask = (1 << width) - 1
        return self._mk(Op.CONST, BV(width), (), (value & mask,))

    def bool_var(self, name: str) -> Term:
        return self._mk(Op.VAR, BOOL, (), (name,))

    def bv_var(self, name: str, width: int) -> Term:
        return self._mk(Op.VAR, BV(width), (), (name,))

    def var(self, name: str, sort: Sort) -> Term:
        if sort.is_bool():
            return self.bool_var(name)
        return self.bv_var(name, sort.width)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _check_bv(term: Term, what: str) -> None:
        if not term.sort.is_bv():
            raise TypeError(f"{what} expects a bit-vector operand, got {term.sort}")

    @staticmethod
    def _check_bool(term: Term, what: str) -> None:
        if not term.sort.is_bool():
            raise TypeError(f"{what} expects a boolean operand, got {term.sort}")

    @staticmethod
    def _check_same_width(a: Term, b: Term, what: str) -> None:
        if a.sort != b.sort:
            raise TypeError(f"{what} operands have mismatched sorts: {a.sort} vs {b.sort}")

    @staticmethod
    def _to_signed(value: int, width: int) -> int:
        if value >= (1 << (width - 1)):
            return value - (1 << width)
        return value

    # -- boolean connectives -----------------------------------------------

    def not_(self, a: Term) -> Term:
        self._check_bool(a, "not")
        if a.is_const():
            return self.bool_const(not a.value)
        if a.op is Op.NOT:
            return a.args[0]
        return self._mk(Op.NOT, BOOL, (a,), ())

    def and_(self, *terms: Term) -> Term:
        flat = []
        for t in terms:
            self._check_bool(t, "and")
            if t.is_const():
                if not t.value:
                    return self.false()
                continue
            flat.append(t)
        if not flat:
            return self.true()
        result = flat[0]
        for t in flat[1:]:
            result = self._and2(result, t)
        return result

    def _and2(self, a: Term, b: Term) -> Term:
        if a is b:
            return a
        if a.is_const():
            return b if a.value else self.false()
        if b.is_const():
            return a if b.value else self.false()
        if (a.op is Op.NOT and a.args[0] is b) or (b.op is Op.NOT and b.args[0] is a):
            return self.false()
        return self._mk(Op.AND, BOOL, (a, b), ())

    def or_(self, *terms: Term) -> Term:
        flat = []
        for t in terms:
            self._check_bool(t, "or")
            if t.is_const():
                if t.value:
                    return self.true()
                continue
            flat.append(t)
        if not flat:
            return self.false()
        result = flat[0]
        for t in flat[1:]:
            result = self._or2(result, t)
        return result

    def _or2(self, a: Term, b: Term) -> Term:
        if a is b:
            return a
        if a.is_const():
            return self.true() if a.value else b
        if b.is_const():
            return self.true() if b.value else a
        if (a.op is Op.NOT and a.args[0] is b) or (b.op is Op.NOT and b.args[0] is a):
            return self.true()
        return self._mk(Op.OR, BOOL, (a, b), ())

    def xor(self, a: Term, b: Term) -> Term:
        self._check_bool(a, "xor")
        self._check_bool(b, "xor")
        if a.is_const() and b.is_const():
            return self.bool_const(a.value != b.value)
        if a is b:
            return self.false()
        if a.is_const():
            return self.not_(b) if a.value else b
        if b.is_const():
            return self.not_(a) if b.value else a
        return self._mk(Op.XOR, BOOL, (a, b), ())

    def implies(self, a: Term, b: Term) -> Term:
        return self.or_(self.not_(a), b)

    def iff(self, a: Term, b: Term) -> Term:
        return self.not_(self.xor(a, b))

    def ite(self, cond: Term, then: Term, els: Term) -> Term:
        self._check_bool(cond, "ite")
        self._check_same_width(then, els, "ite")
        if cond.is_const():
            return then if cond.value else els
        if then is els:
            return then
        if then.sort.is_bool():
            # (ite c true false) == c ; (ite c false true) == !c
            if then.is_const() and els.is_const():
                return cond if then.value else self.not_(cond)
        return self._mk(Op.ITE, then.sort, (cond, then, els), ())

    # -- equality -----------------------------------------------------------

    def eq(self, a: Term, b: Term) -> Term:
        self._check_same_width(a, b, "eq")
        if a is b:
            return self.true()
        if a.is_const() and b.is_const():
            return self.bool_const(a.value == b.value)
        if a.sort.is_bool():
            return self.iff(a, b)
        return self._mk(Op.EQ, BOOL, (a, b), ())

    def distinct(self, a: Term, b: Term) -> Term:
        return self.not_(self.eq(a, b))

    # -- bit-vector arithmetic ----------------------------------------------

    def _bv_binop(self, op: Op, a: Term, b: Term, fold) -> Term:
        self._check_bv(a, op.value)
        self._check_same_width(a, b, op.value)
        width = a.width
        if a.is_const() and b.is_const():
            return self.bv_const(fold(a.value, b.value, width), width)
        return self._mk(op, BV(width), (a, b), ())

    def bvneg(self, a: Term) -> Term:
        self._check_bv(a, "bvneg")
        if a.is_const():
            return self.bv_const(-a.value, a.width)
        return self._mk(Op.BVNEG, a.sort, (a,), ())

    def bvadd(self, a: Term, b: Term) -> Term:
        if b.is_const() and b.value == 0:
            return a
        if a.is_const() and a.value == 0:
            return b
        return self._bv_binop(Op.BVADD, a, b, lambda x, y, w: x + y)

    def bvsub(self, a: Term, b: Term) -> Term:
        if b.is_const() and b.value == 0:
            return a
        if a is b:
            return self.bv_const(0, a.width)
        return self._bv_binop(Op.BVSUB, a, b, lambda x, y, w: x - y)

    def bvmul(self, a: Term, b: Term) -> Term:
        for x, y in ((a, b), (b, a)):
            if x.is_const():
                if x.value == 0:
                    return self.bv_const(0, a.width)
                if x.value == 1:
                    return y
        return self._bv_binop(Op.BVMUL, a, b, lambda x, y, w: x * y)

    def bvudiv(self, a: Term, b: Term) -> Term:
        def fold(x: int, y: int, w: int) -> int:
            if y == 0:
                return (1 << w) - 1  # SMT-LIB: udiv by zero is all-ones
            return x // y
        return self._bv_binop(Op.BVUDIV, a, b, fold)

    def bvurem(self, a: Term, b: Term) -> Term:
        def fold(x: int, y: int, w: int) -> int:
            if y == 0:
                return x
            return x % y
        return self._bv_binop(Op.BVUREM, a, b, fold)

    def bvsdiv(self, a: Term, b: Term) -> Term:
        def fold(x: int, y: int, w: int) -> int:
            sx, sy = self._to_signed(x, w), self._to_signed(y, w)
            if sy == 0:
                return (1 << w) - 1 if sx >= 0 else 1
            q = abs(sx) // abs(sy)
            if (sx < 0) != (sy < 0):
                q = -q
            return q
        return self._bv_binop(Op.BVSDIV, a, b, fold)

    def bvsrem(self, a: Term, b: Term) -> Term:
        def fold(x: int, y: int, w: int) -> int:
            sx, sy = self._to_signed(x, w), self._to_signed(y, w)
            if sy == 0:
                return sx
            r = abs(sx) % abs(sy)
            return -r if sx < 0 else r
        return self._bv_binop(Op.BVSREM, a, b, fold)

    # -- bit-vector bitwise ----------------------------------------------

    def bvnot(self, a: Term) -> Term:
        self._check_bv(a, "bvnot")
        if a.is_const():
            return self.bv_const(~a.value, a.width)
        if a.op is Op.BVNOT:
            return a.args[0]
        return self._mk(Op.BVNOT, a.sort, (a,), ())

    def bvand(self, a: Term, b: Term) -> Term:
        if a is b:
            return a
        return self._bv_binop(Op.BVAND, a, b, lambda x, y, w: x & y)

    def bvor(self, a: Term, b: Term) -> Term:
        if a is b:
            return a
        return self._bv_binop(Op.BVOR, a, b, lambda x, y, w: x | y)

    def bvxor(self, a: Term, b: Term) -> Term:
        if a is b:
            return self.bv_const(0, a.width)
        return self._bv_binop(Op.BVXOR, a, b, lambda x, y, w: x ^ y)

    # -- shifts ------------------------------------------------------------

    def bvshl(self, a: Term, b: Term) -> Term:
        def fold(x: int, y: int, w: int) -> int:
            if y >= w:
                return 0
            return x << y
        return self._bv_binop(Op.BVSHL, a, b, fold)

    def bvlshr(self, a: Term, b: Term) -> Term:
        def fold(x: int, y: int, w: int) -> int:
            if y >= w:
                return 0
            return x >> y
        return self._bv_binop(Op.BVLSHR, a, b, fold)

    def bvashr(self, a: Term, b: Term) -> Term:
        def fold(x: int, y: int, w: int) -> int:
            sx = self._to_signed(x, w)
            if y >= w:
                return -1 if sx < 0 else 0
            return sx >> y
        return self._bv_binop(Op.BVASHR, a, b, fold)

    # -- comparisons -------------------------------------------------------

    def _bv_cmp(self, op: Op, a: Term, b: Term, fold) -> Term:
        self._check_bv(a, op.value)
        self._check_same_width(a, b, op.value)
        if a.is_const() and b.is_const():
            return self.bool_const(fold(a.value, b.value, a.width))
        if a is b:
            reflexive = {Op.BVULE: True, Op.BVUGE: True, Op.BVSLE: True, Op.BVSGE: True,
                         Op.BVULT: False, Op.BVUGT: False, Op.BVSLT: False, Op.BVSGT: False}
            return self.bool_const(reflexive[op])
        return self._mk(op, BOOL, (a, b), ())

    def bvult(self, a: Term, b: Term) -> Term:
        return self._bv_cmp(Op.BVULT, a, b, lambda x, y, w: x < y)

    def bvule(self, a: Term, b: Term) -> Term:
        return self._bv_cmp(Op.BVULE, a, b, lambda x, y, w: x <= y)

    def bvugt(self, a: Term, b: Term) -> Term:
        return self._bv_cmp(Op.BVUGT, a, b, lambda x, y, w: x > y)

    def bvuge(self, a: Term, b: Term) -> Term:
        return self._bv_cmp(Op.BVUGE, a, b, lambda x, y, w: x >= y)

    def bvslt(self, a: Term, b: Term) -> Term:
        return self._bv_cmp(
            Op.BVSLT, a, b,
            lambda x, y, w: self._to_signed(x, w) < self._to_signed(y, w))

    def bvsle(self, a: Term, b: Term) -> Term:
        return self._bv_cmp(
            Op.BVSLE, a, b,
            lambda x, y, w: self._to_signed(x, w) <= self._to_signed(y, w))

    def bvsgt(self, a: Term, b: Term) -> Term:
        return self._bv_cmp(
            Op.BVSGT, a, b,
            lambda x, y, w: self._to_signed(x, w) > self._to_signed(y, w))

    def bvsge(self, a: Term, b: Term) -> Term:
        return self._bv_cmp(
            Op.BVSGE, a, b,
            lambda x, y, w: self._to_signed(x, w) >= self._to_signed(y, w))

    # -- structural --------------------------------------------------------

    def concat(self, hi: Term, lo: Term) -> Term:
        self._check_bv(hi, "concat")
        self._check_bv(lo, "concat")
        width = hi.width + lo.width
        if hi.is_const() and lo.is_const():
            return self.bv_const((hi.value << lo.width) | lo.value, width)
        return self._mk(Op.CONCAT, BV(width), (hi, lo), ())

    def extract(self, a: Term, hi: int, lo: int) -> Term:
        self._check_bv(a, "extract")
        if not (0 <= lo <= hi < a.width):
            raise ValueError(f"invalid extract [{hi}:{lo}] on width {a.width}")
        width = hi - lo + 1
        if a.is_const():
            return self.bv_const(a.value >> lo, width)
        if hi == a.width - 1 and lo == 0:
            return a
        return self._mk(Op.EXTRACT, BV(width), (a,), (hi, lo))

    def zext(self, a: Term, extra: int) -> Term:
        self._check_bv(a, "zext")
        if extra < 0:
            raise ValueError("zext amount must be non-negative")
        if extra == 0:
            return a
        if a.is_const():
            return self.bv_const(a.value, a.width + extra)
        return self._mk(Op.ZEXT, BV(a.width + extra), (a,), (extra,))

    def sext(self, a: Term, extra: int) -> Term:
        self._check_bv(a, "sext")
        if extra < 0:
            raise ValueError("sext amount must be non-negative")
        if extra == 0:
            return a
        if a.is_const():
            return self.bv_const(self._to_signed(a.value, a.width), a.width + extra)
        return self._mk(Op.SEXT, BV(a.width + extra), (a,), (extra,))

    # -- evaluation --------------------------------------------------------

    def evaluate(self, term: Term, assignment: Dict[str, int]) -> int:
        """Evaluate ``term`` under a concrete assignment of variable values.

        Boolean results are returned as Python bools, bit-vector results as
        non-negative ints.  Used by tests and for model validation.
        """
        cache: Dict[int, int] = {}

        def ev(t: Term):
            if t.tid in cache:
                return cache[t.tid]
            result = self._eval_node(t, assignment, ev)
            cache[t.tid] = result
            return result

        return ev(term)

    def _eval_node(self, t: Term, assignment: Dict[str, int], ev):
        if t.op is Op.CONST:
            return t.value
        if t.op is Op.VAR:
            if t.name not in assignment:
                raise KeyError(f"no assignment for variable {t.name!r}")
            val = assignment[t.name]
            if t.sort.is_bool():
                return bool(val)
            return val & ((1 << t.width) - 1)
        args = [ev(a) for a in t.args]
        return _fold_op(self, t, args)


def _fold_op(mgr: TermManager, t: Term, args) -> int:
    """Interpret operator ``t.op`` over already-evaluated arguments."""
    op = t.op
    if op is Op.NOT:
        return not args[0]
    if op is Op.AND:
        return bool(args[0]) and bool(args[1])
    if op is Op.OR:
        return bool(args[0]) or bool(args[1])
    if op is Op.XOR:
        return bool(args[0]) != bool(args[1])
    if op is Op.ITE:
        return args[1] if args[0] else args[2]
    if op is Op.EQ:
        return args[0] == args[1]
    if op is Op.DISTINCT:
        return args[0] != args[1]

    width = t.args[0].width if t.args and t.args[0].sort.is_bv() else t.width
    mask = (1 << width) - 1 if width else 0
    sgn = lambda v: TermManager._to_signed(v, width)

    if op is Op.BVNEG:
        return (-args[0]) & mask
    if op is Op.BVADD:
        return (args[0] + args[1]) & mask
    if op is Op.BVSUB:
        return (args[0] - args[1]) & mask
    if op is Op.BVMUL:
        return (args[0] * args[1]) & mask
    if op is Op.BVUDIV:
        return mask if args[1] == 0 else (args[0] // args[1]) & mask
    if op is Op.BVUREM:
        return args[0] if args[1] == 0 else (args[0] % args[1]) & mask
    if op is Op.BVSDIV:
        x, y = sgn(args[0]), sgn(args[1])
        if y == 0:
            return mask if x >= 0 else 1
        q = abs(x) // abs(y)
        if (x < 0) != (y < 0):
            q = -q
        return q & mask
    if op is Op.BVSREM:
        x, y = sgn(args[0]), sgn(args[1])
        if y == 0:
            return x & mask
        r = abs(x) % abs(y)
        return (-r if x < 0 else r) & mask
    if op is Op.BVNOT:
        return (~args[0]) & mask
    if op is Op.BVAND:
        return args[0] & args[1]
    if op is Op.BVOR:
        return args[0] | args[1]
    if op is Op.BVXOR:
        return args[0] ^ args[1]
    if op is Op.BVSHL:
        return 0 if args[1] >= width else (args[0] << args[1]) & mask
    if op is Op.BVLSHR:
        return 0 if args[1] >= width else args[0] >> args[1]
    if op is Op.BVASHR:
        x = sgn(args[0])
        shift = min(args[1], width)
        return (x >> shift) & mask
    if op is Op.BVULT:
        return args[0] < args[1]
    if op is Op.BVULE:
        return args[0] <= args[1]
    if op is Op.BVUGT:
        return args[0] > args[1]
    if op is Op.BVUGE:
        return args[0] >= args[1]
    if op is Op.BVSLT:
        return sgn(args[0]) < sgn(args[1])
    if op is Op.BVSLE:
        return sgn(args[0]) <= sgn(args[1])
    if op is Op.BVSGT:
        return sgn(args[0]) > sgn(args[1])
    if op is Op.BVSGE:
        return sgn(args[0]) >= sgn(args[1])
    if op is Op.CONCAT:
        return (args[0] << t.args[1].width) | args[1]
    if op is Op.EXTRACT:
        hi, lo = t.attrs
        return (args[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
    if op is Op.ZEXT:
        return args[0]
    if op is Op.SEXT:
        return sgn(args[0]) & ((1 << t.width) - 1)
    raise NotImplementedError(f"cannot evaluate operator {op}")


def collect_variables(term: Term) -> Dict[str, Sort]:
    """Return the free variables of ``term`` mapped to their sorts."""
    seen: Dict[int, None] = {}
    out: Dict[str, Sort] = {}
    stack = [term]
    while stack:
        t = stack.pop()
        if t.tid in seen:
            continue
        seen[t.tid] = None
        if t.is_var():
            out[t.name] = t.sort
        stack.extend(t.args)
    return out
