"""Bit-blasting of QF_BV terms to CNF.

Every bit-vector term is translated into a list of SAT literals, least
significant bit first; boolean terms become a single literal.  Arithmetic is
encoded with standard circuits: ripple-carry adders, shift-and-add
multipliers, barrel shifters, and relational subtraction for comparisons.
Division and remainder are encoded by introducing fresh quotient/remainder
vectors and asserting the defining relation (with the SMT-LIB convention for
division by zero).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.solver.cnf import CnfBuilder
from repro.solver.terms import Op, Term


class BitBlaster:
    """Translates terms into CNF on a :class:`CnfBuilder`."""

    def __init__(self, cnf: CnfBuilder) -> None:
        self.cnf = cnf
        self._bool_cache: Dict[int, int] = {}
        self._bv_cache: Dict[int, List[int]] = {}
        self._var_bits: Dict[str, List[int]] = {}
        self._var_bool: Dict[str, int] = {}
        # Encodings are memoized per hash-consed term id for the lifetime of
        # the blaster; on a persistent (incremental) solver, shared subterms
        # across queries are encoded once.  The counters make that visible.
        self.cache_hits = 0
        self.cache_misses = 0

    # -- public API -----------------------------------------------------------

    def assert_term(self, term: Term) -> None:
        """Assert a boolean term as a top-level constraint."""
        if not term.sort.is_bool():
            raise TypeError("only boolean terms can be asserted")
        lit = self.blast_bool(term)
        self.cnf.assert_lit(lit)

    def blast_bool(self, term: Term) -> int:
        """Return the literal encoding of a boolean term."""
        if not term.sort.is_bool():
            raise TypeError(f"expected a boolean term, got sort {term.sort}")
        cached = self._bool_cache.get(term.tid)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        lit = self._blast_bool_node(term)
        self._bool_cache[term.tid] = lit
        return lit

    def blast_bv(self, term: Term) -> List[int]:
        """Return the bit literals (LSB first) encoding a bit-vector term."""
        if not term.sort.is_bv():
            raise TypeError(f"expected a bit-vector term, got sort {term.sort}")
        cached = self._bv_cache.get(term.tid)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        bits = self._blast_bv_node(term)
        if len(bits) != term.width:
            raise AssertionError(
                f"bit-blasting width mismatch for {term.op}: "
                f"{len(bits)} != {term.width}")
        self._bv_cache[term.tid] = bits
        return bits

    def variable_bits(self, name: str) -> List[int]:
        """SAT literals allocated for a bit-vector variable (for models)."""
        return self._var_bits[name]

    def variable_bool(self, name: str) -> int:
        """SAT literal allocated for a boolean variable (for models)."""
        return self._var_bool[name]

    def known_bv_variables(self) -> Dict[str, List[int]]:
        # Name-sorted so model extraction and exported variable maps are
        # stable regardless of the order in which terms were encoded —
        # required for byte-comparable cross-backend/cross-run output.
        return {name: self._var_bits[name] for name in sorted(self._var_bits)}

    def known_bool_variables(self) -> Dict[str, int]:
        return {name: self._var_bool[name] for name in sorted(self._var_bool)}

    # -- boolean nodes -----------------------------------------------------------

    def _blast_bool_node(self, term: Term) -> int:
        cnf = self.cnf
        op = term.op
        if op is Op.CONST:
            return cnf.const(bool(term.value))
        if op is Op.VAR:
            lit = self._var_bool.get(term.name)
            if lit is None:
                lit = cnf.new_lit()
                self._var_bool[term.name] = lit
            return lit
        if op is Op.NOT:
            return -self.blast_bool(term.args[0])
        if op is Op.AND:
            return cnf.and_gate(self.blast_bool(term.args[0]),
                                self.blast_bool(term.args[1]))
        if op is Op.OR:
            return cnf.or_gate(self.blast_bool(term.args[0]),
                               self.blast_bool(term.args[1]))
        if op is Op.XOR:
            return cnf.xor_gate(self.blast_bool(term.args[0]),
                                self.blast_bool(term.args[1]))
        if op is Op.ITE:
            return cnf.mux_gate(self.blast_bool(term.args[0]),
                                self.blast_bool(term.args[1]),
                                self.blast_bool(term.args[2]))
        if op is Op.EQ:
            lhs, rhs = term.args
            if lhs.sort.is_bool():
                return -cnf.xor_gate(self.blast_bool(lhs), self.blast_bool(rhs))
            return cnf.equal_gate(self.blast_bv(lhs), self.blast_bv(rhs))
        if op is Op.DISTINCT:
            lhs, rhs = term.args
            if lhs.sort.is_bool():
                return cnf.xor_gate(self.blast_bool(lhs), self.blast_bool(rhs))
            return -cnf.equal_gate(self.blast_bv(lhs), self.blast_bv(rhs))
        if op in (Op.BVULT, Op.BVULE, Op.BVUGT, Op.BVUGE,
                  Op.BVSLT, Op.BVSLE, Op.BVSGT, Op.BVSGE):
            return self._blast_compare(term)
        raise NotImplementedError(f"cannot bit-blast boolean operator {op}")

    def _blast_compare(self, term: Term) -> int:
        a_bits = self.blast_bv(term.args[0])
        b_bits = self.blast_bv(term.args[1])
        op = term.op
        signed = op in (Op.BVSLT, Op.BVSLE, Op.BVSGT, Op.BVSGE)
        if op in (Op.BVUGT, Op.BVSGT):
            a_bits, b_bits = b_bits, a_bits
            op = Op.BVSLT if signed else Op.BVULT
        elif op in (Op.BVUGE, Op.BVSGE):
            a_bits, b_bits = b_bits, a_bits
            op = Op.BVSLE if signed else Op.BVULE
        lt = self._less_than(a_bits, b_bits, signed)
        if op in (Op.BVULT, Op.BVSLT):
            return lt
        eq = self.cnf.equal_gate(a_bits, b_bits)
        return self.cnf.or_gate(lt, eq)

    def _less_than(self, a: Sequence[int], b: Sequence[int], signed: bool) -> int:
        cnf = self.cnf
        if signed:
            # Flip sign bits so that signed comparison becomes unsigned.
            a = list(a[:-1]) + [-a[-1]]
            b = list(b[:-1]) + [-b[-1]]
        # a < b  iff  the borrow out of (a - b) is set.
        borrow = cnf.false_lit
        for ai, bi in zip(a, b):
            # borrow' = (!ai & bi) | (borrow & !(ai xor bi))
            t1 = cnf.and_gate(-ai, bi)
            t2 = cnf.and_gate(borrow, -cnf.xor_gate(ai, bi))
            borrow = cnf.or_gate(t1, t2)
        return borrow

    # -- bit-vector nodes ---------------------------------------------------------

    def _blast_bv_node(self, term: Term) -> List[int]:
        cnf = self.cnf
        op = term.op
        width = term.width
        if op is Op.CONST:
            return [cnf.const(bool((term.value >> i) & 1)) for i in range(width)]
        if op is Op.VAR:
            bits = self._var_bits.get(term.name)
            if bits is None:
                bits = [cnf.new_lit() for _ in range(width)]
                self._var_bits[term.name] = bits
            return bits
        if op is Op.ITE:
            sel = self.blast_bool(term.args[0])
            then_bits = self.blast_bv(term.args[1])
            else_bits = self.blast_bv(term.args[2])
            return [cnf.mux_gate(sel, t, e) for t, e in zip(then_bits, else_bits)]
        if op is Op.BVNOT:
            return [-bit for bit in self.blast_bv(term.args[0])]
        if op is Op.BVNEG:
            bits = [-bit for bit in self.blast_bv(term.args[0])]
            one = [cnf.true_lit] + [cnf.false_lit] * (width - 1)
            return self._add(bits, one)[0]
        if op is Op.BVAND:
            return [cnf.and_gate(a, b) for a, b in
                    zip(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))]
        if op is Op.BVOR:
            return [cnf.or_gate(a, b) for a, b in
                    zip(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))]
        if op is Op.BVXOR:
            return [cnf.xor_gate(a, b) for a, b in
                    zip(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))]
        if op is Op.BVADD:
            return self._add(self.blast_bv(term.args[0]),
                             self.blast_bv(term.args[1]))[0]
        if op is Op.BVSUB:
            return self._sub(self.blast_bv(term.args[0]),
                             self.blast_bv(term.args[1]))
        if op is Op.BVMUL:
            return self._mul(self.blast_bv(term.args[0]),
                             self.blast_bv(term.args[1]))
        if op in (Op.BVUDIV, Op.BVUREM):
            quotient, remainder = self._udivrem(term.args[0], term.args[1])
            return quotient if op is Op.BVUDIV else remainder
        if op in (Op.BVSDIV, Op.BVSREM):
            quotient, remainder = self._sdivrem(term.args[0], term.args[1])
            return quotient if op is Op.BVSDIV else remainder
        if op is Op.BVSHL:
            return self._shift(term, direction="left", arithmetic=False)
        if op is Op.BVLSHR:
            return self._shift(term, direction="right", arithmetic=False)
        if op is Op.BVASHR:
            return self._shift(term, direction="right", arithmetic=True)
        if op is Op.CONCAT:
            hi = self.blast_bv(term.args[0])
            lo = self.blast_bv(term.args[1])
            return lo + hi
        if op is Op.EXTRACT:
            hi, lo = term.attrs
            return self.blast_bv(term.args[0])[lo:hi + 1]
        if op is Op.ZEXT:
            bits = self.blast_bv(term.args[0])
            return bits + [cnf.false_lit] * term.attrs[0]
        if op is Op.SEXT:
            bits = self.blast_bv(term.args[0])
            return bits + [bits[-1]] * term.attrs[0]
        raise NotImplementedError(f"cannot bit-blast bit-vector operator {op}")

    # -- arithmetic circuits ----------------------------------------------------

    def _add(self, a: Sequence[int], b: Sequence[int],
             carry_in: int | None = None) -> tuple[List[int], int]:
        cnf = self.cnf
        carry = cnf.false_lit if carry_in is None else carry_in
        out: List[int] = []
        for ai, bi in zip(a, b):
            s, carry = cnf.full_adder(ai, bi, carry)
            out.append(s)
        return out, carry

    def _sub(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        negated = [-bit for bit in b]
        return self._add(a, negated, carry_in=self.cnf.true_lit)[0]

    def _mul(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        cnf = self.cnf
        width = len(a)
        acc = [cnf.false_lit] * width
        for i, bi in enumerate(b):
            partial = [cnf.false_lit] * i
            partial += [cnf.and_gate(ai, bi) for ai in a[: width - i]]
            acc = self._add(acc, partial)[0]
        return acc

    def _udivrem(self, num_term: Term, den_term: Term) -> tuple[List[int], List[int]]:
        """Encode unsigned division via fresh result vectors and constraints."""
        cnf = self.cnf
        width = num_term.width
        num = self.blast_bv(num_term)
        den = self.blast_bv(den_term)
        quotient = [cnf.new_lit() for _ in range(width)]
        remainder = [cnf.new_lit() for _ in range(width)]

        den_is_zero = -cnf.or_many(den)

        # Case den != 0: num == quotient * den + remainder, remainder < den,
        # and quotient * den does not overflow.
        product, overflow = self._mul_with_overflow(quotient, den)
        summed, carry = self._add(product, remainder)
        relation_ok = cnf.and_many([
            cnf.equal_gate(summed, num),
            -carry,
            -overflow,
            self._less_than(remainder, den, signed=False),
        ])
        # Case den == 0: quotient is all ones, remainder == num (SMT-LIB).
        zero_case = cnf.and_many(
            [q for q in quotient] + [cnf.equal_gate(remainder, num)])

        cnf.assert_lit(cnf.mux_gate(den_is_zero, zero_case, relation_ok))
        return quotient, remainder

    def _mul_with_overflow(self, a: Sequence[int], b: Sequence[int]) -> tuple[List[int], int]:
        """Multiply and also report whether the full product exceeds the width."""
        cnf = self.cnf
        width = len(a)
        a_ext = list(a) + [cnf.false_lit] * width
        b_ext = list(b) + [cnf.false_lit] * width
        acc = [cnf.false_lit] * (2 * width)
        for i, bi in enumerate(b_ext):
            partial = [cnf.false_lit] * i
            partial += [cnf.and_gate(ai, bi) for ai in a_ext[: 2 * width - i]]
            acc = self._add(acc, partial)[0]
        low = acc[:width]
        overflow = cnf.or_many(acc[width:])
        return low, overflow

    def _sdivrem(self, num_term: Term, den_term: Term) -> tuple[List[int], List[int]]:
        """Encode signed division on top of unsigned division of magnitudes."""
        cnf = self.cnf
        width = num_term.width
        num = self.blast_bv(num_term)
        den = self.blast_bv(den_term)
        num_neg = num[-1]
        den_neg = den[-1]

        abs_num = self._conditional_negate(num, num_neg)
        abs_den = self._conditional_negate(den, den_neg)

        quotient_mag = [cnf.new_lit() for _ in range(width)]
        remainder_mag = [cnf.new_lit() for _ in range(width)]
        den_is_zero = -cnf.or_many(den)

        product, overflow = self._mul_with_overflow(quotient_mag, abs_den)
        summed, carry = self._add(product, remainder_mag)
        relation_ok = cnf.and_many([
            cnf.equal_gate(summed, abs_num),
            -carry,
            -overflow,
            self._less_than(remainder_mag, abs_den, signed=False),
        ])
        cnf.assert_lit(cnf.or_gate(den_is_zero, relation_ok))

        quot_negative = cnf.and_gate(cnf.xor_gate(num_neg, den_neg), -den_is_zero)
        quotient = self._conditional_negate(quotient_mag, quot_negative)
        remainder = self._conditional_negate(remainder_mag, num_neg)

        # Division by zero: SMT-LIB says sdiv yields -1 for non-negative
        # numerators and 1 for negative ones; srem yields the numerator.
        all_ones = [cnf.true_lit] * width
        one = [cnf.true_lit] + [cnf.false_lit] * (width - 1)
        div_zero_result = [cnf.mux_gate(num_neg, o, a) for o, a in zip(one, all_ones)]
        quotient = [cnf.mux_gate(den_is_zero, z, q)
                    for z, q in zip(div_zero_result, quotient)]
        remainder = [cnf.mux_gate(den_is_zero, n, r)
                     for n, r in zip(num, remainder)]
        return quotient, remainder

    def _conditional_negate(self, bits: Sequence[int], cond: int) -> List[int]:
        cnf = self.cnf
        flipped = [cnf.xor_gate(bit, cond) for bit in bits]
        width = len(bits)
        cond_word = [cond] + [cnf.false_lit] * (width - 1)
        return self._add(flipped, cond_word)[0]

    def _shift(self, term: Term, direction: str, arithmetic: bool) -> List[int]:
        cnf = self.cnf
        bits = self.blast_bv(term.args[0])
        amount = self.blast_bv(term.args[1])
        width = len(bits)
        fill = bits[-1] if arithmetic else cnf.false_lit

        # Barrel shifter over the log2(width) low bits of the amount.
        stages = max(1, (width - 1).bit_length())
        current = list(bits)
        for stage in range(stages):
            shift_by = 1 << stage
            sel = amount[stage] if stage < len(amount) else cnf.false_lit
            shifted: List[int] = []
            for i in range(width):
                if direction == "left":
                    src = current[i - shift_by] if i - shift_by >= 0 else cnf.false_lit
                else:
                    src = current[i + shift_by] if i + shift_by < width else fill
                shifted.append(cnf.mux_gate(sel, src, current[i]))
            current = shifted

        # If any higher bit of the amount is set the shift is oversized.
        high_bits = amount[stages:]
        oversized = cnf.or_many(high_bits) if high_bits else cnf.false_lit
        overflow_fill = fill if (arithmetic and direction == "right") else cnf.false_lit
        return [cnf.mux_gate(oversized, overflow_fill, bit) for bit in current]
