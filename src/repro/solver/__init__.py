"""Bit-vector constraint solver used by the STACK checker.

The paper uses the Boolector SMT solver to decide the satisfiability of
elimination and simplification queries over the theory of fixed-width bit
vectors (QF_BV).  This package provides a self-contained replacement:

* :mod:`repro.solver.terms` — hash-consed term DAG for booleans and bit
  vectors (constants, variables, arithmetic, comparisons, shifts, ite, ...).
* :mod:`repro.solver.simplify` — structural simplification and constant
  folding, applied while terms are built.
* :mod:`repro.solver.cnf` — CNF container and Tseitin transformation
  helpers, including activation-literal guarded assertions.
* :mod:`repro.solver.bitblast` — bit-blasting of bit-vector terms to CNF,
  memoized per hash-consed term id.
* :mod:`repro.solver.sat` — an incremental CDCL SAT solver (two-watched
  literals, VSIDS, restarts, assumptions, per-call budgets).
* :mod:`repro.solver.solver` — the :class:`Solver` facade with assertion
  stacks, models and per-query timeouts.
* :mod:`repro.solver.backends` — pluggable SAT backends behind the facade
  (in-process CDCL, python-sat, external DIMACS binaries), the oracle
  pre-answer chain, and the portfolio racer
  (``Solver(backend=...)`` / ``Solver(portfolio=...)``).

The public API mirrors the small subset of an SMT solver API that STACK
needs: build terms via :class:`TermManager`, assert them on a
:class:`Solver`, and call :meth:`Solver.check`.  The incremental entry
points (``Solver(..., incremental=True)``) are first-class:
``check(assumptions=...)`` decides a query under per-call assumptions over
a persistent clause database, ``push``/``pop`` scope assertions via
activation literals without CNF rebuilds, learned clauses and bit-blasted
encodings are retained across queries, and ``failed_assumptions()`` reports
(core-free) which per-call terms an UNSAT answer relied on.
:class:`SolverStats` exposes the work done — restarts, blasted clauses,
blast-cache hits — and :func:`is_unsat` is a one-shot convenience wrapper.
See docs/SOLVER.md for the architecture and a tuning table.
"""

from repro.solver.terms import (
    BV,
    BOOL,
    Op,
    Sort,
    Term,
    TermManager,
)
from repro.solver.sat import SatResult, SatSolver
from repro.solver.backends import (
    BACKENDS,
    PortfolioSolver,
    SolverBackend,
    available_backends,
    create_backend,
)
from repro.solver.solver import (
    CheckResult,
    Model,
    Solver,
    SolverStats,
    is_unsat,
)

__all__ = [
    "BACKENDS",
    "BV",
    "BOOL",
    "CheckResult",
    "Model",
    "Op",
    "PortfolioSolver",
    "SatResult",
    "SatSolver",
    "Solver",
    "SolverBackend",
    "SolverStats",
    "Sort",
    "Term",
    "TermManager",
    "available_backends",
    "create_backend",
    "is_unsat",
]
