"""Fuzzing-campaign experiment: the scenario factory's summary table.

The paper's corpora are fixed (Figures 4, 9, 16); this driver measures the
pipeline on programs nobody wrote by hand.  A fixed-seed campaign generates
``--budget`` MiniC/IR programs across every scenario class, checks them
through the parallel engine (with stage-5 witness replay and the seeded
differential optimizer), reduces every unstable finding to a minimal
reproducer, and tabulates the per-scenario outcome — including the two
campaign-level invariants the benchmarks assert: zero expectation
mismatches and zero unexplained miscompiles.

Run from the shell (the CI smoke job uses ``--fast``)::

    PYTHONPATH=src python -m repro.experiments.fuzz --fast
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.experiments.common import render_table
from repro.fuzz import FuzzConfig, FuzzResult, run_fuzz_campaign

#: The acceptance-scale campaign: every scenario class well past saturation.
DEFAULT_BUDGET = 200
FAST_BUDGET = 24


def run_fuzz_experiment(budget: int = DEFAULT_BUDGET, seed: int = 0,
                        workers: int = 0, reduce: bool = True,
                        out: Optional[str] = None,
                        config: Optional[FuzzConfig] = None) -> FuzzResult:
    """Run the campaign this experiment tabulates."""
    if config is None:
        config = FuzzConfig(seed=seed, budget=budget, workers=workers,
                            reduce=reduce, out=out)
    return run_fuzz_campaign(config)


def render(result: FuzzResult) -> str:
    """The per-scenario campaign table plus the invariant summary lines."""
    stats = result.stats
    headers = ["scenario", "programs", "expected unstable", "flagged",
               "confirmed", "mismatches", "miscompiles", "reduced"]
    rows = []
    for name, row in sorted(stats.by_scenario.items()):
        rows.append([name, row["programs"], row["expected_unstable"],
                     row["flagged"], row["confirmed"], row["mismatches"],
                     row["miscompiles"], row["reduced"]])
    rows.append(["TOTAL", stats.programs, stats.expected_unstable,
                 stats.flagged_programs, stats.witnesses_confirmed,
                 stats.expectation_mismatches, stats.miscompiles,
                 stats.reduced_cases])
    parts = [render_table(
        headers, rows,
        title=f"Fuzzing campaign (seed {stats.seed}, {stats.programs} "
              f"programs, {stats.throughput:.1f} programs/s through the "
              f"engine)")]
    parts.append(
        f"diagnostics: {stats.diagnostics} "
        f"({stats.witnesses_confirmed} witness-confirmed); differential: "
        f"{stats.diff_executions} executions, {stats.diff_ub_justified} "
        f"UB-justified, {stats.miscompiles} miscompiles; reduction: "
        f"{stats.reduced_cases} minimal reproducers in "
        f"{stats.reduction_checker_runs} checker re-runs")
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fuzz",
        description="Fixed-seed fuzzing campaign summary (docs/FUZZ.md).")
    parser.add_argument("--fast", action="store_true",
                        help=f"smoke mode: budget {FAST_BUDGET} instead of "
                             f"{DEFAULT_BUDGET}")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    parser.add_argument("--budget", type=int, default=None,
                        help="override the program budget")
    parser.add_argument("--workers", type=int, default=0,
                        help="engine worker processes (default: sequential)")
    args = parser.parse_args(argv)
    budget = args.budget if args.budget is not None else \
        (FAST_BUDGET if args.fast else DEFAULT_BUDGET)
    result = run_fuzz_experiment(budget=budget, seed=args.seed,
                                 workers=args.workers)
    print(render(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
