"""Figure 16: checker performance on Kerberos, Postgres, and the Linux kernel.

The paper reports build time, analysis time, number of files, number of
solver queries, and query timeouts for three systems (705, 770, and 14,136
files).  The reproduction builds scaled synthetic corpora with the same
*relative* sizes, measures real build (frontend+lowering) and analysis
(checker) time, and reports the measured query/timeout counts next to the
paper's numbers.  Absolute times are expected to differ (pure-Python solver
vs. Boolector on a 2013 Xeon); the shape — Linux ≫ Postgres ≫ Kerberos,
timeouts well under 1 % — is the reproduction target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api import compile_source
from repro.core.checker import CheckerConfig
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS
from repro.engine.engine import CheckEngine, EngineConfig
from repro.experiments.common import render_table

#: (paper files, paper build minutes, paper analysis minutes, paper queries,
#:  paper timeouts) per system.
PAPER_FIGURE16: Dict[str, Tuple[int, int, int, int, int]] = {
    "Kerberos": (705, 1, 2, 79_547, 2),
    "Postgres": (770, 1, 11, 229_624, 1_131),
    "Linux kernel": (14_136, 33, 62, 3_094_340, 1_212),
}


@dataclass
class SystemPerformance:
    system: str
    files: int
    build_time: float
    analysis_time: float
    queries: int
    timeouts: int
    cache_hits: int = 0

    @property
    def timeout_fraction(self) -> float:
        return self.timeouts / self.queries if self.queries else 0.0


@dataclass
class Figure16Result:
    measurements: List[SystemPerformance] = field(default_factory=list)
    scale: float = 1.0

    def render(self) -> str:
        headers = ["system", "files", "build (s)", "analysis (s)",
                   "# queries", "# cache hits", "# timeouts", "paper files",
                   "paper queries", "paper timeouts"]
        rows = []
        for m in self.measurements:
            paper = PAPER_FIGURE16.get(m.system, (0, 0, 0, 0, 0))
            rows.append([m.system, m.files, f"{m.build_time:.2f}",
                         f"{m.analysis_time:.2f}", m.queries, m.cache_hits,
                         m.timeouts, paper[0], paper[3], paper[4]])
        title = (f"Figure 16: checker performance (synthetic corpora scaled to "
                 f"{self.scale:.3f} of the paper's file counts)")
        return render_table(headers, rows, title=title)


def _corpus_sources(file_count: int, unstable_fraction: float = 0.25) -> List[str]:
    """Deterministic mix of unstable and stable translation units."""
    sources: List[str] = []
    unstable_every = max(1, int(round(1.0 / unstable_fraction))) if unstable_fraction else 0
    for index in range(file_count):
        if unstable_every and index % unstable_every == 0:
            snippet = SNIPPETS[index % len(SNIPPETS)]
        else:
            snippet = STABLE_SNIPPETS[index % len(STABLE_SNIPPETS)]
        sources.append(snippet.render(f"perf_{index}"))
    return sources


def run_figure16(scale: float = 0.02,
                 config: Optional[CheckerConfig] = None,
                 workers: int = 0) -> Figure16Result:
    """Measure build/analysis performance on scaled synthetic corpora.

    ``scale`` multiplies the paper's per-system file counts (the default
    0.02 keeps a full run to roughly a minute on a laptop; the benchmark
    harness uses a smaller scale still).  The analysis phase runs through
    :class:`~repro.engine.engine.CheckEngine` — pass ``workers > 1`` to fan
    the per-file modules out over a worker pool with a shared solver-query
    cache, the way the paper's archive runs parallelize over packages.
    """
    config = config if config is not None else CheckerConfig(minimize_ub_sets=False)
    result = Figure16Result(scale=scale)
    # One engine for all three systems, so the solver-query cache carries
    # verdicts across corpora the way a real archive run would.
    engine = CheckEngine(EngineConfig(workers=workers, checker=config))

    for system, (paper_files, _bmin, _amin, _queries, _timeouts) in PAPER_FIGURE16.items():
        file_count = max(3, int(round(paper_files * scale)))
        sources = _corpus_sources(file_count)

        build_started = time.monotonic()
        modules = [compile_source(source, filename=f"{system}_{i}.c")
                   for i, source in enumerate(sources)]
        build_time = time.monotonic() - build_started

        run = engine.check_modules(modules)

        result.measurements.append(SystemPerformance(
            system=system, files=file_count, build_time=build_time,
            analysis_time=run.stats.wall_clock, queries=run.stats.queries,
            timeouts=run.stats.timeouts, cache_hits=run.stats.cache_hits))
    return result
