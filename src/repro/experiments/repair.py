"""Stage-6 experiment: auto-repair rate over the snippet corpus.

The paper's case studies (§6.2) all end the same way: STACK diagnoses the
unstable fragment and a developer writes the patch by hand.  This driver
measures how much of that last step the repair subsystem closes
mechanically: every unstable snippet is checked with
``CheckerConfig(repair=True)``, and the per-snippet table reports how many
diagnostics received a patch that cleared all three verifier gates, how
many were rejected (with per-gate counts), and how many had no matching
template.

Run from the shell (the CI smoke job uses ``--fast``)::

    PYTHONPATH=src python -m repro.experiments.repair --fast
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.checker import CheckerConfig
from repro.core.report import Diagnostic
from repro.corpus.snippets import SNIPPETS, Snippet
from repro.experiments.common import render_table


@dataclass
class SnippetRepairRow:
    """Stage-6 verdicts for one snippet template."""

    snippet: str
    diagnostics: int
    repaired: int
    rejected: int
    no_template: int
    templates: str = ""              # comma-joined template names used


@dataclass
class RepairExperimentResult:
    """Repair rates plus the per-gate rejection tallies."""

    rows: List[SnippetRepairRow] = field(default_factory=list)
    gate_rejections: Dict[str, int] = field(default_factory=dict)
    #: Every diagnostic of the run (the benchmark audits their gates).
    diagnostics: List[Diagnostic] = field(default_factory=list)
    repair_time: float = 0.0

    @property
    def attempted(self) -> int:
        return sum(r.diagnostics for r in self.rows)

    @property
    def repaired(self) -> int:
        return sum(r.repaired for r in self.rows)

    @property
    def rejected(self) -> int:
        return sum(r.rejected for r in self.rows)

    @property
    def no_template(self) -> int:
        return sum(r.no_template for r in self.rows)

    @property
    def repair_rate(self) -> float:
        if not self.attempted:
            return 0.0
        return self.repaired / self.attempted

    @property
    def repaired_diagnostics(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.repair is not None and d.repair.repaired]

    def render(self) -> str:
        headers = ["snippet", "diagnostics", "repaired", "rejected",
                   "no template", "templates"]
        rows = [[r.snippet, r.diagnostics, r.repaired, r.rejected,
                 r.no_template, r.templates] for r in self.rows]
        rows.append(["TOTAL", self.attempted, self.repaired, self.rejected,
                     self.no_template, ""])
        parts = [render_table(
            headers, rows,
            title="Stage-6 auto-repair over the snippet corpus "
                  f"(repair rate {100.0 * self.repair_rate:.1f}%, "
                  f"{self.repair_time:.1f}s in stage 6)")]
        rejections = ", ".join(f"{gate}: {count}" for gate, count
                               in sorted(self.gate_rejections.items()))
        parts.append(f"candidate rejections by gate — "
                     f"{rejections or 'none'}")
        return "\n".join(parts)


#: A representative cross-section for smoke runs: each template family and
#: one known template gap, at minimal solver cost.
FAST_SNIPPET_NAMES = (
    "fig1_pointer_overflow_check",       # pointer-bound-check
    "fig2_null_check_after_deref",       # reorder-guard
    "fig13_plan9_pdec_negation",         # widen-signed-arithmetic
    "ext4_oversized_shift_check",        # guard-oversized-shift
    "division_by_zero_late_check",       # reorder-guard (div)
    "fig10_postgres_division_overflow",  # no template (honest gap)
)


def run_repair_experiment(workers: int = 0,
                          config: Optional[CheckerConfig] = None,
                          fast: bool = False,
                          snippets: Optional[Sequence[Snippet]] = None,
                          ) -> RepairExperimentResult:
    """Repair every unstable-snippet diagnostic and tabulate the verdicts."""
    from repro.engine.engine import CheckEngine, EngineConfig

    if config is None:
        config = CheckerConfig(repair=True)
    if snippets is None:
        if fast:
            snippets = [s for s in SNIPPETS if s.name in FAST_SNIPPET_NAMES]
        else:
            snippets = SNIPPETS

    result = RepairExperimentResult()
    engine = CheckEngine(EngineConfig(workers=workers, checker=config))
    outcome = engine.check_corpus(
        (snippet.name, snippet.render("t")) for snippet in snippets)
    for snippet, unit in zip(snippets, outcome.results):
        report = unit.report
        templates = sorted({bug.repair.template for bug in report.bugs
                            if bug.repair is not None and bug.repair.repaired})
        result.rows.append(SnippetRepairRow(
            snippet=snippet.name,
            diagnostics=report.repairs_attempted,
            repaired=report.repairs_succeeded,
            rejected=report.repairs_rejected,
            no_template=report.repairs_no_template,
            templates=",".join(templates),
        ))
        result.diagnostics.extend(report.bugs)
    stats = outcome.stats
    result.gate_rejections = {
        "equivalence": stats.repair_gate_equivalence_rejects,
        "recheck": stats.repair_gate_recheck_rejects,
        "replay": stats.repair_gate_replay_rejects,
    }
    result.repair_time = stats.repair_time
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.repair",
        description="Auto-repair rate over the snippet corpus (stage 6).")
    parser.add_argument("--fast", action="store_true",
                        help="smoke mode: a representative snippet subset")
    parser.add_argument("--workers", type=int, default=0,
                        help="engine worker processes (default: sequential)")
    args = parser.parse_args(argv)
    result = run_repair_experiment(workers=args.workers, fast=args.fast)
    print(result.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
