"""§6.2 case studies and §6.3 precision analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api import check_source
from repro.core.classify import BugClass
from repro.core.checker import CheckerConfig
from repro.corpus.snippets import SNIPPETS, Snippet, paper_figure_snippets
from repro.corpus.systems import generate_system_corpus, system_by_name
from repro.experiments.common import SnippetAnalyzer, render_table


# ---------------------------------------------------------------------------
# §6.2 — case studies
# ---------------------------------------------------------------------------

@dataclass
class CaseStudyOutcome:
    snippet: Snippet
    detected: bool
    algorithms: List[str] = field(default_factory=list)
    kinds: List[str] = field(default_factory=list)
    expected_class: str = ""


@dataclass
class CaseStudyResult:
    outcomes: List[CaseStudyOutcome] = field(default_factory=list)

    @property
    def detected_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.detected)

    def render(self) -> str:
        headers = ["figure", "snippet", "detected", "UB kinds", "category (paper)"]
        rows = []
        for outcome in self.outcomes:
            rows.append([
                outcome.snippet.figure or "-",
                outcome.snippet.name,
                "yes" if outcome.detected else "NO",
                ", ".join(sorted(set(outcome.kinds))) or "-",
                outcome.expected_class,
            ])
        title = ("Section 6.2 case studies: every numbered example from the paper, "
                 "re-checked")
        return render_table(headers, rows, title=title)


def run_case_studies(analyzer: Optional[SnippetAnalyzer] = None) -> CaseStudyResult:
    """Re-check the paper's numbered examples (Figures 1, 2, 10–15)."""
    analyzer = analyzer if analyzer is not None else SnippetAnalyzer()
    result = CaseStudyResult()
    for snippet in paper_figure_snippets():
        analysis = analyzer.analyze(snippet)
        result.outcomes.append(CaseStudyOutcome(
            snippet=snippet,
            detected=analysis.flagged,
            algorithms=[a.value for a in analysis.algorithms],
            kinds=[k.value for k in analysis.kinds],
            expected_class=snippet.bug_class.value if snippet.bug_class else "",
        ))
    return result


# ---------------------------------------------------------------------------
# §6.3 — precision on Kerberos and Postgres
# ---------------------------------------------------------------------------

#: The paper's precision findings.
PAPER_PRECISION = {
    "Kerberos": {"reports": 11, "fixed": 11, "false": 0},
    "Postgres": {"reports": 68, "fixed": 9, "urgent": 29, "time_bombs": 26,
                 "redundant": 4},
}


@dataclass
class PrecisionResult:
    system_reports: Dict[str, int] = field(default_factory=dict)
    system_real_bugs: Dict[str, int] = field(default_factory=dict)
    system_redundant: Dict[str, int] = field(default_factory=dict)
    by_class: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def false_warning_rate(self, system: str) -> float:
        reports = self.system_reports.get(system, 0)
        if not reports:
            return 0.0
        return self.system_redundant.get(system, 0) / reports

    def render(self) -> str:
        headers = ["system", "reports", "real bugs", "redundant (false warnings)",
                   "paper reports"]
        rows = []
        for system, reports in self.system_reports.items():
            rows.append([
                system, reports, self.system_real_bugs.get(system, 0),
                self.system_redundant.get(system, 0),
                PAPER_PRECISION.get(system, {}).get("reports", "-"),
            ])
        table = render_table(headers, rows, title="Section 6.3: precision")
        detail_lines = []
        for system, classes in self.by_class.items():
            breakdown = ", ".join(f"{name}: {count}" for name, count in classes.items())
            detail_lines.append(f"  {system}: {breakdown}")
        return table + "\n" + "\n".join(detail_lines)


#: Report composition used for the precision corpora: (bug class, count,
#: template names to draw from).  Kerberos: 11 reports, all real bugs.
#: Postgres: 68 reports = 9 promptly fixed + 29 discarded by icc/pathcc
#: (urgent) + 26 time bombs + 4 redundant, as §6.3 describes.
_PRECISION_COMPOSITION: Dict[str, List] = {
    "Kerberos": [
        (BugClass.NON_OPTIMIZATION, 9, ["fig2_null_check_after_deref",
                                        "fig11_strchr_plus_one_null_check"]),
        (BugClass.URGENT_OPTIMIZATION, 1, ["kerberos_length_check"]),
        (BugClass.TIME_BOMB, 1, ["use_after_free_check"]),
    ],
    "Postgres": [
        (BugClass.NON_OPTIMIZATION, 9, ["fig10_postgres_division_overflow"]),
        (BugClass.URGENT_OPTIMIZATION, 29, ["signed_add_sanity_check",
                                            "positive_signed_overflow_check",
                                            "fig12_ffmpeg_amf_bounds_check"]),
        (BugClass.TIME_BOMB, 26, ["fig14_postgres_time_bomb",
                                  "signed_add_overflow_check_after"]),
        (BugClass.REDUNDANT, 4, ["fig15_redundant_null_check"]),
    ],
}


def run_precision(systems: tuple = ("Kerberos", "Postgres"),
                  analyzer: Optional[SnippetAnalyzer] = None) -> PrecisionResult:
    """Classify every report for the Kerberos and Postgres precision corpora.

    The report mix per system follows §6.3's published composition (see
    ``_PRECISION_COMPOSITION``); each seeded instance is re-checked (template
    analysis is memoised) and counted only if the checker actually reports it.
    """
    from repro.corpus.snippets import snippet_by_name

    analyzer = analyzer if analyzer is not None else SnippetAnalyzer()
    result = PrecisionResult()
    for system_name in systems:
        composition = _PRECISION_COMPOSITION.get(system_name, [])
        reports = 0
        redundant = 0
        class_counts: Dict[str, int] = {}
        for bug_class, count, template_names in composition:
            for index in range(count):
                snippet = snippet_by_name(template_names[index % len(template_names)])
                analysis = analyzer.analyze(snippet)
                if not analysis.flagged:
                    continue
                reports += 1
                class_counts[bug_class.value] = class_counts.get(bug_class.value, 0) + 1
                if bug_class is BugClass.REDUNDANT:
                    redundant += 1
        result.system_reports[system_name] = reports
        result.system_redundant[system_name] = redundant
        result.system_real_bugs[system_name] = reports - redundant
        result.by_class[system_name] = class_counts
    return result
