"""Shared experiment infrastructure: memoised analysis and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api import check_source
from repro.core.checker import CheckerConfig
from repro.core.report import Algorithm, BugReport
from repro.core.ubconditions import UBKind
from repro.corpus.snippets import Snippet


@dataclass
class SnippetAnalysis:
    """Checker output summarised for one snippet template."""

    snippet_name: str
    bug_count: int
    kinds: Tuple[UBKind, ...]
    algorithms: Tuple[Algorithm, ...]
    queries: int
    timeouts: int
    analysis_time: float
    ub_conditions_per_bug: Tuple[int, ...] = ()

    @property
    def flagged(self) -> bool:
        return self.bug_count > 0


class SnippetAnalyzer:
    """Runs the checker on snippet templates, memoising by template name.

    The synthetic corpora instantiate the same template many times with only
    identifier suffixes changing, which cannot affect the analysis outcome.
    Analyzing each template once and reusing the summary keeps the archive-
    and system-scale experiments tractable on a laptop; the per-instance
    counts still come from the corpus seeding.

    A shared :class:`~repro.engine.cache.SolverQueryCache` can be attached so
    that even *distinct* templates reuse each other's solver verdicts, and
    :meth:`prewarm` routes a batch of templates through the parallel
    :class:`~repro.engine.engine.CheckEngine` before the sequential
    tabulation loops run.
    """

    def __init__(self, config: Optional[CheckerConfig] = None,
                 query_cache: Optional["SolverQueryCache"] = None) -> None:
        self.config = config if config is not None else CheckerConfig()
        self.query_cache = query_cache
        self._cache: Dict[str, SnippetAnalysis] = {}

    def analyze(self, snippet: Snippet) -> SnippetAnalysis:
        cached = self._cache.get(snippet.name)
        if cached is not None:
            return cached
        report = check_source(snippet.render("t"), filename=f"{snippet.name}.c",
                              config=self.config, cache=self.query_cache)
        analysis = self._summarise(snippet.name, report)
        self._cache[snippet.name] = analysis
        return analysis

    def analyze_source(self, name: str, source: str) -> SnippetAnalysis:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        report = check_source(source, filename=f"{name}.c", config=self.config,
                              cache=self.query_cache)
        analysis = self._summarise(name, report)
        self._cache[name] = analysis
        return analysis

    def prewarm(self, snippets: Iterable[Snippet], workers: int = 0) -> int:
        """Analyze many templates through the engine in one fan-out.

        Summaries land in the memo cache and the workers' solver verdicts are
        absorbed into ``query_cache``, so subsequent sequential ``analyze``
        calls are cache replays.  Returns the number of templates analyzed.
        """
        from repro.engine.engine import CheckEngine, EngineConfig

        pending = [s for s in snippets if s.name not in self._cache]
        if not pending:
            return 0
        engine = CheckEngine(EngineConfig(workers=workers, checker=self.config))
        if self.query_cache is not None and engine.cache is not None:
            # Verdicts the analyzer already holds seed the fan-out warm.
            engine.cache.seed(self.query_cache.snapshot())
        result = engine.check_corpus(
            (snippet.name, snippet.render("t")) for snippet in pending)
        for snippet, unit_result in zip(pending, result.results):
            if not unit_result.ok:
                continue
            self._cache[snippet.name] = self._summarise(snippet.name,
                                                        unit_result.report)
        if self.query_cache is not None and engine.cache is not None:
            self.query_cache.absorb(engine.cache.snapshot())
        return len(pending)

    @staticmethod
    def _summarise(name: str, report: BugReport) -> SnippetAnalysis:
        kinds: List[UBKind] = []
        algorithms: List[Algorithm] = []
        per_bug: List[int] = []
        for bug in report.bugs:
            kinds.extend(set(bug.ub_kinds))
            algorithms.append(bug.algorithm)
            per_bug.append(max(1, len(bug.ub_set)))
        return SnippetAnalysis(
            snippet_name=name,
            bug_count=len(report.bugs),
            kinds=tuple(kinds),
            algorithms=tuple(algorithms),
            queries=report.queries,
            timeouts=report.timeouts,
            analysis_time=report.analysis_time,
            ub_conditions_per_bug=tuple(per_bug),
        )


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table in the style of the paper's figures."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        for index in range(columns):
            if index < len(row):
                widths[index] = max(widths[index], len(row[index]))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        padded = [row[i].ljust(widths[i]) if i < len(row) else "".ljust(widths[i])
                  for i in range(columns)]
        lines.append("  ".join(padded))
    return "\n".join(lines)


def fast_checker_config() -> CheckerConfig:
    """A configuration tuned for corpus-scale experiments."""
    return CheckerConfig(solver_timeout=5.0, max_conflicts=30_000,
                         minimize_ub_sets=True)
