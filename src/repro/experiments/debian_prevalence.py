"""Figures 17 and 18 and §6.5: prevalence of unstable code across an archive.

The experiment analyzes a deterministic sample of synthetic Debian-shaped
packages with the real checker, then extrapolates the per-package rates to
the 8,575 C/C++ packages of Debian Wheezy.  Three numbers are compared with
the paper:

* the number of packages with at least one unstable-code report (§6.5 says
  3,471 of 8,575),
* reports per algorithm (Figure 17),
* reports per UB condition kind (Figure 18), plus the single- vs. multi-UB
  report split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.report import Algorithm
from repro.core.ubconditions import UBKind
from repro.corpus.debian import (
    DebianArchiveModel,
    PAPER_C_PACKAGES,
    PAPER_PACKAGES_WITH_REPORTS,
    PAPER_REPORTS_BY_ALGORITHM,
    PAPER_REPORTS_BY_KIND,
)
from repro.experiments.common import SnippetAnalyzer, render_table


@dataclass
class PrevalenceResult:
    sample_size: int
    packages_with_reports: int = 0
    reports_by_algorithm: Dict[Algorithm, int] = field(default_factory=dict)
    packages_by_algorithm: Dict[Algorithm, int] = field(default_factory=dict)
    reports_by_kind: Dict[UBKind, int] = field(default_factory=dict)
    single_ub_reports: int = 0
    multi_ub_reports: int = 0

    # -- extrapolation ------------------------------------------------------------

    def extrapolated_packages_with_reports(self) -> int:
        return int(round(DebianArchiveModel.scale_to_archive(
            self.packages_with_reports, self.sample_size)))

    def extrapolated_reports_by_algorithm(self) -> Dict[Algorithm, int]:
        return {
            algorithm: int(round(DebianArchiveModel.scale_to_archive(count, self.sample_size)))
            for algorithm, count in self.reports_by_algorithm.items()
        }

    def extrapolated_reports_by_kind(self) -> Dict[UBKind, int]:
        return {
            kind: int(round(DebianArchiveModel.scale_to_archive(count, self.sample_size)))
            for kind, count in self.reports_by_kind.items()
        }

    # -- rendering -----------------------------------------------------------------

    def render_figure17(self) -> str:
        headers = ["algorithm", "# reports (sample)", "# reports (extrapolated)",
                   "# reports (paper)"]
        paper_by_name = PAPER_REPORTS_BY_ALGORITHM
        extrapolated = self.extrapolated_reports_by_algorithm()
        rows = []
        for algorithm in Algorithm:
            rows.append([
                algorithm.value,
                self.reports_by_algorithm.get(algorithm, 0),
                extrapolated.get(algorithm, 0),
                paper_by_name.get(algorithm.value, 0),
            ])
        prevalence = (
            f"packages with >=1 report: {self.packages_with_reports}/{self.sample_size} "
            f"sampled -> {self.extrapolated_packages_with_reports()} of "
            f"{PAPER_C_PACKAGES} extrapolated (paper: {PAPER_PACKAGES_WITH_REPORTS})")
        return render_table(headers, rows,
                            title="Figure 17: reports per algorithm") + "\n\n" + prevalence

    def render_figure18(self) -> str:
        headers = ["UB condition", "# reports (sample)", "# reports (extrapolated)",
                   "# reports (paper)"]
        extrapolated = self.extrapolated_reports_by_kind()
        rows = []
        for kind, paper_count in PAPER_REPORTS_BY_KIND.items():
            rows.append([kind.value, self.reports_by_kind.get(kind, 0),
                         extrapolated.get(kind, 0), paper_count])
        split = (f"reports with a single UB condition: {self.single_ub_reports}; "
                 f"with multiple: {self.multi_ub_reports} "
                 f"(paper: 69,301 vs 2,579)")
        return render_table(headers, rows,
                            title="Figure 18: reports per UB condition") + "\n\n" + split

    def render(self) -> str:
        return self.render_figure17() + "\n\n" + self.render_figure18()


def run_prevalence(sample_size: int = 60, seed: int = 2013,
                   analyzer: Optional[SnippetAnalyzer] = None,
                   workers: int = 0) -> PrevalenceResult:
    """Analyze a sample of synthetic packages and tabulate report statistics.

    With ``workers > 1`` the distinct snippet templates seeded across the
    sampled packages are first analyzed through the parallel
    :class:`~repro.engine.engine.CheckEngine` (sharing one solver-query
    cache), and the per-package tabulation then runs over memoised results.
    """
    model = DebianArchiveModel(seed=seed)
    if analyzer is None:
        from repro.engine.cache import SolverQueryCache

        analyzer = SnippetAnalyzer(query_cache=SolverQueryCache())
    result = PrevalenceResult(sample_size=sample_size)

    packages = model.sample_packages(sample_size)
    if workers > 1:
        distinct = {snippet.name: snippet for package in packages
                    for snippet in package.seeded_snippets}
        analyzer.prewarm(distinct.values(), workers=workers)

    for package in packages:
        package_algorithms = set()
        package_had_report = False
        for _filename, _source, snippet in package.files:
            if snippet is None:
                continue
            analysis = analyzer.analyze(snippet)
            if not analysis.flagged:
                continue
            package_had_report = True
            for algorithm in analysis.algorithms:
                result.reports_by_algorithm[algorithm] = \
                    result.reports_by_algorithm.get(algorithm, 0) + 1
                package_algorithms.add(algorithm)
            for kind in analysis.kinds:
                result.reports_by_kind[kind] = result.reports_by_kind.get(kind, 0) + 1
            for conditions in analysis.ub_conditions_per_bug:
                if conditions > 1:
                    result.multi_ub_reports += 1
                else:
                    result.single_ub_reports += 1
        if package_had_report:
            result.packages_with_reports += 1
        for algorithm in package_algorithms:
            result.packages_by_algorithm[algorithm] = \
                result.packages_by_algorithm.get(algorithm, 0) + 1
    return result
