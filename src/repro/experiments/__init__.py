"""Experiment drivers that regenerate every table and figure of the paper.

Each module produces a result object plus a ``render()``-style text table so
that the benchmark harness (``benchmarks/``) and the examples can print the
same rows the paper reports:

* :mod:`repro.experiments.fig4` — the compiler survey matrix (Figure 4),
* :mod:`repro.experiments.fig9` — new bugs per system / per UB kind (Figure 9
  and §6.1),
* :mod:`repro.experiments.fig16` — checker performance (Figure 16),
* :mod:`repro.experiments.debian_prevalence` — archive-scale prevalence
  (Figures 17 and 18, §6.5),
* :mod:`repro.experiments.casestudies` — the §6.2 case studies and the §6.3
  precision analysis,
* :mod:`repro.experiments.completeness` — the §6.6 completeness benchmark,
* :mod:`repro.experiments.witnesses` — stage-5 witness confirmation rates and
  the differential optimizer campaign (§6.1/§6.3 made concrete),
* :mod:`repro.experiments.common` — shared helpers (memoised snippet
  analysis, ASCII tables).
"""

from repro.experiments.common import SnippetAnalyzer, render_table
from repro.experiments.fig4 import Figure4Result, run_figure4
from repro.experiments.fig9 import Figure9Result, run_figure9
from repro.experiments.fig16 import Figure16Result, run_figure16
from repro.experiments.debian_prevalence import PrevalenceResult, run_prevalence
from repro.experiments.casestudies import (
    CaseStudyResult,
    PrecisionResult,
    run_case_studies,
    run_precision,
)
from repro.experiments.completeness import CompletenessResult, run_completeness
from repro.experiments.witnesses import (
    WitnessExperimentResult,
    run_witness_experiment,
    run_witness_validation,
)

__all__ = [
    "CaseStudyResult",
    "CompletenessResult",
    "Figure16Result",
    "Figure4Result",
    "Figure9Result",
    "PrecisionResult",
    "PrevalenceResult",
    "SnippetAnalyzer",
    "WitnessExperimentResult",
    "render_table",
    "run_case_studies",
    "run_completeness",
    "run_figure16",
    "run_figure4",
    "run_figure9",
    "run_precision",
    "run_prevalence",
    "run_witness_experiment",
    "run_witness_validation",
]
