"""Figure 4: which compilers discard which unstable checks, and at what level."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compilers.survey import (
    PAPER_FIGURE4,
    SurveyResult,
    run_survey,
    survey_matrix,
)


@dataclass
class Figure4Result:
    """The regenerated matrix together with the comparison to the paper."""

    survey: SurveyResult
    mismatches: List[str] = field(default_factory=list)

    @property
    def matches_paper(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        lines = ["Figure 4: lowest -O level at which each compiler discards each check",
                 "",
                 survey_matrix(self.survey),
                 ""]
        if self.matches_paper:
            lines.append("All cells match the paper's Figure 4.")
        else:
            lines.append(f"{len(self.mismatches)} cells differ from the paper:")
            lines.extend(f"  {m}" for m in self.mismatches)
        return "\n".join(lines)


def run_figure4() -> Figure4Result:
    """Run the compiler survey and compare every cell against the paper."""
    survey = run_survey()
    return Figure4Result(survey=survey, mismatches=survey.mismatches())


def paper_cell_count() -> int:
    """Total number of cells in the paper's matrix (for reporting coverage)."""
    return sum(len(row) for row in PAPER_FIGURE4.values())
