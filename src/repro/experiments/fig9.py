"""Figure 9 / §6.1: new bugs per system, broken down by undefined behavior."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.ubconditions import UBKind
from repro.corpus.systems import (
    FIGURE9_KIND_TOTALS,
    FIGURE9_KINDS,
    FIGURE9_SYSTEM_TOTALS,
    FIGURE9_TOTAL_BUGS,
    SYSTEMS,
    SystemProfile,
    generate_system_corpus,
)
from repro.experiments.common import SnippetAnalyzer, render_table


@dataclass
class SystemFinding:
    """Checker results for one system's synthetic code base."""

    system: str
    seeded_bugs: int
    confirmed_bugs: int
    by_kind: Dict[UBKind, int] = field(default_factory=dict)
    false_positives_on_stable_files: int = 0


@dataclass
class Figure9Result:
    findings: List[SystemFinding] = field(default_factory=list)

    @property
    def total_confirmed(self) -> int:
        return sum(f.confirmed_bugs for f in self.findings)

    @property
    def total_seeded(self) -> int:
        return sum(f.seeded_bugs for f in self.findings)

    def kind_totals(self) -> Dict[UBKind, int]:
        totals: Dict[UBKind, int] = {kind: 0 for kind in FIGURE9_KINDS}
        for finding in self.findings:
            for kind, count in finding.by_kind.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    @property
    def total_false_positives(self) -> int:
        return sum(f.false_positives_on_stable_files for f in self.findings)

    def render(self) -> str:
        headers = ["system", "# bugs"] + [k.short_name for k in FIGURE9_KINDS]
        rows = []
        for finding in self.findings:
            row = [finding.system, finding.confirmed_bugs]
            row.extend(finding.by_kind.get(kind, 0) or "" for kind in FIGURE9_KINDS)
            rows.append(row)
        totals = self.kind_totals()
        rows.append(["all", self.total_confirmed] +
                    [totals.get(kind, 0) for kind in FIGURE9_KINDS])
        table = render_table(headers, rows,
                             title="Figure 9: new bugs identified, by system and UB kind")
        paper = (f"paper: {FIGURE9_TOTAL_BUGS} bugs total; "
                 f"this run: {self.total_confirmed} confirmed from "
                 f"{self.total_seeded} seeded patterns; "
                 f"{self.total_false_positives} warnings on stable filler code")
        return table + "\n\n" + paper


def run_figure9(systems: Optional[Sequence[SystemProfile]] = None,
                analyzer: Optional[SnippetAnalyzer] = None) -> Figure9Result:
    """Check every system's synthetic code base and tabulate confirmed bugs.

    Analysis is memoised per snippet template (see
    :class:`~repro.experiments.common.SnippetAnalyzer`); instance counts come
    from the corpus seeding, so the table reflects what the checker finds for
    each seeded pattern instance.
    """
    systems = list(SYSTEMS if systems is None else systems)
    analyzer = analyzer if analyzer is not None else SnippetAnalyzer()
    result = Figure9Result()

    for profile in systems:
        finding = SystemFinding(system=profile.name, seeded_bugs=profile.total_bugs,
                                confirmed_bugs=0)
        corpus = generate_system_corpus(profile)
        for _filename, _source, snippet in corpus:
            if snippet is None:
                continue
            analysis = analyzer.analyze(snippet)
            if not analysis.flagged:
                continue
            finding.confirmed_bugs += 1
            # Attribute the confirmed bug to the seeded kind(s) so the table
            # has the same column structure as the paper.
            for kind in snippet.ub_kinds:
                finding.by_kind[kind] = finding.by_kind.get(kind, 0) + 1
                break
        result.findings.append(finding)

    # Stable-file false positives are evaluated once globally (same templates
    # everywhere); spread the count onto the first finding for reporting.
    from repro.corpus.snippets import STABLE_SNIPPETS
    false_positives = 0
    for stable in STABLE_SNIPPETS:
        if analyzer.analyze(stable).flagged:
            false_positives += 1
    if result.findings:
        result.findings[0].false_positives_on_stable_files = false_positives
    return result
