"""Stage-5 experiments: witness confirmation and differential optimizer testing.

The paper's §6.1/§6.3 argument is that STACK's warnings are *real*: each one
corresponds to an input that makes optimized and unoptimized code diverge.
This driver makes that claim mechanical over the snippet corpus:

* **Witness validation** — check every unstable snippet with
  ``CheckerConfig(validate_witnesses=True)`` and tabulate the stage-5
  verdicts: a *confirmed* diagnostic's solver model concretely triggered
  the reported minimal-UB-set condition when replayed through the IR
  interpreter.
* **Differential testing** — execute every snippet (unstable *and* stable)
  under seeded inputs against each compiler profile's pipeline
  (:mod:`repro.exec.diff`).  Divergences must be UB-justified; a
  miscompile would mean a pass folded a check a well-defined execution
  relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import compile_source
from repro.compilers.profiles import ALL_PROFILES, CompilerProfile
from repro.core.checker import CheckerConfig
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS
from repro.exec.diff import DiffReport, run_differential
from repro.experiments.common import render_table


@dataclass
class SnippetWitnessRow:
    """Stage-5 verdicts for one snippet template."""

    snippet: str
    diagnostics: int
    confirmed: int
    unconfirmed: int
    inconclusive: int


@dataclass
class WitnessExperimentResult:
    """Confirmation rates plus the differential campaign."""

    rows: List[SnippetWitnessRow] = field(default_factory=list)
    diff: Optional[DiffReport] = None

    @property
    def validated(self) -> int:
        return sum(r.confirmed + r.unconfirmed + r.inconclusive
                   for r in self.rows)

    @property
    def confirmed(self) -> int:
        return sum(r.confirmed for r in self.rows)

    @property
    def unconfirmed(self) -> int:
        return sum(r.unconfirmed for r in self.rows)

    @property
    def inconclusive(self) -> int:
        return sum(r.inconclusive for r in self.rows)

    @property
    def confirmation_rate(self) -> float:
        if not self.validated:
            return 0.0
        return self.confirmed / self.validated

    @property
    def miscompiles(self) -> int:
        return 0 if self.diff is None else len(self.diff.miscompiles)

    def render(self) -> str:
        headers = ["snippet", "diagnostics", "confirmed", "unconfirmed",
                   "inconclusive"]
        rows = [[r.snippet, r.diagnostics, r.confirmed, r.unconfirmed,
                 r.inconclusive] for r in self.rows]
        rows.append(["TOTAL", sum(r.diagnostics for r in self.rows),
                     self.confirmed, self.unconfirmed, self.inconclusive])
        parts = [render_table(
            headers, rows,
            title="Stage-5 witness validation over the snippet corpus "
                  f"(confirmation rate "
                  f"{100.0 * self.confirmation_rate:.1f}%)")]
        if self.diff is not None:
            parts.append("")
            parts.append(self.diff.render())
        return "\n".join(parts)


def run_witness_validation(workers: int = 0,
                           config: Optional[CheckerConfig] = None,
                           ) -> WitnessExperimentResult:
    """Validate every unstable-snippet diagnostic with a concrete witness."""
    from repro.engine.engine import CheckEngine, EngineConfig

    if config is None:
        config = CheckerConfig(validate_witnesses=True)
    result = WitnessExperimentResult()
    engine = CheckEngine(EngineConfig(workers=workers, checker=config))
    outcome = engine.check_corpus(
        (snippet.name, snippet.render("t")) for snippet in SNIPPETS)
    for snippet, unit in zip(SNIPPETS, outcome.results):
        report = unit.report
        result.rows.append(SnippetWitnessRow(
            snippet=snippet.name,
            diagnostics=len(report.bugs),
            confirmed=report.witnesses_confirmed,
            unconfirmed=report.witnesses_unconfirmed,
            inconclusive=report.witnesses_inconclusive,
        ))
    return result


def run_differential_campaign(
        profiles: Optional[Sequence[CompilerProfile]] = None,
        level: int = 2, inputs_per_function: int = 6,
        seed: int = 0) -> DiffReport:
    """Differentially execute the full snippet corpus (unstable + stable)."""
    units = [(snippet.name, compile_source(snippet.render("t"),
                                           filename=f"{snippet.name}.c"))
             for snippet in SNIPPETS + STABLE_SNIPPETS]
    return run_differential(units, profiles=profiles, level=level,
                            inputs_per_function=inputs_per_function,
                            seed=seed)


def run_witness_experiment(workers: int = 0,
                           profiles: Optional[Sequence[CompilerProfile]] = None,
                           inputs_per_function: int = 6,
                           seed: int = 0) -> WitnessExperimentResult:
    """Both halves: witness validation plus the differential campaign."""
    result = run_witness_validation(workers=workers)
    result.diff = run_differential_campaign(
        profiles=profiles if profiles is not None else ALL_PROFILES,
        inputs_per_function=inputs_per_function, seed=seed)
    return result
