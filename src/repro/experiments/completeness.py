"""§6.6: what unstable code does the checker miss?"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.api import check_source
from repro.core.checker import CheckerConfig
from repro.corpus.benchmark_suite import (
    COMPLETENESS_TESTS,
    CompletenessTest,
    expected_detection_count,
)
from repro.experiments.common import render_table


@dataclass
class CompletenessOutcome:
    test: CompletenessTest
    detected: bool

    @property
    def as_expected(self) -> bool:
        return self.detected == self.test.expected_detected


@dataclass
class CompletenessResult:
    outcomes: List[CompletenessOutcome] = field(default_factory=list)

    @property
    def detected_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.detected)

    @property
    def expected_count(self) -> int:
        return expected_detection_count()

    @property
    def matches_paper(self) -> bool:
        return all(outcome.as_expected for outcome in self.outcomes)

    def render(self) -> str:
        headers = ["test", "detected", "expected", "reason"]
        rows = []
        for outcome in self.outcomes:
            rows.append([
                outcome.test.name,
                "yes" if outcome.detected else "no",
                "yes" if outcome.test.expected_detected else "no",
                outcome.test.reason,
            ])
        summary = (f"identified {self.detected_count} of {len(self.outcomes)} tests "
                   f"(paper: {self.expected_count} of 10)")
        return render_table(headers, rows,
                            title="Section 6.6: completeness benchmark") + "\n\n" + summary


def run_completeness(config: Optional[CheckerConfig] = None) -> CompletenessResult:
    """Run the checker over the ten-test benchmark."""
    result = CompletenessResult()
    for test in COMPLETENESS_TESTS:
        report = check_source(test.source, filename=f"{test.name}.c", config=config)
        result.outcomes.append(CompletenessOutcome(test=test,
                                                   detected=bool(report.bugs)))
    return result
