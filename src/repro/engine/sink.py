"""Streaming JSONL result sink for engine runs.

One line per completed work unit (written as results arrive, so a crashed
run still leaves everything finished on disk) plus a final ``run`` summary
line with the aggregate statistics.  Per-function and per-run records carry
the solver-level counters (incremental contexts, CDCL calls, restarts,
bit-blasted clauses, solver time) next to the Figure 16 query counts, so
incremental-vs-scratch speedups are observable straight from the JSONL.
The schemas are documented in ``docs/ENGINE.md`` and deliberately contain
only plain JSON types so the files can be post-processed with ``jq`` or
loaded into a dataframe.
"""

from __future__ import annotations

import json
import os
from typing import IO, Dict, List, Optional

from repro.core.report import BugReport, Diagnostic

#: Record fields that measure wall-clock time.  Everything else in a unit
#: or run record is a deterministic function of the corpus and the checker
#: configuration; these are the only fields two otherwise identical runs
#: may disagree on.
TIMING_FIELDS = frozenset({
    "analysis_time", "solver_time", "witness_time", "repair_time",
    "cluster_time", "wall_clock", "elapsed",
})


def verdict_view(record: Dict[str, object]) -> Dict[str, object]:
    """A record with every timing field zeroed, recursively.

    Two runs over the same corpus under the same configuration — batch vs.
    served (docs/SERVE.md), sequential vs. parallel, cold vs. warm cache —
    must produce byte-identical ``verdict_view``-normalized records; the
    serve benchmark and tests assert exactly that.  Cache-dependent
    counters (``cache_hits`` and friends) are deliberately *kept*: callers
    comparing across cache states must account for them explicitly.
    """
    def scrub(value):
        if isinstance(value, dict):
            return {key: (0 if key in TIMING_FIELDS
                          and isinstance(child, (int, float))
                          else scrub(child))
                    for key, child in value.items()}
        if isinstance(value, list):
            return [scrub(child) for child in value]
        return value

    return scrub(record)


def diagnostic_to_dict(diagnostic: Diagnostic) -> Dict[str, object]:
    """Flatten one diagnostic into plain JSON types."""
    return {
        "function": diagnostic.function,
        "location": str(diagnostic.location),
        "algorithm": diagnostic.algorithm.value,
        "message": diagnostic.message,
        "fragment": diagnostic.fragment,
        "replacement": diagnostic.replacement,
        "ub_kinds": [kind.value for kind in diagnostic.ub_kinds],
        "classification": diagnostic.classification,
        "witness": diagnostic.witness.as_dict()
        if diagnostic.witness is not None else None,
        "repair": diagnostic.repair.as_dict()
        if diagnostic.repair is not None else None,
    }


def report_to_dict(name: str, report: BugReport, attempts: int = 1,
                   escalated: bool = False,
                   error: Optional[str] = None,
                   meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Flatten one unit's bug report into the JSONL ``unit`` record."""
    return {
        "type": "unit",
        "unit": name,
        "module": report.module,
        "error": error,
        "meta": dict(meta) if meta else {},
        "attempts": attempts,
        "escalated": escalated,
        "functions": [
            {
                "function": fr.function,
                "diagnostics": len(fr.diagnostics),
                "propagated": fr.cluster_propagated,
                "queries": fr.queries,
                "cache_hits": fr.cache_hits,
                "timeouts": fr.timeouts,
                "contexts": fr.contexts,
                "sat_calls": fr.sat_calls,
                "restarts": fr.restarts,
                "blasted_clauses": fr.blasted_clauses,
                "solver_time": round(fr.solver_time, 6),
                "oracle_sat": fr.oracle_sat,
                "oracle_unsat": fr.oracle_unsat,
                "backend_wins": dict(sorted(fr.backend_wins.items())),
                "analysis_time": round(fr.analysis_time, 6),
                "witnesses": {
                    "confirmed": fr.witnesses_confirmed,
                    "unconfirmed": fr.witnesses_unconfirmed,
                    "inconclusive": fr.witnesses_inconclusive,
                    "witness_time": round(fr.witness_time, 6),
                },
                "repair": {
                    "attempted": fr.repairs_attempted,
                    "repaired": fr.repairs_succeeded,
                    "rejected": fr.repairs_rejected,
                    "no_template": fr.repairs_no_template,
                    "gate_rejections": {
                        "equivalence": fr.repair_gate_equivalence_rejects,
                        "recheck": fr.repair_gate_recheck_rejects,
                        "replay": fr.repair_gate_replay_rejects,
                    },
                    "repair_time": round(fr.repair_time, 6),
                },
            }
            for fr in report.functions
        ],
        "diagnostics": [diagnostic_to_dict(d) for d in report.bugs],
        "queries": report.queries,
        "cache_hits": report.cache_hits,
        "timeouts": report.timeouts,
        "contexts": report.contexts,
        "sat_calls": report.sat_calls,
        "restarts": report.restarts,
        "blasted_clauses": report.blasted_clauses,
        "solver_time": round(report.solver_time, 6),
        "oracle_sat": report.oracle_sat,
        "oracle_unsat": report.oracle_unsat,
        "backend_wins": dict(sorted(report.backend_wins.items())),
        "analysis_time": round(report.analysis_time, 6),
        "witnesses_confirmed": report.witnesses_confirmed,
        "witnesses_unconfirmed": report.witnesses_unconfirmed,
        "witnesses_inconclusive": report.witnesses_inconclusive,
        "witness_time": round(report.witness_time, 6),
        "repairs_attempted": report.repairs_attempted,
        "repairs_succeeded": report.repairs_succeeded,
        "repairs_rejected": report.repairs_rejected,
        "repairs_no_template": report.repairs_no_template,
        "repair_time": round(report.repair_time, 6),
    }


class JsonlResultSink:
    """Appends one JSON object per line to a results file as units finish."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self.lines_written = 0

    def write_unit(self, name: str, report: BugReport, attempts: int = 1,
                   escalated: bool = False, error: Optional[str] = None,
                   meta: Optional[Dict[str, object]] = None) -> None:
        self._write(report_to_dict(name, report, attempts=attempts,
                                   escalated=escalated, error=error, meta=meta))

    def write_summary(self, stats: Dict[str, object]) -> None:
        record = {"type": "run"}
        record.update(stats)
        self._write(record)

    def write_record(self, record: Dict[str, object]) -> None:
        """Append an arbitrary record with a stable (sorted-key) encoding.

        Byte-for-byte reproducibility matters to callers like the fuzz
        campaign, whose regression tests diff whole files across runs; the
        ``unit``/``run`` records keep their historical insertion order.
        """
        self._write(record, sort_keys=True)

    def _write(self, record: Dict[str, object], sort_keys: bool = False) -> None:
        if self._handle is None:
            raise RuntimeError("result sink is closed")
        self._handle.write(json.dumps(record, sort_keys=sort_keys) + "\n")
        self._handle.flush()
        self.lines_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlResultSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
