"""repro.engine — the parallel corpus-checking engine.

Scales the per-function :class:`~repro.core.checker.StackChecker` up to
archive-sized corpora (the paper's §6.5 workload): a ``multiprocessing``
fan-out over picklable work units, a content-addressed solver-query cache
shared across functions / workers / runs, per-query budget escalation for
functions that time out, and a streaming JSONL result sink.

Attribute access is lazy (mirroring :mod:`repro`) so that lightweight
pieces — notably :mod:`repro.engine.cache`, which :mod:`repro.core.queries`
imports — can load without pulling in the checker stack.
"""

from __future__ import annotations

__all__ = [
    "CacheEntry",
    "CheckEngine",
    "EngineConfig",
    "EngineInterrupted",
    "EngineResult",
    "JsonlResultSink",
    "RunStats",
    "SolverQueryCache",
    "UnitResult",
    "WorkUnit",
    "aggregate_results",
    "canonical_query_key",
    "check_work_unit",
    "verdict_view",
]

_LAZY_ATTRS = {
    "CacheEntry": ("repro.engine.cache", "CacheEntry"),
    "SolverQueryCache": ("repro.engine.cache", "SolverQueryCache"),
    "canonical_query_key": ("repro.engine.cache", "canonical_query_key"),
    "CheckEngine": ("repro.engine.engine", "CheckEngine"),
    "EngineConfig": ("repro.engine.engine", "EngineConfig"),
    "EngineInterrupted": ("repro.engine.engine", "EngineInterrupted"),
    "EngineResult": ("repro.engine.engine", "EngineResult"),
    "RunStats": ("repro.engine.engine", "RunStats"),
    "aggregate_results": ("repro.engine.engine", "aggregate_results"),
    "JsonlResultSink": ("repro.engine.sink", "JsonlResultSink"),
    "verdict_view": ("repro.engine.sink", "verdict_view"),
    "UnitResult": ("repro.engine.workunit", "UnitResult"),
    "WorkUnit": ("repro.engine.workunit", "WorkUnit"),
    "check_work_unit": ("repro.engine.workunit", "check_work_unit"),
}


def __getattr__(name: str):
    target = _LAZY_ATTRS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.engine' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
