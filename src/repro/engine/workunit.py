"""Picklable work units for the corpus-checking engine.

A :class:`WorkUnit` is one translation unit to check — either MiniC source
text (compiled inside the worker, so only strings cross the process
boundary) or an already-lowered IR module.  :func:`check_work_unit` is the
pure function a worker runs: compile if needed, check every function, and
retry with an escalated per-query budget while any function still blows it.
Everything it takes and returns pickles, which is what lets
:class:`~repro.engine.engine.CheckEngine` fan units out over a
``multiprocessing`` pool.

Each function is checked through incremental solver contexts (see
:mod:`repro.core.queries`); the per-function :class:`FunctionReport`
carries the aggregated :class:`~repro.solver.solver.SolverStats` counters,
and escalation retries replace a starved function's report wholesale — so
unit results always reflect the budget that actually produced them.
``escalate_config`` copies every checker field, including ``incremental``,
so retries run in the same solving mode as the base pass.

When ``CheckerConfig.trace`` is set, the whole unit runs under its own
process-local :class:`~repro.obs.trace.Tracer` — in the worker *and* in
sequential mode, so the span tree is identical either way — and the
finished spans travel back through ``UnitResult.meta["obs"]`` (identity
payloads, out-of-band timings, and a metrics snapshot), which the engine
pops off and grafts into the run-level trace (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.checker import CheckerConfig, StackChecker
from repro.core.report import BugReport
from repro.engine.cache import SolverQueryCache
from repro.ir.function import Module
from repro.obs import ops as obs_ops
from repro.obs import trace as obs_trace
from repro.obs.trace import span


@dataclass
class WorkUnit:
    """One unit of checking work: a named translation unit."""

    name: str
    source: Optional[str] = None         # MiniC source, compiled in the worker
    module: Optional[Module] = None      # or an already-lowered IR module
    filename: str = ""
    #: Caller-owned, picklable annotations (e.g. the fuzz campaign's
    #: scenario/seed tags); carried verbatim onto the UnitResult and into
    #: the JSONL unit record.
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.source is None) == (self.module is None):
            raise ValueError("a WorkUnit needs exactly one of source / module")
        if not self.filename:
            self.filename = f"{self.name}.c"


@dataclass
class UnitResult:
    """Outcome of checking one work unit."""

    name: str
    report: BugReport
    attempts: int = 1                    # 1 = the base budget sufficed
    escalated: bool = False              # any retry was needed
    error: Optional[str] = None          # compile/verify failure, if any
    cache_entries: List[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)   # the work unit's annotations
    #: Serialized trace blob (spans/timings/metrics) when tracing was on;
    #: populated by the engine from ``meta["obs"]`` before sink writes.
    trace: Optional[dict] = None
    #: Solver queries over ``CheckerConfig.slow_query_ms``, as JSON-safe
    #: dicts (key, backend, verdict, duration_ms).  Deliberately a dedicated
    #: field rather than a ``meta`` entry: ``meta`` is serialized into the
    #: deterministic JSONL unit records, and slow-query timings are
    #: wall-clock — they must stay out-of-band (docs/OBSERVABILITY.md).
    slow_queries: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None


def escalate_config(config: CheckerConfig, factor: float) -> CheckerConfig:
    """A copy of ``config`` with the per-query budget scaled by ``factor``."""
    timeout = None if config.solver_timeout is None \
        else config.solver_timeout * factor
    conflicts = None if config.max_conflicts is None \
        else max(1, int(config.max_conflicts * factor))
    return dataclasses.replace(config, solver_timeout=timeout,
                               max_conflicts=conflicts)


def check_work_unit(unit: WorkUnit, config: CheckerConfig,
                    cache: Optional[SolverQueryCache] = None,
                    escalation_factors: Sequence[float] = (),
                    drain_cache: bool = True) -> UnitResult:
    """Check one work unit, escalating the budget for timing-out functions.

    The base pass checks the whole module.  While any function reports query
    timeouts and escalation steps remain, only those functions are re-checked
    under the next (cumulatively scaled) budget; their reports replace the
    starved ones.  Cached SAT/UNSAT verdicts are replayed across attempts,
    while cached ``unknown`` verdicts are ignored under a larger budget
    (see :mod:`repro.engine.cache`), so a retry re-solves exactly the
    queries that timed out.

    With ``config.trace`` set, the unit runs under a fresh tracer whose
    serialized spans ride home in ``meta["obs"]`` (see module docstring).
    With ``config.slow_query_ms`` set, a process-local
    :class:`~repro.obs.ops.SlowQueryRecorder` is active for the unit's
    lifetime and its records ride home in ``UnitResult.slow_queries``.
    """
    recorder = None
    previous_slow = None
    if config.slow_query_ms is not None:
        recorder = obs_ops.SlowQueryRecorder(config.slow_query_ms)
        previous_slow = obs_ops.activate_slow_queries(recorder)
    try:
        if not config.trace:
            result = _check_work_unit(unit, config, cache=cache,
                                      escalation_factors=escalation_factors,
                                      drain_cache=drain_cache)
        else:
            tracer = obs_trace.Tracer(name=f"unit:{unit.name}")
            previous = obs_trace.activate(tracer)
            try:
                result = _check_work_unit(
                    unit, config, cache=cache,
                    escalation_factors=escalation_factors,
                    drain_cache=drain_cache)
            finally:
                obs_trace.restore(previous)
            result.meta = dict(result.meta)
            result.meta["obs"] = tracer.to_blob()
    finally:
        if recorder is not None:
            obs_ops.restore_slow_queries(previous_slow)
    if recorder is not None:
        result.slow_queries = recorder.records
    return result


def _check_work_unit(unit: WorkUnit, config: CheckerConfig,
                     cache: Optional[SolverQueryCache] = None,
                     escalation_factors: Sequence[float] = (),
                     drain_cache: bool = True) -> UnitResult:
    if unit.module is None:
        from repro.api import compile_source

        try:
            with span("stage1.frontend", unit=unit.name):
                module = compile_source(unit.source, filename=unit.filename)
        except Exception as exc:                       # frontend rejection
            return UnitResult(name=unit.name, report=BugReport(module=unit.name),
                              error=f"{type(exc).__name__}: {exc}",
                              meta=dict(unit.meta))
    else:
        module = unit.module

    checker = StackChecker(config, query_cache=cache)
    report = checker.check_module(module)
    report.module = report.module or unit.name

    attempts = 1
    escalated = False
    functions_by_name = {fn.name: fn for fn in module.defined_functions()}
    for factor in escalation_factors:
        starved = [fr for fr in report.functions if fr.timeouts > 0]
        if not starved:
            break
        escalated = True
        attempts += 1
        retry_checker = StackChecker(escalate_config(config, factor),
                                     query_cache=cache)
        with span("unit.escalate", attempt=attempts):
            for function_report in starved:
                function = functions_by_name.get(function_report.function)
                if function is None:
                    continue
                retried = retry_checker.check_function(function)
                index = report.functions.index(function_report)
                report.functions[index] = retried

    # Workers drain their discoveries so the parent can absorb them; in
    # sequential mode the engine owns the cache and flushes it directly.
    entries = cache.drain_new_entries() if cache is not None and drain_cache else []
    return UnitResult(name=unit.name, report=report, attempts=attempts,
                      escalated=escalated, cache_entries=entries,
                      meta=dict(unit.meta))
