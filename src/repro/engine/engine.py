"""The corpus-checking engine: fan-out, caching, escalation, streaming.

The paper's headline experiment runs the checker over the entire Debian
Wheezy archive (§6.5, Figure 16).  :class:`CheckEngine` is the substrate for
that workload in this reproduction: it takes a corpus of translation units,
fans one work unit per unit out over a ``multiprocessing`` pool, shares a
content-addressed solver-query cache across units / workers / runs, retries
functions that blow the per-query budget under an escalated budget, and
streams per-unit results to a JSONL sink together with run-level statistics.

Sequential mode (``workers <= 1``) runs everything in-process with identical
semantics — it is the reference the parallel path is tested against.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.checker import CheckerConfig
from repro.core.report import BugReport
from repro.engine.cache import SolverQueryCache
from repro.engine.sink import JsonlResultSink
from repro.engine.workunit import UnitResult, WorkUnit, check_work_unit
from repro.ir.function import Module
from repro.obs.metrics import (MetricsRegistry, absorb_dataclass,
                               config_snapshot, merge_counter_dataclass)
from repro.obs.trace import Span, graft, span_payloads

#: Anything convertible into a WorkUnit: the unit itself, a (name, source)
#: pair, bare source text, or a lowered IR module.
UnitLike = Union[WorkUnit, Tuple[str, str], str, Module]


def _default_start_method() -> str:
    """"fork" where available (fast), "spawn" elsewhere (Windows/macOS)."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass
class EngineConfig:
    """Configuration of a :class:`CheckEngine` run (see docs/ENGINE.md)."""

    #: Worker processes; 0 or 1 checks sequentially in-process.
    workers: int = 0
    #: Checker configuration applied to every work unit.
    checker: CheckerConfig = field(default_factory=CheckerConfig)
    #: Share solver verdicts across functions / workers / runs.
    cache_enabled: bool = True
    #: Maximum in-memory cache entries (LRU eviction beyond this).
    cache_capacity: int = 100_000
    #: JSONL file the cache is warmed from and flushed to (None = in-memory only).
    cache_path: Optional[str] = None
    #: Cumulative budget multipliers for retrying functions with query
    #: timeouts: a unit is retried under base*4, then base*16 by default.
    escalation_factors: Tuple[float, ...] = (4.0, 16.0)
    #: JSONL file streaming one record per finished unit plus a run summary.
    results_path: Optional[str] = None
    #: Chrome trace-event JSON written after the run (implies tracing; load
    #: it in Perfetto / chrome://tracing).  See docs/OBSERVABILITY.md.
    trace_path: Optional[str] = None
    #: ``multiprocessing`` start method ("fork" where available, else "spawn").
    start_method: str = field(default_factory=_default_start_method)


@dataclass
class RunStats:
    """Aggregate statistics of one engine run (the Figure 16 counters)."""

    units: int = 0
    failed_units: int = 0
    functions: int = 0
    diagnostics: int = 0
    queries: int = 0
    solver_queries: int = 0
    cache_hits: int = 0
    timeouts: int = 0
    escalated_units: int = 0
    workers: int = 0
    wall_clock: float = 0.0
    analysis_time: float = 0.0
    # Aggregated per-query SolverStats (see docs/SOLVER.md):
    contexts: int = 0
    sat_calls: int = 0
    restarts: int = 0
    blasted_clauses: int = 0
    solver_time: float = 0.0
    oracle_sat: int = 0                  # queries the oracle pre-pass decided SAT
    oracle_unsat: int = 0                # queries constant folding decided UNSAT
    #: Definitive answers credited per backend name (backend mode only).
    backend_wins: Dict[str, int] = field(default_factory=dict)
    # Stage-5 witness validation totals (repro.exec.witness / docs/EXEC.md):
    witnesses_confirmed: int = 0
    witnesses_unconfirmed: int = 0
    witnesses_inconclusive: int = 0
    witness_time: float = 0.0
    # Stage-6 auto-repair totals (repro.repair / docs/REPAIR.md):
    repairs_attempted: int = 0
    repairs_succeeded: int = 0
    repairs_rejected: int = 0
    repairs_no_template: int = 0
    repair_gate_equivalence_rejects: int = 0
    repair_gate_recheck_rejects: int = 0
    repair_gate_replay_rejects: int = 0
    repair_time: float = 0.0
    # Structural-clustering dedup totals (repro.cluster / docs/CLUSTER.md):
    cluster_functions: int = 0           # functions that entered clustering
    cluster_clusters: int = 0            # distinct canonical forms
    cluster_propagated: int = 0          # verdicts copied from representatives
    cluster_confirmed: int = 0           # members passing the solver gate
    cluster_fallbacks: int = 0           # members re-checked in full
    cluster_time: float = 0.0            # seconds fingerprinting + confirming

    def merge(self, other: "RunStats") -> None:
        """Accumulate another run's counters into this one.

        Reflection-based (:func:`repro.obs.metrics.merge_counter_dataclass`):
        every numeric field adds, dict fields (``backend_wins``) add per key,
        and ``workers`` keeps the maximum fan-out seen — so a counter added
        to this dataclass later is merged automatically.  Batched drivers
        (the fuzz campaign checks its corpus one generated batch at a time)
        use this to report campaign-wide totals.
        """
        merge_counter_dataclass(self, other, maxed=("workers",))

    def registry(self) -> MetricsRegistry:
        """This run's counters lifted into the unified metrics registry
        (``run.<field>`` counters, ``run.workers`` gauge,
        ``run.backend_wins.<name>`` labeled counters)."""
        registry = MetricsRegistry()
        return absorb_dataclass(registry, "run", self, gauges=("workers",))

    def as_dict(self) -> Dict[str, object]:
        """The legacy nested summary schema, read through the registry."""
        reg = self.registry()
        count = reg.counter
        wins = {name[len("run.backend_wins."):]: int(value)
                for name, value in reg.counters.items()
                if name.startswith("run.backend_wins.")}
        return {
            "units": int(count("run.units")),
            "failed_units": int(count("run.failed_units")),
            "functions": int(count("run.functions")),
            "diagnostics": int(count("run.diagnostics")),
            "queries": int(count("run.queries")),
            "solver_queries": int(count("run.solver_queries")),
            "cache_hits": int(count("run.cache_hits")),
            "timeouts": int(count("run.timeouts")),
            "escalated_units": int(count("run.escalated_units")),
            "workers": int(reg.gauges.get("run.workers", 0)),
            "wall_clock": round(count("run.wall_clock"), 6),
            "analysis_time": round(count("run.analysis_time"), 6),
            "solver": {
                "contexts": int(count("run.contexts")),
                "sat_calls": int(count("run.sat_calls")),
                "restarts": int(count("run.restarts")),
                "blasted_clauses": int(count("run.blasted_clauses")),
                "solver_time": round(count("run.solver_time"), 6),
                "oracle_sat": int(count("run.oracle_sat")),
                "oracle_unsat": int(count("run.oracle_unsat")),
                "backend_wins": dict(sorted(wins.items())),
            },
            "witnesses": {
                "confirmed": int(count("run.witnesses_confirmed")),
                "unconfirmed": int(count("run.witnesses_unconfirmed")),
                "inconclusive": int(count("run.witnesses_inconclusive")),
                "witness_time": round(count("run.witness_time"), 6),
            },
            "repair": {
                "attempted": int(count("run.repairs_attempted")),
                "repaired": int(count("run.repairs_succeeded")),
                "rejected": int(count("run.repairs_rejected")),
                "no_template": int(count("run.repairs_no_template")),
                "gate_rejections": {
                    "equivalence": int(count("run.repair_gate_equivalence_rejects")),
                    "recheck": int(count("run.repair_gate_recheck_rejects")),
                    "replay": int(count("run.repair_gate_replay_rejects")),
                },
                "repair_time": round(count("run.repair_time"), 6),
            },
            "cluster": {
                "functions": int(count("run.cluster_functions")),
                "clusters": int(count("run.cluster_clusters")),
                "propagated": int(count("run.cluster_propagated")),
                "confirmed": int(count("run.cluster_confirmed")),
                "fallbacks": int(count("run.cluster_fallbacks")),
                "cluster_time": round(count("run.cluster_time"), 6),
            },
        }


def aggregate_results(results: Sequence[UnitResult], wall_clock: float,
                      workers: int = 1) -> RunStats:
    """Fold per-unit results into one :class:`RunStats`.

    Shared by the engine (one call per run) and the checking daemon (one
    call per served job — docs/SERVE.md), so batch and served run-summary
    records are built by the same code.
    """
    stats = RunStats(workers=max(1, workers), wall_clock=wall_clock)
    for result in results:
        stats.units += 1
        if not result.ok:
            stats.failed_units += 1
        if result.escalated:
            stats.escalated_units += 1
        report = result.report
        stats.functions += len(report.functions)
        stats.diagnostics += len(report.bugs)
        stats.queries += report.queries
        stats.cache_hits += report.cache_hits
        stats.timeouts += report.timeouts
        stats.analysis_time += report.analysis_time
        stats.contexts += report.contexts
        stats.sat_calls += report.sat_calls
        stats.restarts += report.restarts
        stats.blasted_clauses += report.blasted_clauses
        stats.solver_time += report.solver_time
        stats.oracle_sat += report.oracle_sat
        stats.oracle_unsat += report.oracle_unsat
        for name, wins in report.backend_wins.items():
            stats.backend_wins[name] = stats.backend_wins.get(name, 0) + wins
        stats.witnesses_confirmed += report.witnesses_confirmed
        stats.witnesses_unconfirmed += report.witnesses_unconfirmed
        stats.witnesses_inconclusive += report.witnesses_inconclusive
        stats.witness_time += report.witness_time
        stats.repairs_attempted += report.repairs_attempted
        stats.repairs_succeeded += report.repairs_succeeded
        stats.repairs_rejected += report.repairs_rejected
        stats.repairs_no_template += report.repairs_no_template
        stats.repair_gate_equivalence_rejects += \
            report.repair_gate_equivalence_rejects
        stats.repair_gate_recheck_rejects += report.repair_gate_recheck_rejects
        stats.repair_gate_replay_rejects += report.repair_gate_replay_rejects
        stats.repair_time += report.repair_time
    stats.solver_queries = stats.queries - stats.cache_hits
    return stats


class EngineInterrupted(KeyboardInterrupt):
    """A run cut short by SIGINT/SIGTERM, carrying its partial result.

    Raised by :meth:`CheckEngine.check_corpus` after the partial run summary
    (marked ``"interrupted": true``) has been flushed to the JSONL sink, so
    callers — the CLI exits 130 — still see everything that finished.
    """

    def __init__(self, result: "EngineResult") -> None:
        super().__init__("engine run interrupted")
        self.result = result


@dataclass
class EngineResult:
    """Everything one engine run produced."""

    results: List[UnitResult] = field(default_factory=list)
    stats: RunStats = field(default_factory=RunStats)
    #: Assembled run-level span tree (tracing runs only).
    trace: Optional[Span] = None
    #: Metrics merged across all traced units (tracing runs only).
    metrics: Optional[MetricsRegistry] = None

    @property
    def reports(self) -> List[BugReport]:
        return [result.report for result in self.results]

    @property
    def bugs(self):
        return [bug for report in self.reports for bug in report.bugs]

    def merged(self, name: str = "corpus") -> BugReport:
        """All per-unit reports merged into a single :class:`BugReport`."""
        merged = BugReport(module=name)
        for report in self.reports:
            merged.merge(report)
        return merged


# -- worker-process plumbing --------------------------------------------------------
#
# Workers are initialized once with the checker config and a snapshot of the
# parent's cache, then receive (index, unit) pairs.  Each result carries the
# cache entries that worker discovered so the parent can absorb them into
# the authoritative cache (and re-seed future runs / flush to disk).

_WORKER_CONFIG: Optional[CheckerConfig] = None
_WORKER_CACHE: Optional[SolverQueryCache] = None
_WORKER_ESCALATION: Tuple[float, ...] = ()


def _worker_init(config: CheckerConfig, cache_seed: Optional[List[dict]],
                 cache_capacity: int,
                 escalation_factors: Tuple[float, ...]) -> None:
    global _WORKER_CONFIG, _WORKER_CACHE, _WORKER_ESCALATION
    _WORKER_CONFIG = config
    _WORKER_ESCALATION = escalation_factors
    if cache_seed is None:
        _WORKER_CACHE = None
    else:
        _WORKER_CACHE = SolverQueryCache(capacity=cache_capacity)
        _WORKER_CACHE.seed(cache_seed)


def _worker_check(payload: Tuple[int, WorkUnit]) -> Tuple[int, UnitResult]:
    index, unit = payload
    result = check_work_unit(unit, _WORKER_CONFIG, cache=_WORKER_CACHE,
                             escalation_factors=_WORKER_ESCALATION,
                             drain_cache=True)
    return index, result


class CheckEngine:
    """Checks corpora of translation units at scale."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config if config is not None else EngineConfig()
        if self.config.trace_path and not self.config.checker.trace:
            self.config.checker.trace = True       # a trace file implies tracing
        self.cache: Optional[SolverQueryCache] = None
        self._aux_trace_blobs: List[dict] = []
        if self.config.cache_enabled:
            self.cache = SolverQueryCache(capacity=self.config.cache_capacity,
                                          path=self.config.cache_path)

    # -- public API ----------------------------------------------------------------

    def check_corpus(self, units: Iterable[UnitLike]) -> EngineResult:
        """Check every unit of a corpus; see module docstring for semantics.

        A ``KeyboardInterrupt`` (SIGINT, or SIGTERM routed through the CLI)
        does not lose finished work: the partial run summary is written to
        the sink with ``"interrupted": true``, the cache is flushed, and
        :class:`EngineInterrupted` re-raises with the partial result.
        """
        work = [self._coerce(unit, index) for index, unit in enumerate(units)]
        started = time.monotonic()
        sink = JsonlResultSink(self.config.results_path) \
            if self.config.results_path else None
        self._aux_trace_blobs = []
        collected: List[UnitResult] = []
        cluster_stats = None
        interrupted = False
        try:
            try:
                if self.config.checker.cluster:
                    results, cluster_stats = self._run_clustered(
                        work, sink, collected=collected)
                elif self.config.workers > 1 and len(work) > 1:
                    results = self._run_parallel(work, sink,
                                                 collected=collected)
                else:
                    results = self._run_sequential(work, sink,
                                                   collected=collected)
            except KeyboardInterrupt:
                interrupted = True
                results = list(collected)
            wall_clock = time.monotonic() - started
            stats = self._aggregate(results, wall_clock)
            if cluster_stats is not None:
                stats.cluster_functions = cluster_stats.functions
                stats.cluster_clusters = cluster_stats.clusters
                stats.cluster_propagated = cluster_stats.propagated
                stats.cluster_confirmed = cluster_stats.confirmed
                stats.cluster_fallbacks = cluster_stats.fallbacks
                stats.cluster_time = cluster_stats.cluster_time
            trace_root, trace_metrics = (None, None) if interrupted \
                else self._assemble_trace(results, wall_clock)
            if trace_root is not None:
                trace_metrics.merge(stats.registry())
                if sink is not None:
                    for payload in span_payloads(trace_root):
                        sink.write_record(dict(payload, type="span"))
                    self._write_metric_records(sink, trace_metrics)
                if self.config.trace_path:
                    from repro.obs.chrometrace import write_chrome_trace
                    write_chrome_trace(self.config.trace_path, trace_root,
                                       metrics=trace_metrics.snapshot()["counters"])
            if sink is not None:
                summary = self._summary_dict(stats)
                if interrupted:
                    summary["interrupted"] = True
                sink.write_summary(summary)
        finally:
            if sink is not None:
                sink.close()
        if self.cache is not None and self.config.cache_path is not None:
            self.cache.flush()
        outcome = EngineResult(results=results, stats=stats,
                               trace=trace_root, metrics=trace_metrics)
        if interrupted:
            raise EngineInterrupted(outcome)
        return outcome

    def check_modules(self, modules: Iterable[Module]) -> EngineResult:
        """Check already-lowered IR modules (pickled to workers if parallel)."""
        return self.check_corpus(modules)

    # -- execution strategies ---------------------------------------------------------

    def _run_sequential(self, work: List[WorkUnit],
                        sink: Optional[JsonlResultSink],
                        config: Optional[CheckerConfig] = None,
                        collected: Optional[List[UnitResult]] = None,
                        ) -> List[UnitResult]:
        checker = config if config is not None else self.config.checker
        results: List[UnitResult] = []
        for unit in work:
            result = check_work_unit(
                unit, checker, cache=self.cache,
                escalation_factors=self.config.escalation_factors,
                drain_cache=False)
            result.trace = result.meta.pop("obs", None)
            results.append(result)
            if collected is not None:
                collected.append(result)
            if sink is not None:
                sink.write_unit(result.name, result.report,
                                attempts=result.attempts,
                                escalated=result.escalated, error=result.error,
                                meta=result.meta)
        return results

    def _run_parallel(self, work: List[WorkUnit],
                      sink: Optional[JsonlResultSink],
                      config: Optional[CheckerConfig] = None,
                      collected: Optional[List[UnitResult]] = None,
                      ) -> List[UnitResult]:
        checker = config if config is not None else self.config.checker
        workers = min(self.config.workers, len(work))
        cache_seed = self.cache.snapshot() if self.cache is not None else None
        context = multiprocessing.get_context(self.config.start_method)
        ordered: List[Optional[UnitResult]] = [None] * len(work)
        with context.Pool(
            processes=workers,
            initializer=_worker_init,
            initargs=(checker, cache_seed,
                      self.config.cache_capacity,
                      self.config.escalation_factors),
        ) as pool:
            payloads = list(enumerate(work))
            for index, result in pool.imap_unordered(_worker_check, payloads):
                if self.cache is not None and result.cache_entries:
                    self.cache.absorb(result.cache_entries)
                result.cache_entries = []
                result.trace = result.meta.pop("obs", None)
                ordered[index] = result
                if collected is not None:
                    collected.append(result)
                if sink is not None:
                    sink.write_unit(result.name, result.report,
                                    attempts=result.attempts,
                                    escalated=result.escalated,
                                    error=result.error, meta=result.meta)
        return [result for result in ordered if result is not None]

    def _run_clustered(self, work: List[WorkUnit],
                       sink: Optional[JsonlResultSink],
                       collected: Optional[List[UnitResult]] = None):
        """Cluster the whole corpus, solve representatives, propagate.

        Units are compiled (and inlined, per the checker config) in the
        parent so their functions can be fingerprinted across unit
        boundaries; one mini-unit per cluster representative then goes
        through the ordinary sequential/parallel machinery under a
        ``cluster=False`` config, and the propagation layer distributes the
        verdicts.  Unit records stream in submission order regardless of
        worker count, followed by one record per cluster — which is what
        makes clustered runs byte-comparable across ``--workers`` settings.
        """
        import dataclasses

        from repro.cluster.cluster import cluster_functions
        from repro.cluster.propagate import propagate_clusters
        from repro.ir.verifier import verify_module

        checker = self.config.checker
        base = dataclasses.replace(checker, cluster=False, inline=False)

        modules: List[Optional[Module]] = []
        errors: List[Optional[str]] = []
        for unit in work:
            try:
                if unit.module is None:
                    from repro.api import compile_source
                    module = compile_source(unit.source, filename=unit.filename)
                else:
                    module = unit.module
                verify_module(module)
                if checker.inline:
                    from repro.lower.inline import inline_module
                    inline_module(module)
                modules.append(module)
                errors.append(None)
            except Exception as exc:               # frontend/verifier rejection
                modules.append(None)
                errors.append(f"{type(exc).__name__}: {exc}")

        started = time.monotonic()
        clusters = cluster_functions(
            (unit_index, function_index, work[unit_index].name, function)
            for unit_index, module in enumerate(modules) if module is not None
            for function_index, function in enumerate(module.defined_functions()))
        fingerprint_time = time.monotonic() - started

        # One mini-unit per representative through the ordinary fan-out.
        rep_units: List[WorkUnit] = []
        for cluster_index, cluster in enumerate(clusters):
            rep_module = Module(name=f"cluster{cluster_index}")
            rep_module.add_function(cluster.representative.function)
            rep_units.append(WorkUnit(name=f"cluster{cluster_index}",
                                      module=rep_module))
        if self.config.workers > 1 and len(rep_units) > 1:
            rep_unit_results = self._run_parallel(rep_units, None, config=base)
        else:
            rep_unit_results = self._run_sequential(rep_units, None, config=base)
        # Representative mini-units carry the only traces of a clustered
        # run; stash them for the run-level assembly (the per-unit results
        # below are synthesized in the parent, outside any tracer).
        self._aux_trace_blobs = [r.trace for r in rep_unit_results if r.trace]
        rep_results = {}
        for cluster_index, result in enumerate(rep_unit_results):
            if result.error is None and result.report.functions:
                rep_results[cluster_index] = (result.report.functions[0],
                                              result.attempts, result.escalated)

        reports, bookkeeping, cluster_stats, records = propagate_clusters(
            clusters, base, cache=self.cache,
            escalation_factors=self.config.escalation_factors,
            rep_results=rep_results)
        cluster_stats.cluster_time += fingerprint_time

        results: List[UnitResult] = []
        for unit_index, unit in enumerate(work):
            module, error = modules[unit_index], errors[unit_index]
            report = BugReport(module=unit.name)
            attempts, escalated = 1, False
            if module is not None:
                report.module = module.name or unit.name
                for function_index in range(len(module.defined_functions())):
                    key = (unit_index, function_index)
                    report.functions.append(reports[key])
                    unit_attempts, unit_escalated = bookkeeping[key]
                    attempts = max(attempts, unit_attempts)
                    escalated = escalated or unit_escalated
            result = UnitResult(name=unit.name, report=report,
                                attempts=attempts, escalated=escalated,
                                error=error, meta=dict(unit.meta))
            results.append(result)
            if collected is not None:
                collected.append(result)
            if sink is not None:
                sink.write_unit(result.name, result.report,
                                attempts=result.attempts,
                                escalated=result.escalated,
                                error=result.error, meta=result.meta)
        if sink is not None:
            for record in records:
                sink.write_record(record)
        return results, cluster_stats

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _coerce(unit: UnitLike, index: int) -> WorkUnit:
        if isinstance(unit, WorkUnit):
            return unit
        if isinstance(unit, Module):
            return WorkUnit(name=unit.name or f"unit{index}", module=unit)
        if isinstance(unit, str):
            return WorkUnit(name=f"unit{index}", source=unit)
        if isinstance(unit, tuple) and len(unit) == 2:
            name, source = unit
            return WorkUnit(name=name, source=source)
        raise TypeError(f"cannot build a WorkUnit from {type(unit).__name__}")

    def _aggregate(self, results: Sequence[UnitResult],
                   wall_clock: float) -> RunStats:
        return aggregate_results(results, wall_clock,
                                 workers=self.config.workers)

    def _assemble_trace(self, results: Sequence[UnitResult],
                        wall_clock: float):
        """Graft every unit's serialized spans under one run root.

        Units are laid out in submission order on one logical timeline
        (each shifted past the previous unit's duration), so the assembled
        tree — ids, structure, args — is identical whatever the worker
        count; only the recorded durations differ.  Returns
        ``(None, None)`` when tracing was off.
        """
        blobs = [result.trace for result in results if result.trace]
        blobs.extend(self._aux_trace_blobs)
        if not blobs:
            return None, None
        root = Span("run")
        metrics = MetricsRegistry()
        offset = 0.0
        for blob in blobs:
            graft(root, blob.get("spans", ()), blob.get("timings", ()),
                  offset=offset)
            timings = blob.get("timings") or ()
            if timings:
                offset += float(timings[0][1])     # the unit root's duration
            metrics.merge_snapshot(blob.get("metrics", {}))
        root.dur = max(wall_clock, offset)
        return root, metrics

    @staticmethod
    def _write_metric_records(sink: JsonlResultSink,
                              metrics: MetricsRegistry) -> None:
        """One sorted-key ``{"type": "metric"}`` record per metric."""
        snapshot = metrics.snapshot()
        for name, value in snapshot["counters"].items():
            sink.write_record({"type": "metric", "kind": "counter",
                               "name": name, "value": value})
        for name, value in snapshot["gauges"].items():
            sink.write_record({"type": "metric", "kind": "gauge",
                               "name": name, "value": value})
        for name, hist in snapshot["histograms"].items():
            sink.write_record(dict(hist, type="metric", kind="histogram",
                                   name=name))

    def _summary_dict(self, stats: RunStats) -> Dict[str, object]:
        import repro

        summary = stats.as_dict()
        summary["version"] = repro.__version__
        summary["config"] = {
            "checker": config_snapshot(self.config.checker),
            "engine": {
                "workers": self.config.workers,
                "cache_enabled": self.config.cache_enabled,
                "escalation_factors": list(self.config.escalation_factors),
            },
        }
        if self.cache is not None:
            # Derive hit/miss from this run's aggregated report counters: in
            # parallel mode the lookups happen inside worker-process cache
            # copies, so the parent cache's own counters would read zero.
            total = stats.queries
            summary["cache"] = {
                "entries": len(self.cache),
                "hits": stats.cache_hits,
                "misses": stats.solver_queries,
                "hit_rate": round(stats.cache_hits / total, 4) if total else 0.0,
            }
        return summary
