"""Content-addressed solver-query cache.

The checker asks the solver thousands of structurally identical questions:
the synthetic corpora instantiate the same snippet templates under many
function names, and a warm rerun over an unchanged corpus repeats every
query verbatim.  This module gives those queries a *content address* — a
SHA-256 over the canonical, alpha-renamed serialization of the query's term
DAG — so that a verdict computed once can be replayed for every structurally
identical query, across functions, across work units, and (via the JSONL
persistence layer) across runs.

Three design points matter for soundness:

* **Alpha-renaming.**  Variable names embed the function name
  (``f.arg.len``, ``f.div.3``), so two instances of the same template never
  share names.  The canonical form renames variables to ``v0, v1, ...`` in
  first-visit order, which is deterministic for a fixed term structure.
* **Commutative canonicalization.**  The term manager orders commutative
  operands by creation order, so structurally identical queries built
  through different histories (``a + b`` vs. ``b + a`` in the source) would
  otherwise serialize differently.  The canonical form orders commutative
  operands by a name-free structural color instead, so such queries — and
  the whole-function clusters built on the same idea in
  :mod:`repro.cluster` — share one key.
* **DAG-aware serialization.**  Terms are hash-consed DAGs with heavy
  sharing; the serializer emits each distinct node once and refers to it by
  index, so the canonical form stays linear in DAG size.
* **Budget-qualified UNKNOWN.**  SAT and UNSAT verdicts are valid under any
  budget, but a timeout observed under a small budget says nothing about a
  larger one.  Each entry records the budget it was computed under, and an
  ``unknown`` verdict is only replayed when the cached budget covers the
  requested one — which is exactly what lets the engine's timeout-escalation
  retries re-solve instead of replaying a stale timeout.

The cache sits *above* the incremental solving layer: every logical query —
batched into an incremental context or not — is content-addressed over the
full term set it is equivalent to (base + deltas + definitions), looked up
first, and only solved (incrementally) on a miss.  A hit therefore skips
both bit-blasting and CDCL; a miss pays the (assumption-based, mostly
pre-encoded) incremental solve and stores the verdict.  See docs/SOLVER.md
for the layer diagram.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.solver.terms import COMMUTATIVE_OPS, Op, Term

#: Cache verdict values (mirrors :class:`repro.solver.solver.CheckResult`).
VERDICT_SAT = "sat"
VERDICT_UNSAT = "unsat"
VERDICT_UNKNOWN = "unknown"

_VERDICTS = (VERDICT_SAT, VERDICT_UNSAT, VERDICT_UNKNOWN)


def _color(payload: str) -> int:
    """Deterministic 64-bit structural hash (process- and run-independent)."""
    return int.from_bytes(
        hashlib.blake2b(payload.encode("utf-8"), digest_size=8).digest(), "big")


_COLOR_MASK = (1 << 64) - 1


def _canonical_colors(terms: Sequence[Term]):
    """Name-free structural colors for every node of a query's term DAG.

    ``TermManager`` normalizes commutative operands by *creation order*
    (tid), so two structurally identical queries built through different
    construction histories — ``a + b`` in one translation unit, ``b + a`` in
    another — can disagree about operand order.  The colors computed here
    depend only on structure, never on names or tids, and are used solely to
    pick a canonical operand order for commutative nodes:

    * an upward pass hashes each node from its operator, attributes, sort,
      and child colors (commutative children as a sorted multiset), so
      variables collapse to their sort;
    * Weisfeiler-Lehman-style refinement rounds then alternate a downward
      pass — each node absorbs the multiset of contexts it occurs in — with
      a re-hash of the upward colors, which tells apart same-shaped subterms
      (e.g. the ``x`` and ``y`` of ``(x + y) - x``, or the ``sext(x)`` and
      ``sext(y)`` above them) by how the rest of the query uses them.

    Color collisions are harmless for soundness — they only fall back to the
    original operand order, they never change what the serialization says.
    """
    order: List[Term] = []
    seen: set = set()
    for root in terms:
        stack = [(root, False)]
        while stack:
            term, ready = stack.pop()
            if ready:
                order.append(term)
                continue
            if term.tid in seen:
                continue
            seen.add(term.tid)
            stack.append((term, True))
            for arg in term.args:
                stack.append((arg, False))

    def structural(term: Term, colors: Dict[int, int], context: int) -> int:
        sort = term.sort.kind if term.sort.is_bool() else f"bv{term.sort.width}"
        if term.op is Op.VAR:
            payload = f"var::{sort}"
        elif term.op is Op.CONST:
            payload = f"const:{term.attrs[0]}:{sort}"
        else:
            child = [colors[a.tid] for a in term.args]
            if term.op in COMMUTATIVE_OPS:
                child.sort()
            attrs = ",".join(str(a) for a in term.attrs)
            payload = f"{term.op.value}:{attrs}:{sort}:" \
                      + ",".join(str(c) for c in child)
        return _color(f"{payload}@{context}")

    colors: Dict[int, int] = {}
    for term in order:               # children before parents
        colors[term.tid] = structural(term, colors, 0)

    for _ in range(2):               # two refinement rounds suffice in practice
        context: Dict[int, int] = {}
        for index, root in enumerate(terms):
            context[root.tid] = (context.get(root.tid, 0)
                                 + _color(f"root:{index}")) & _COLOR_MASK
        for term in reversed(order):     # parents before children
            mine = _color(f"{colors[term.tid]}@{context.get(term.tid, 0)}")
            for position, arg in enumerate(term.args):
                role = -1 if term.op in COMMUTATIVE_OPS else position
                context[arg.tid] = (context.get(arg.tid, 0)
                                    + _color(f"ctx:{mine}:{role}")) & _COLOR_MASK
        for term in order:               # fold contexts back into the colors
            colors[term.tid] = structural(term, colors,
                                          context.get(term.tid, 0))
    return colors


def canonical_query_key(terms: Sequence[Term]) -> str:
    """Content address of a query: SHA-256 of its canonical serialization.

    The serialization walks the term DAG bottom-up, assigns every distinct
    node a sequential index, alpha-renames variables in first-visit order,
    and lists the operands of commutative operators in a canonical,
    structure-derived order (see :func:`_canonical_colors`).  Two queries
    receive the same key iff their term DAGs are structurally identical up
    to variable naming and commutative operand order — both of which
    preserve semantics, so replaying a verdict across equal keys is sound.
    """
    final = _canonical_colors(terms)

    def canonical_args(term: Term) -> List[Term]:
        if term.op in COMMUTATIVE_OPS and len(term.args) > 1:
            return sorted(term.args, key=lambda a: final[a.tid])
        return list(term.args)

    rename: Dict[str, str] = {}
    memo: Dict[int, str] = {}
    nodes: List[str] = []
    for root in terms:
        stack = [(root, False)]
        while stack:
            term, ready = stack.pop()
            if term.tid in memo:
                continue
            if not ready:
                stack.append((term, True))
                # Reversed push so the canonically-first operand is visited
                # (and therefore alpha-renamed) first.
                for arg in reversed(canonical_args(term)):
                    if arg.tid not in memo:
                        stack.append((arg, False))
                continue
            sort = term.sort.kind if term.sort.is_bool() else f"bv{term.sort.width}"
            if term.op is Op.VAR:
                alias = rename.setdefault(term.attrs[0], f"v{len(rename)}")
                node = f"var:{alias}:{sort}"
            elif term.op is Op.CONST:
                node = f"const:{term.attrs[0]}:{sort}"
            else:
                args = ",".join(memo[a.tid] for a in canonical_args(term))
                attrs = ",".join(str(a) for a in term.attrs)
                node = f"{term.op.value}:{attrs}:{args}"
            memo[term.tid] = f"n{len(nodes)}"
            nodes.append(node)
    roots = ",".join(memo[t.tid] for t in terms)
    blob = ";".join(nodes) + "|" + roots
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """One cached verdict, qualified by the budget it was computed under."""

    key: str
    verdict: str
    timeout: Optional[float] = None
    max_conflicts: Optional[int] = None
    elapsed: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"key": self.key, "verdict": self.verdict,
                "timeout": self.timeout, "max_conflicts": self.max_conflicts,
                "elapsed": round(self.elapsed, 6)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CacheEntry":
        return cls(key=str(data["key"]), verdict=str(data["verdict"]),
                   timeout=data.get("timeout"),
                   max_conflicts=data.get("max_conflicts"),
                   elapsed=float(data.get("elapsed", 0.0)))

    def budget_covers(self, timeout: Optional[float],
                      max_conflicts: Optional[int]) -> bool:
        """True if this entry's budget is at least the requested budget."""
        if self.timeout is not None and (timeout is None or self.timeout < timeout):
            return False
        if self.max_conflicts is not None and \
                (max_conflicts is None or self.max_conflicts < max_conflicts):
            return False
        return True


@contextlib.contextmanager
def _advisory_lock(path: str):
    """Exclusive advisory file lock guarding cache-file rewrites.

    Serializes flushes from *cooperating* processes — the checking daemon
    and batch CLI runs pointed at one ``cache_path`` — via ``flock`` on a
    sidecar ``<path>.lock`` file.  On platforms without ``fcntl`` the lock
    degrades to a no-op; the atomic temp-file rename in :meth:`flush` still
    guarantees readers never observe a torn file, only that two
    simultaneous writers may each publish a complete (last-wins) file.
    """
    try:
        import fcntl
    except ImportError:                       # non-POSIX: rename-only safety
        yield
        return
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a+", encoding="utf-8") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class SolverQueryCache:
    """In-process LRU of solver verdicts, persistable to disk as JSONL.

    The cache is shared by every :class:`~repro.core.queries.QueryEngine`
    a checker run creates.  ``flush()`` *merges* entries added since the
    last flush into the JSONL file at ``path`` — under an advisory file
    lock, rewriting via a same-directory temp file and an atomic rename —
    so a long-running daemon and concurrent batch CLI runs can safely
    share one cache file: no interleaved or torn records, no lost entries,
    definitive verdicts never downgraded.  A fresh cache constructed with
    the same ``path`` starts warm.
    """

    def __init__(self, capacity: int = 100_000,
                 path: Optional[str] = None) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._unflushed: List[CacheEntry] = []
        if path is not None:
            self.load(path)

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup / store -----------------------------------------------------------

    def lookup(self, key: str, timeout: Optional[float] = None,
               max_conflicts: Optional[int] = None) -> Optional[str]:
        """Return the cached verdict for ``key``, or None on a miss.

        An ``unknown`` verdict only counts as a hit when it was computed
        under a budget at least as large as the requested one.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.verdict == VERDICT_UNKNOWN and \
                not entry.budget_covers(timeout, max_conflicts):
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.verdict

    def store(self, key: str, verdict: str, timeout: Optional[float] = None,
              max_conflicts: Optional[int] = None, elapsed: float = 0.0) -> None:
        """Record a verdict computed under the given budget."""
        if verdict not in _VERDICTS:
            raise ValueError(f"unknown verdict {verdict!r}")
        existing = self._entries.get(key)
        if existing is not None and existing.verdict != VERDICT_UNKNOWN:
            # A definitive verdict never gets downgraded.
            self._entries.move_to_end(key)
            return
        entry = CacheEntry(key=key, verdict=verdict, timeout=timeout,
                           max_conflicts=max_conflicts, elapsed=elapsed)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._unflushed.append(entry)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # -- merging across processes ---------------------------------------------------

    def drain_new_entries(self) -> List[Dict[str, object]]:
        """Entries added since the last drain/flush, as JSON-ready dicts.

        Worker processes call this after each work unit so the parent can
        absorb their discoveries into the authoritative cache.
        """
        drained = [entry.as_dict() for entry in self._unflushed]
        self._unflushed = []
        return drained

    def absorb(self, entries: Iterable[Dict[str, object]]) -> int:
        """Merge entries drained from another cache; returns how many were new."""
        added = 0
        for data in entries:
            entry = CacheEntry.from_dict(data)
            existing = self._entries.get(entry.key)
            if existing is not None and existing.verdict != VERDICT_UNKNOWN:
                continue
            if existing is not None and entry.verdict == VERDICT_UNKNOWN and \
                    not entry.budget_covers(existing.timeout, existing.max_conflicts):
                continue
            self._entries[entry.key] = entry
            self._entries.move_to_end(entry.key)
            self._unflushed.append(entry)
            added += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return added

    def snapshot(self) -> List[Dict[str, object]]:
        """All current entries as JSON-ready dicts (for seeding workers)."""
        return [entry.as_dict() for entry in self._entries.values()]

    def seed(self, entries: Iterable[Dict[str, object]]) -> None:
        """Load entries without marking them dirty (worker bootstrap)."""
        for data in entries:
            entry = CacheEntry.from_dict(data)
            self._entries[entry.key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # -- disk persistence ------------------------------------------------------------

    def load(self, path: str) -> int:
        """Read a JSONL cache file; silently tolerates a missing file."""
        if not os.path.exists(path):
            return 0
        loaded = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue          # torn line from an interrupted flush
                if "key" not in data or data.get("verdict") not in _VERDICTS:
                    continue
                self.seed((data,))
                loaded += 1
        return loaded

    def flush(self, path: Optional[str] = None) -> int:
        """Merge entries added since the last flush into the JSONL file.

        Concurrent-writer safe: the whole read-merge-rewrite runs under an
        exclusive advisory lock (``<path>.lock``), re-reads entries other
        processes published since this cache loaded, merges this cache's
        unflushed entries on top (definitive verdicts win over ``unknown``;
        an ``unknown`` only replaces another under a strictly larger
        budget), writes the result to a same-directory temp file, and
        atomically renames it into place.  Readers therefore always see a
        complete file, and cooperating writers never lose each other's
        entries.  Returns how many of this cache's entries were merged in.
        """
        target = path if path is not None else self.path
        if target is None or not self._unflushed:
            self._unflushed = []
            return 0
        directory = os.path.dirname(target)
        if directory:
            os.makedirs(directory, exist_ok=True)
        written = 0
        with _advisory_lock(target + ".lock"):
            merged: "OrderedDict[str, CacheEntry]" = OrderedDict()
            if os.path.exists(target):
                with open(target, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            data = json.loads(line)
                        except json.JSONDecodeError:
                            continue       # pre-lock legacy torn line
                        if "key" not in data or \
                                data.get("verdict") not in _VERDICTS:
                            continue
                        merged[str(data["key"])] = CacheEntry.from_dict(data)
            for entry in self._unflushed:
                existing = merged.get(entry.key)
                if existing is not None:
                    if existing.verdict != VERDICT_UNKNOWN:
                        continue           # never downgrade a definitive one
                    if entry.verdict == VERDICT_UNKNOWN and \
                            not entry.budget_covers(existing.timeout,
                                                    existing.max_conflicts):
                        continue           # keep the larger-budget unknown
                merged[entry.key] = entry
                written += 1
            fd, temp_path = tempfile.mkstemp(
                prefix=os.path.basename(target) + ".",
                suffix=".tmp", dir=directory or ".")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    for entry in merged.values():
                        handle.write(json.dumps(entry.as_dict()) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_path, target)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(temp_path)
                raise
        self._unflushed = []
        return written

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats_dict(self) -> Dict[str, object]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "hit_rate": round(self.hit_rate, 4)}
