"""An LLVM-flavoured intermediate representation.

STACK operates on the LLVM IR produced by clang (§4.2 of the paper).  This
package provides the equivalent substrate for the reproduction: a typed,
CFG-based IR with SSA values, phi nodes, and per-instruction source-origin
metadata (so the checker can ignore compiler-generated code such as expanded
macros and inlined callees).

Modules
-------
* :mod:`repro.ir.types` — the IR type system (sized integers, pointers,
  arrays, functions).
* :mod:`repro.ir.source` — source locations and code-origin metadata.
* :mod:`repro.ir.values` — values, constants, arguments.
* :mod:`repro.ir.instructions` — instruction classes.
* :mod:`repro.ir.function` — basic blocks, functions, modules.
* :mod:`repro.ir.builder` — convenience builder for constructing IR.
* :mod:`repro.ir.cfg` — control-flow graph utilities.
* :mod:`repro.ir.dominators` — dominator tree computation.
* :mod:`repro.ir.printer` — textual IR output.
* :mod:`repro.ir.verifier` — structural well-formedness checks.
"""

from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.source import Origin, OriginKind, SourceLocation
from repro.ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    IRType,
    PointerType,
    VoidType,
    BOOL_TYPE,
    INT8,
    INT16,
    INT32,
    INT64,
)
from repro.ir.values import Argument, Constant, UndefValue, Value
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    BinOpKind,
    Branch,
    Call,
    Cast,
    CastKind,
    CondBranch,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)

__all__ = [
    "Alloca", "Argument", "ArrayType", "BasicBlock", "BinOpKind", "BinaryOp",
    "BOOL_TYPE", "Branch", "Call", "Cast", "CastKind", "CondBranch", "Constant",
    "Function", "FunctionType", "GetElementPtr", "ICmp", "ICmpPred", "INT16",
    "INT32", "INT64", "INT8", "IRBuilder", "IRType", "Instruction", "IntType",
    "Load", "Module", "Origin", "OriginKind", "Phi", "PointerType", "Return",
    "Select", "SourceLocation", "Store", "UndefValue", "Unreachable", "Value",
    "VoidType",
]
