"""Structural verification of IR modules.

The verifier catches malformed IR early (missing terminators, phi nodes whose
incoming blocks are not predecessors, type mismatches, dangling block
references, and SSA dominance violations — a value used in a reachable block
that its definition does not dominate).  The lowering pass and the inliner
both run it in tests, and the checker runs it defensively before analysis.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.cfg import reachable_blocks
from repro.ir.dominators import DominatorTree
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    Branch,
    CondBranch,
    ICmp,
    Instruction,
    Phi,
    Return,
    Store,
)


class VerificationError(Exception):
    """Raised when an IR module is structurally invalid."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems


def verify_function(function: Function) -> List[str]:
    """Return a list of problems found in ``function`` (empty = valid)."""
    problems: List[str] = []
    if function.is_declaration:
        return problems
    if not function.blocks:
        return [f"function @{function.name} has no blocks"]

    block_ids = {id(b) for b in function.blocks}

    for block in function.blocks:
        prefix = f"@{function.name}/%{block.name}"
        if not block.is_terminated():
            problems.append(f"{prefix}: block is not terminated")
        terminator_seen = False
        for inst in block.instructions:
            if terminator_seen:
                problems.append(f"{prefix}: instruction after terminator")
                break
            if inst.is_terminator():
                terminator_seen = True
            if inst.parent is not block:
                problems.append(f"{prefix}: instruction parent link is wrong")
            problems.extend(_verify_instruction(function, block, inst, block_ids))

        preds = {id(p) for p in block.predecessors()}
        for phi in block.phis():
            incoming_blocks = {id(b) for _v, b in phi.incoming}
            if incoming_blocks - preds:
                problems.append(
                    f"{prefix}: phi %{phi.name} has incoming edge from a "
                    f"non-predecessor block")
            if preds - incoming_blocks:
                problems.append(
                    f"{prefix}: phi %{phi.name} is missing an incoming value "
                    f"for some predecessor")

    ret_type = function.ftype.return_type
    for ret in function.returns():
        if ret.value is None and not ret_type.is_void():
            problems.append(f"@{function.name}: ret void in a non-void function")
        if ret.value is not None and ret_type.is_void():
            problems.append(f"@{function.name}: ret with a value in a void function")

    problems.extend(_verify_dominance(function))
    return problems


def _verify_dominance(function: Function) -> List[str]:
    """SSA sanity: every use in a reachable block is dominated by its def.

    Within one block the definition must come first; across blocks the
    defining block must dominate the using block.  Phi uses are checked at
    the incoming edge (the definition must dominate the predecessor), which
    is what makes loop-carried values legal.
    """
    problems: List[str] = []
    reachable = reachable_blocks(function)
    dominators = DominatorTree(function)
    position: Dict[int, Tuple[BasicBlock, int]] = {}
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            position[id(inst)] = (block, index)

    for block in function.blocks:
        if id(block) not in reachable:
            continue
        prefix = f"@{function.name}/%{block.name}"
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, Phi):
                for value, pred in inst.incoming:
                    if not isinstance(value, Instruction):
                        continue
                    if id(pred) not in reachable:
                        # The edge can never be taken; its value is vacuously
                        # legal (LLVM's verifier skips these too).
                        continue
                    def_block = value.parent
                    if def_block is None or not dominators.dominates(def_block,
                                                                     pred):
                        problems.append(
                            f"{prefix}: phi %{inst.name} incoming value "
                            f"{value.short_name()} does not dominate the "
                            f"edge from %{pred.name}")
                continue
            for operand in inst.operands:
                if not isinstance(operand, Instruction):
                    continue
                where = position.get(id(operand))
                if where is None:
                    problems.append(
                        f"{prefix}: use of {operand.short_name()}, which is "
                        f"not in the function")
                    continue
                def_block, def_index = where
                if def_block is block:
                    if def_index >= index:
                        problems.append(
                            f"{prefix}: {operand.short_name()} used before "
                            f"its definition")
                elif not dominators.dominates(def_block, block):
                    problems.append(
                        f"{prefix}: use of {operand.short_name()} is not "
                        f"dominated by its definition in %{def_block.name}")
    return problems


def _verify_instruction(function: Function, block: BasicBlock,
                        inst: Instruction, block_ids: set) -> List[str]:
    prefix = f"@{function.name}/%{block.name}"
    problems: List[str] = []
    if isinstance(inst, Branch):
        if id(inst.target) not in block_ids:
            problems.append(f"{prefix}: branch to a block outside the function")
    elif isinstance(inst, CondBranch):
        if id(inst.if_true) not in block_ids or id(inst.if_false) not in block_ids:
            problems.append(f"{prefix}: conditional branch target outside the function")
        if inst.condition.type.bit_width != 1:
            problems.append(f"{prefix}: conditional branch on a non-i1 value")
    elif isinstance(inst, ICmp):
        if inst.lhs.type.bit_width != inst.rhs.type.bit_width:
            problems.append(f"{prefix}: icmp operand width mismatch")
    elif isinstance(inst, Store):
        pointee = inst.pointer.type.pointee
        if (pointee.is_integer() and inst.value.type.is_integer()
                and pointee.bit_width != inst.value.type.bit_width):
            problems.append(f"{prefix}: store width mismatch")
    return problems


def verify_module(module: Module, raise_on_error: bool = True) -> List[str]:
    """Verify every function; optionally raise :class:`VerificationError`."""
    problems: List[str] = []
    for function in module:
        problems.extend(verify_function(function))
    if problems and raise_on_error:
        raise VerificationError(problems)
    return problems
