"""Structural verification of IR modules.

The verifier catches malformed IR early (missing terminators, phi nodes whose
incoming blocks are not predecessors, type mismatches, dangling block
references).  The lowering pass and the inliner both run it in tests, and the
checker runs it defensively before analysis.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    Branch,
    CondBranch,
    ICmp,
    Instruction,
    Phi,
    Return,
    Store,
)


class VerificationError(Exception):
    """Raised when an IR module is structurally invalid."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems


def verify_function(function: Function) -> List[str]:
    """Return a list of problems found in ``function`` (empty = valid)."""
    problems: List[str] = []
    if function.is_declaration:
        return problems
    if not function.blocks:
        return [f"function @{function.name} has no blocks"]

    block_ids = {id(b) for b in function.blocks}

    for block in function.blocks:
        prefix = f"@{function.name}/%{block.name}"
        if not block.is_terminated():
            problems.append(f"{prefix}: block is not terminated")
        terminator_seen = False
        for inst in block.instructions:
            if terminator_seen:
                problems.append(f"{prefix}: instruction after terminator")
                break
            if inst.is_terminator():
                terminator_seen = True
            if inst.parent is not block:
                problems.append(f"{prefix}: instruction parent link is wrong")
            problems.extend(_verify_instruction(function, block, inst, block_ids))

        preds = {id(p) for p in block.predecessors()}
        for phi in block.phis():
            incoming_blocks = {id(b) for _v, b in phi.incoming}
            if incoming_blocks - preds:
                problems.append(
                    f"{prefix}: phi %{phi.name} has incoming edge from a "
                    f"non-predecessor block")
            if preds - incoming_blocks:
                problems.append(
                    f"{prefix}: phi %{phi.name} is missing an incoming value "
                    f"for some predecessor")

    ret_type = function.ftype.return_type
    for ret in function.returns():
        if ret.value is None and not ret_type.is_void():
            problems.append(f"@{function.name}: ret void in a non-void function")
        if ret.value is not None and ret_type.is_void():
            problems.append(f"@{function.name}: ret with a value in a void function")
    return problems


def _verify_instruction(function: Function, block: BasicBlock,
                        inst: Instruction, block_ids: set) -> List[str]:
    prefix = f"@{function.name}/%{block.name}"
    problems: List[str] = []
    if isinstance(inst, Branch):
        if id(inst.target) not in block_ids:
            problems.append(f"{prefix}: branch to a block outside the function")
    elif isinstance(inst, CondBranch):
        if id(inst.if_true) not in block_ids or id(inst.if_false) not in block_ids:
            problems.append(f"{prefix}: conditional branch target outside the function")
        if inst.condition.type.bit_width != 1:
            problems.append(f"{prefix}: conditional branch on a non-i1 value")
    elif isinstance(inst, ICmp):
        if inst.lhs.type.bit_width != inst.rhs.type.bit_width:
            problems.append(f"{prefix}: icmp operand width mismatch")
    elif isinstance(inst, Store):
        pointee = inst.pointer.type.pointee
        if (pointee.is_integer() and inst.value.type.is_integer()
                and pointee.bit_width != inst.value.type.bit_width):
            problems.append(f"{prefix}: store width mismatch")
    return problems


def verify_module(module: Module, raise_on_error: bool = True) -> List[str]:
    """Verify every function; optionally raise :class:`VerificationError`."""
    problems: List[str] = []
    for function in module:
        problems.extend(verify_function(function))
    if problems and raise_on_error:
        raise VerificationError(problems)
    return problems
