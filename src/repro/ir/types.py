"""IR type system: sized integers, pointers, arrays, void, and functions.

The widths mirror the C data model the checker assumes (LP64): ``char`` is 8
bits, ``int`` 32, ``long``/pointers 64.  Signedness is carried on the integer
type so the checker knows which undefined-behavior conditions (signed
overflow vs. unsigned wrap-around) apply to an operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class IRType:
    """Base class for all IR types."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_bool(self) -> bool:
        return isinstance(self, IntType) and self.width == 1

    @property
    def bit_width(self) -> int:
        """Width in bits when the type is materialised as a bit vector."""
        raise NotImplementedError


@dataclass(frozen=True)
class VoidType(IRType):
    """The void type (only valid as a function return type)."""

    def __repr__(self) -> str:
        return "void"

    @property
    def bit_width(self) -> int:
        raise TypeError("void has no bit width")


@dataclass(frozen=True)
class IntType(IRType):
    """Fixed-width integer type, carrying C-level signedness."""

    width: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"integer width must be positive, got {self.width}")

    @property
    def bit_width(self) -> int:
        return self.width

    @property
    def min_value(self) -> int:
        if self.signed:
            return -(1 << (self.width - 1))
        return 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def as_unsigned(self) -> "IntType":
        return IntType(self.width, signed=False)

    def as_signed(self) -> "IntType":
        return IntType(self.width, signed=True)

    def __repr__(self) -> str:
        prefix = "i" if self.signed else "u"
        return f"{prefix}{self.width}"


@dataclass(frozen=True)
class PointerType(IRType):
    """Pointer to another IR type.

    Pointers are modelled as 64-bit integers (LP64) when encoded for the
    solver; ``pointee`` is kept for element-size computation in GEPs and for
    diagnostics.
    """

    pointee: IRType
    width: int = 64

    @property
    def bit_width(self) -> int:
        return self.width

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


@dataclass(frozen=True)
class ArrayType(IRType):
    """Fixed-size array of elements (used for stack buffers)."""

    element: IRType
    count: int

    @property
    def bit_width(self) -> int:
        return self.element.bit_width * self.count

    def __repr__(self) -> str:
        return f"[{self.count} x {self.element!r}]"


@dataclass(frozen=True)
class FunctionType(IRType):
    """Type of a function: return type plus parameter types."""

    return_type: IRType
    param_types: Tuple[IRType, ...] = ()
    variadic: bool = False

    @property
    def bit_width(self) -> int:
        raise TypeError("function types have no bit width")

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.param_types)
        if self.variadic:
            params = params + ", ..." if params else "..."
        return f"{self.return_type!r}({params})"


def type_size_bytes(ty: IRType) -> int:
    """Size of a type in bytes, used for pointer arithmetic scaling."""
    if isinstance(ty, IntType):
        return max(1, ty.width // 8)
    if isinstance(ty, PointerType):
        return ty.width // 8
    if isinstance(ty, ArrayType):
        return type_size_bytes(ty.element) * ty.count
    if isinstance(ty, VoidType):
        return 1
    raise TypeError(f"cannot compute the size of {ty!r}")


# Common instances ------------------------------------------------------------

BOOL_TYPE = IntType(1, signed=False)
INT8 = IntType(8)
INT16 = IntType(16)
INT32 = IntType(32)
INT64 = IntType(64)
UINT8 = IntType(8, signed=False)
UINT16 = IntType(16, signed=False)
UINT32 = IntType(32, signed=False)
UINT64 = IntType(64, signed=False)
VOID = VoidType()
CHAR_PTR = PointerType(INT8)
