"""Textual printing of the IR, in an LLVM-flavoured syntax.

The printed form is used in diagnostics, in examples, and in golden tests.
It is not meant to round-trip; the frontend is the only way in.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.values import Constant, Value


def _operand(value: Value) -> str:
    if isinstance(value, Constant):
        return f"{value.type!r} {value.value}"
    if isinstance(value, BasicBlock):
        return f"label %{value.name}"
    return f"{value.type!r} %{value.name}"


def print_instruction(inst: Instruction) -> str:
    """Render a single instruction."""
    if isinstance(inst, BinaryOp):
        return (f"%{inst.name} = {inst.kind.value} "
                f"{_operand(inst.lhs)}, {_operand(inst.rhs)}")
    if isinstance(inst, ICmp):
        return (f"%{inst.name} = icmp {inst.pred.value} "
                f"{_operand(inst.lhs)}, {_operand(inst.rhs)}")
    if isinstance(inst, Select):
        return (f"%{inst.name} = select {_operand(inst.condition)}, "
                f"{_operand(inst.on_true)}, {_operand(inst.on_false)}")
    if isinstance(inst, Cast):
        return (f"%{inst.name} = {inst.kind.value} {_operand(inst.value)} "
                f"to {inst.type!r}")
    if isinstance(inst, Alloca):
        return f"%{inst.name} = alloca {inst.allocated_type!r}"
    if isinstance(inst, Load):
        return f"%{inst.name} = load {_operand(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {_operand(inst.value)}, {_operand(inst.pointer)}"
    if isinstance(inst, GetElementPtr):
        suffix = f", capacity={inst.array_size}" if inst.array_size is not None else ""
        return (f"%{inst.name} = gep {_operand(inst.pointer)}, "
                f"{_operand(inst.index)}{suffix}")
    if isinstance(inst, Call):
        args = ", ".join(_operand(a) for a in inst.args)
        if inst.type.is_void():
            return f"call @{inst.callee}({args})"
        return f"%{inst.name} = call {inst.type!r} @{inst.callee}({args})"
    if isinstance(inst, Phi):
        incoming = ", ".join(
            f"[ {_operand(v)}, %{b.name} ]" for v, b in inst.incoming)
        return f"%{inst.name} = phi {inst.type!r} {incoming}"
    if isinstance(inst, Branch):
        return f"br label %{inst.target.name}"
    if isinstance(inst, CondBranch):
        return (f"br {_operand(inst.condition)}, label %{inst.if_true.name}, "
                f"label %{inst.if_false.name}")
    if isinstance(inst, Return):
        if inst.value is None:
            return "ret void"
        return f"ret {_operand(inst.value)}"
    if isinstance(inst, Unreachable):
        return "unreachable"
    return f"<unknown instruction {type(inst).__name__}>"


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        comment = ""
        if not inst.origin.is_user_code():
            comment = f"  ; {inst.origin.describe()}"
        lines.append(f"  {print_instruction(inst)}{comment}")
    return "\n".join(lines)


def print_function(function: Function) -> str:
    params = ", ".join(
        f"{arg.type!r} %{arg.name}" for arg in function.arguments)
    header = f"define {function.ftype.return_type!r} @{function.name}({params}) {{"
    parts: List[str] = [header]
    for block in function.blocks:
        parts.append(print_block(block))
    parts.append("}")
    return "\n".join(parts)


def print_module(module: Module) -> str:
    parts = [f"; module {module.name}"]
    for function in module:
        if function.is_declaration:
            parts.append(f"declare @{function.name}")
        else:
            parts.append(print_function(function))
    return "\n\n".join(parts)
