"""Dominator tree computation (Cooper–Harvey–Kennedy algorithm).

The checker replaces the paper's whole-program well-defined assumption with
the conjunction of UB conditions over an instruction's *dominators* (§4.4),
so an efficient dominator computation is part of the substrate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import reverse_postorder
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instruction


class DominatorTree:
    """Immediate dominators and dominance queries for one function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.rpo = reverse_postorder(function)
        self._index: Dict[int, int] = {id(b): i for i, b in enumerate(self.rpo)}
        self.idom: Dict[int, Optional[BasicBlock]] = {}
        self._compute()

    # -- construction ------------------------------------------------------

    def _compute(self) -> None:
        if not self.function.blocks:
            return
        entry = self.function.entry
        self.idom = {id(b): None for b in self.rpo}
        self.idom[id(entry)] = entry

        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                preds = [p for p in block.predecessors()
                         if self.idom.get(id(p)) is not None]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(pred, new_idom)
                if self.idom[id(block)] is not new_idom:
                    self.idom[id(block)] = new_idom
                    changed = True

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        finger1, finger2 = a, b
        while finger1 is not finger2:
            while self._index[id(finger1)] > self._index[id(finger2)]:
                finger1 = self.idom[id(finger1)]  # type: ignore[assignment]
            while self._index[id(finger2)] > self._index[id(finger1)]:
                finger2 = self.idom[id(finger2)]  # type: ignore[assignment]
        return finger1

    # -- queries ------------------------------------------------------------

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The immediate dominator, or None for the entry / unreachable blocks."""
        idom = self.idom.get(id(block))
        if idom is block:
            return None
        return idom

    def dominators_of(self, block: BasicBlock) -> List[BasicBlock]:
        """All blocks that dominate ``block``, from entry down to itself."""
        chain: List[BasicBlock] = []
        current: Optional[BasicBlock] = block
        seen: Set[int] = set()
        while current is not None and id(current) not in seen:
            seen.add(id(current))
            chain.append(current)
            nxt = self.idom.get(id(current))
            if nxt is current:
                break
            current = nxt
        return list(reversed(chain))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True iff block ``a`` dominates block ``b``."""
        current: Optional[BasicBlock] = b
        seen: Set[int] = set()
        while current is not None and id(current) not in seen:
            if current is a:
                return True
            seen.add(id(current))
            nxt = self.idom.get(id(current))
            if nxt is current:
                return a is current
            current = nxt
        return False

    # -- instruction-level dominators ------------------------------------------

    def dominating_instructions(self, inst: Instruction) -> List[Instruction]:
        """Instructions guaranteed to have executed before ``inst``.

        This is dom(e) in the paper: all instructions in strictly dominating
        blocks plus the instructions that precede ``inst`` in its own block.
        """
        block = inst.parent
        if block is None:
            return []
        result: List[Instruction] = []
        for dom_block in self.dominators_of(block):
            if dom_block is block:
                for other in block.instructions:
                    if other is inst:
                        break
                    result.append(other)
            else:
                result.extend(dom_block.instructions)
        return result


def compute_dominators(function: Function) -> DominatorTree:
    """Convenience wrapper returning a fresh :class:`DominatorTree`."""
    return DominatorTree(function)
