"""Basic blocks, functions, and modules."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.ir.instructions import (
    Branch,
    CondBranch,
    Instruction,
    Phi,
    Return,
    Unreachable,
)
from repro.ir.types import FunctionType, IRType
from repro.ir.values import Argument, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None) -> None:
        super().__init__(ty=None, name=name)  # type: ignore[arg-type]
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- contents ----------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated() and not isinstance(inst, Phi):
            raise ValueError(
                f"cannot append to already-terminated block {self.name!r}")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        inst.parent = self
        if self.is_terminated():
            self.instructions.insert(len(self.instructions) - 1, inst)
        else:
            self.instructions.append(inst)
        return inst

    def phis(self) -> List[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def is_terminated(self) -> bool:
        return self.terminator is not None

    # -- CFG edges ------------------------------------------------------------

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        if isinstance(term, Branch):
            return [term.target]
        if isinstance(term, CondBranch):
            if term.if_true is term.if_false:
                return [term.if_true]
            return [term.if_true, term.if_false]
        return []

    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors()]

    def short_name(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)


class Function(Value):
    """A function: arguments plus a list of basic blocks (entry first)."""

    def __init__(self, name: str, ftype: FunctionType,
                 param_names: Sequence[str] = ()) -> None:
        super().__init__(ftype, name)
        self.ftype = ftype
        self.blocks: List[BasicBlock] = []
        self.arguments: List[Argument] = []
        for index, ptype in enumerate(ftype.param_types):
            pname = param_names[index] if index < len(param_names) else f"arg{index}"
            self.arguments.append(Argument(ptype, pname, index))
        self._name_counter = 0
        # Declared-only functions (no body) are "external".
        self.is_declaration = False

    # -- blocks ------------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        if not name:
            name = self.next_name("bb")
        block = BasicBlock(name, parent=self)
        self.blocks.append(block)
        return block

    def block_by_name(self, name: str) -> Optional[BasicBlock]:
        for block in self.blocks:
            if block.name == name:
                return block
        return None

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)

    # -- helpers -----------------------------------------------------------------

    def next_name(self, prefix: str = "t") -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def argument(self, name: str) -> Argument:
        for arg in self.arguments:
            if arg.name == name:
                return arg
        raise KeyError(f"function {self.name!r} has no argument {name!r}")

    def returns(self) -> List[Return]:
        return [i for i in self.instructions() if isinstance(i, Return)]

    def __repr__(self) -> str:
        return f"<Function @{self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A translation unit: a named collection of functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __repr__(self) -> str:
        return f"<Module {self.name!r} ({len(self.functions)} functions)>"
