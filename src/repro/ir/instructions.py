"""IR instruction classes.

The instruction set is the small slice of LLVM IR the checker needs:
integer/pointer arithmetic, comparisons, memory access, address computation
(GEP), calls, casts, select, phi nodes, and the terminators.  Every
instruction carries a :class:`~repro.ir.source.SourceLocation` and an
:class:`~repro.ir.source.Origin` so that diagnostics can be filtered and
attributed (§4.2, §4.5 of the paper).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from repro.ir.source import Origin, SourceLocation, USER_ORIGIN
from repro.ir.types import IRType, IntType, PointerType, VoidType, type_size_bytes
from repro.ir.values import Value


class Instruction(Value):
    """Base class of all instructions."""

    def __init__(
        self,
        ty: IRType,
        name: str = "",
        operands: Sequence[Value] = (),
        location: Optional[SourceLocation] = None,
        origin: Origin = USER_ORIGIN,
    ) -> None:
        super().__init__(ty, name)
        self.operands: List[Value] = list(operands)
        self.location = location if location is not None else SourceLocation()
        self.origin = origin
        self.parent = None  # type: Optional["repro.ir.function.BasicBlock"]

    def is_terminator(self) -> bool:
        return isinstance(self, (Branch, CondBranch, Return, Unreachable))

    def opcode(self) -> str:
        return type(self).__name__.lower()

    def replace_operand(self, old: Value, new: Value) -> None:
        self.operands = [new if op is old else op for op in self.operands]

    def __repr__(self) -> str:
        ops = ", ".join(op.short_name() for op in self.operands)
        return f"<{type(self).__name__} {self.short_name()} [{ops}]>"


# -- arithmetic ------------------------------------------------------------------


class BinOpKind(enum.Enum):
    """Binary arithmetic / bitwise operators."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    UDIV = "udiv"
    SREM = "srem"
    UREM = "urem"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    AND = "and"
    OR = "or"
    XOR = "xor"


class BinaryOp(Instruction):
    """``result = op lhs, rhs`` over same-width integers."""

    def __init__(self, kind: BinOpKind, lhs: Value, rhs: Value, name: str = "",
                 **meta) -> None:
        if lhs.type.bit_width != rhs.type.bit_width:
            raise TypeError(
                f"binary op {kind.value} operand widths differ: "
                f"{lhs.type!r} vs {rhs.type!r}")
        super().__init__(lhs.type, name, (lhs, rhs), **meta)
        self.kind = kind

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def opcode(self) -> str:
        return self.kind.value


class ICmpPred(enum.Enum):
    """Integer/pointer comparison predicates."""

    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"


class ICmp(Instruction):
    """``result = icmp pred lhs, rhs`` — produces an i1."""

    def __init__(self, pred: ICmpPred, lhs: Value, rhs: Value, name: str = "",
                 **meta) -> None:
        if lhs.type.bit_width != rhs.type.bit_width:
            raise TypeError(
                f"icmp {pred.value} operand widths differ: "
                f"{lhs.type!r} vs {rhs.type!r}")
        super().__init__(IntType(1, signed=False), name, (lhs, rhs), **meta)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def opcode(self) -> str:
        return f"icmp {self.pred.value}"


class Select(Instruction):
    """``result = select cond, a, b``."""

    def __init__(self, cond: Value, on_true: Value, on_false: Value,
                 name: str = "", **meta) -> None:
        super().__init__(on_true.type, name, (cond, on_true, on_false), **meta)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def on_true(self) -> Value:
        return self.operands[1]

    @property
    def on_false(self) -> Value:
        return self.operands[2]


# -- casts -------------------------------------------------------------------------


class CastKind(enum.Enum):
    TRUNC = "trunc"
    ZEXT = "zext"
    SEXT = "sext"
    PTRTOINT = "ptrtoint"
    INTTOPTR = "inttoptr"
    BITCAST = "bitcast"


class Cast(Instruction):
    """Width / representation change of a single operand."""

    def __init__(self, kind: CastKind, value: Value, target: IRType,
                 name: str = "", **meta) -> None:
        super().__init__(target, name, (value,), **meta)
        self.kind = kind

    @property
    def value(self) -> Value:
        return self.operands[0]

    def opcode(self) -> str:
        return self.kind.value


# -- memory ------------------------------------------------------------------------


class Alloca(Instruction):
    """Stack allocation; the result is a pointer to the allocated type."""

    def __init__(self, allocated: IRType, name: str = "", **meta) -> None:
        super().__init__(PointerType(allocated), name, (), **meta)
        self.allocated_type = allocated


class Load(Instruction):
    """``result = load ptr``."""

    def __init__(self, ptr: Value, name: str = "", **meta) -> None:
        if not ptr.type.is_pointer():
            raise TypeError(f"load expects a pointer operand, got {ptr.type!r}")
        super().__init__(ptr.type.pointee, name, (ptr,), **meta)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """``store value, ptr``."""

    def __init__(self, value: Value, ptr: Value, **meta) -> None:
        if not ptr.type.is_pointer():
            raise TypeError(f"store expects a pointer operand, got {ptr.type!r}")
        super().__init__(VoidType(), "", (value, ptr), **meta)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GetElementPtr(Instruction):
    """Pointer arithmetic: ``result = gep ptr, index`` (byte-scaled by element size)."""

    def __init__(self, ptr: Value, index: Value, name: str = "",
                 element_type: Optional[IRType] = None,
                 array_size: Optional[int] = None, **meta) -> None:
        if not ptr.type.is_pointer():
            raise TypeError(f"gep expects a pointer operand, got {ptr.type!r}")
        super().__init__(ptr.type, name, (ptr, index), **meta)
        self.element_type = element_type if element_type is not None else ptr.type.pointee
        # When the base pointer is a declared array, the capacity is recorded
        # so the buffer-overflow UB condition (Figure 3) can be emitted.
        self.array_size = array_size

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def element_size(self) -> int:
        return type_size_bytes(self.element_type)


# -- calls --------------------------------------------------------------------------


class Call(Instruction):
    """``result = call callee(args...)``.

    The callee is referenced by name; the checker understands the semantics
    of a handful of library functions (abs, memcpy, free, realloc, strchr, ...)
    and treats everything else as returning an unconstrained value.
    """

    def __init__(self, callee: str, args: Sequence[Value], return_type: IRType,
                 name: str = "", **meta) -> None:
        super().__init__(return_type, name, tuple(args), **meta)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return list(self.operands)

    def opcode(self) -> str:
        return f"call @{self.callee}"


# -- phi ---------------------------------------------------------------------------


class Phi(Instruction):
    """SSA phi node: selects a value based on the predecessor block taken."""

    def __init__(self, ty: IRType, name: str = "", **meta) -> None:
        super().__init__(ty, name, (), **meta)
        self.incoming: List[Tuple[Value, "repro.ir.function.BasicBlock"]] = []

    def add_incoming(self, value: Value, block) -> None:
        self.incoming.append((value, block))
        self.operands.append(value)

    def incoming_for(self, block) -> Optional[Value]:
        for value, pred in self.incoming:
            if pred is block:
                return value
        return None

    def replace_operand(self, old: Value, new: Value) -> None:
        super().replace_operand(old, new)
        self.incoming = [(new if v is old else v, b) for v, b in self.incoming]


# -- terminators ---------------------------------------------------------------------


class Branch(Instruction):
    """Unconditional branch."""

    def __init__(self, target, **meta) -> None:
        super().__init__(VoidType(), "", (), **meta)
        self.target = target


class CondBranch(Instruction):
    """Conditional branch on an i1 value."""

    def __init__(self, cond: Value, if_true, if_false, **meta) -> None:
        super().__init__(VoidType(), "", (cond,), **meta)
        self.if_true = if_true
        self.if_false = if_false

    @property
    def condition(self) -> Value:
        return self.operands[0]


class Return(Instruction):
    """Function return, with an optional value."""

    def __init__(self, value: Optional[Value] = None, **meta) -> None:
        operands = (value,) if value is not None else ()
        super().__init__(VoidType(), "", operands, **meta)

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Unreachable(Instruction):
    """Marks a point the frontend believes can never execute."""

    def __init__(self, **meta) -> None:
        super().__init__(VoidType(), "", (), **meta)
