"""Control-flow graph utilities: orderings, back edges, reachability."""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.function import BasicBlock, Function


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry block.

    Unreachable blocks are appended at the end in their original order so
    every block receives a position (the checker still annotates them).
    """
    visited: Set[int] = set()
    postorder: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack: List[Tuple[BasicBlock, int]] = [(block, 0)]
        visited.add(id(block))
        while stack:
            current, child_index = stack[-1]
            successors = current.successors()
            if child_index < len(successors):
                stack[-1] = (current, child_index + 1)
                successor = successors[child_index]
                if id(successor) not in visited:
                    visited.add(id(successor))
                    stack.append((successor, 0))
            else:
                postorder.append(current)
                stack.pop()

    if function.blocks:
        visit(function.entry)
    order = list(reversed(postorder))
    for block in function.blocks:
        if id(block) not in visited:
            order.append(block)
    return order


def reachable_blocks(function: Function) -> Set[int]:
    """IDs of blocks reachable from the entry."""
    if not function.blocks:
        return set()
    seen: Set[int] = {id(function.entry)}
    worklist = [function.entry]
    while worklist:
        block = worklist.pop()
        for successor in block.successors():
            if id(successor) not in seen:
                seen.add(id(successor))
                worklist.append(successor)
    return seen


def back_edges(function: Function) -> Set[Tuple[int, int]]:
    """Edges (source id, target id) that close a cycle in a DFS from entry.

    The checker removes these edges when computing reachability conditions,
    which is the "approximate reachability" of §4.4: loops contribute their
    first iteration's conditions only.
    """
    result: Set[Tuple[int, int]] = set()
    if not function.blocks:
        return result
    state: Dict[int, int] = {}  # 0 = unvisited, 1 = on stack, 2 = done

    def dfs(block: BasicBlock) -> None:
        stack: List[Tuple[BasicBlock, int]] = [(block, 0)]
        state[id(block)] = 1
        while stack:
            current, child_index = stack[-1]
            successors = current.successors()
            if child_index < len(successors):
                stack[-1] = (current, child_index + 1)
                successor = successors[child_index]
                succ_state = state.get(id(successor), 0)
                if succ_state == 1:
                    result.add((id(current), id(successor)))
                elif succ_state == 0:
                    state[id(successor)] = 1
                    stack.append((successor, 0))
            else:
                state[id(current)] = 2
                stack.pop()

    dfs(function.entry)
    return result


def has_loops(function: Function) -> bool:
    """True if the function's CFG contains a cycle reachable from entry."""
    return bool(back_edges(function))


def edge_list(function: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
    """All CFG edges as (predecessor, successor) pairs."""
    edges = []
    for block in function.blocks:
        for successor in block.successors():
            edges.append((block, successor))
    return edges
