"""IRBuilder: a convenience API for constructing IR programmatically.

The lowering pass (:mod:`repro.lower`) and the unit tests both build IR
through this class.  It mirrors the corresponding LLVM helper: it keeps an
insertion point (a basic block) and appends new instructions there, assigning
fresh names as it goes.  Source location and origin metadata can be set once
and applies to subsequently created instructions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    BinOpKind,
    Branch,
    Call,
    Cast,
    CastKind,
    CondBranch,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.source import Origin, SourceLocation, USER_ORIGIN
from repro.ir.types import IntType, IRType, PointerType
from repro.ir.values import Constant, Value


class IRBuilder:
    """Appends instructions to a basic block, tracking metadata."""

    def __init__(self, function: Function, block: Optional[BasicBlock] = None) -> None:
        self.function = function
        self.block = block if block is not None else (
            function.blocks[0] if function.blocks else function.add_block("entry"))
        self.location = SourceLocation()
        self.origin: Origin = USER_ORIGIN

    # -- positioning / metadata ------------------------------------------------

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def set_location(self, filename: str, line: int, column: int = 0) -> None:
        self.location = SourceLocation(filename, line, column)

    def set_origin(self, origin: Origin) -> None:
        self.origin = origin

    def new_block(self, name: str = "") -> BasicBlock:
        return self.function.add_block(name)

    def _meta(self) -> dict:
        return {"location": self.location, "origin": self.origin}

    def _emit(self, inst: Instruction) -> Instruction:
        if not inst.name and not inst.type.is_void():
            inst.name = self.function.next_name()
        return self.block.append(inst)

    # -- constants ----------------------------------------------------------------

    def const_int(self, ty: IntType, value: int) -> Constant:
        return Constant(ty, value)

    def const_null(self, ty: PointerType) -> Constant:
        return Constant(ty, 0)

    def const_bool(self, value: bool) -> Constant:
        return Constant(IntType(1, signed=False), int(value))

    # -- arithmetic ------------------------------------------------------------------

    def binop(self, kind: BinOpKind, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(BinaryOp(kind, lhs, rhs, name, **self._meta()))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.ADD, lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.SUB, lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.MUL, lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.SDIV, lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.UDIV, lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.SREM, lhs, rhs, name)

    def urem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.UREM, lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.SHL, lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.LSHR, lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.ASHR, lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.AND, lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.OR, lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop(BinOpKind.XOR, lhs, rhs, name)

    def neg(self, value: Value, name: str = "") -> Value:
        zero = Constant(value.type, 0)
        return self.binop(BinOpKind.SUB, zero, value, name)

    # -- comparisons ---------------------------------------------------------------

    def icmp(self, pred: ICmpPred, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(ICmp(pred, lhs, rhs, name, **self._meta()))

    def icmp_eq(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.icmp(ICmpPred.EQ, lhs, rhs, name)

    def icmp_ne(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.icmp(ICmpPred.NE, lhs, rhs, name)

    def select(self, cond: Value, on_true: Value, on_false: Value, name: str = "") -> Value:
        return self._emit(Select(cond, on_true, on_false, name, **self._meta()))

    # -- casts -----------------------------------------------------------------------

    def cast(self, kind: CastKind, value: Value, target: IRType, name: str = "") -> Value:
        return self._emit(Cast(kind, value, target, name, **self._meta()))

    def trunc(self, value: Value, target: IRType, name: str = "") -> Value:
        return self.cast(CastKind.TRUNC, value, target, name)

    def zext(self, value: Value, target: IRType, name: str = "") -> Value:
        return self.cast(CastKind.ZEXT, value, target, name)

    def sext(self, value: Value, target: IRType, name: str = "") -> Value:
        return self.cast(CastKind.SEXT, value, target, name)

    # -- memory ---------------------------------------------------------------------

    def alloca(self, allocated: IRType, name: str = "") -> Value:
        return self._emit(Alloca(allocated, name, **self._meta()))

    def load(self, ptr: Value, name: str = "") -> Value:
        return self._emit(Load(ptr, name, **self._meta()))

    def store(self, value: Value, ptr: Value) -> Value:
        return self._emit(Store(value, ptr, **self._meta()))

    def gep(self, ptr: Value, index: Value, name: str = "",
            element_type: Optional[IRType] = None,
            array_size: Optional[int] = None) -> Value:
        return self._emit(GetElementPtr(
            ptr, index, name, element_type=element_type,
            array_size=array_size, **self._meta()))

    # -- calls ----------------------------------------------------------------------

    def call(self, callee: str, args: Sequence[Value], return_type: IRType,
             name: str = "") -> Value:
        return self._emit(Call(callee, args, return_type, name, **self._meta()))

    # -- phi ------------------------------------------------------------------------

    def phi(self, ty: IRType, name: str = "") -> Phi:
        phi = Phi(ty, name, **self._meta())
        if not phi.name:
            phi.name = self.function.next_name("phi")
        # Phi nodes always go to the front of the block, before other code.
        phi.parent = self.block
        insert_at = 0
        for i, existing in enumerate(self.block.instructions):
            if isinstance(existing, Phi):
                insert_at = i + 1
        self.block.instructions.insert(insert_at, phi)
        return phi

    # -- terminators -------------------------------------------------------------

    def br(self, target: BasicBlock) -> Instruction:
        return self._emit(Branch(target, **self._meta()))

    def cond_br(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Instruction:
        return self._emit(CondBranch(cond, if_true, if_false, **self._meta()))

    def ret(self, value: Optional[Value] = None) -> Instruction:
        return self._emit(Return(value, **self._meta()))

    def unreachable(self) -> Instruction:
        return self._emit(Unreachable(**self._meta()))
