"""IR values: the base class, constants, undef, and function arguments."""

from __future__ import annotations

from typing import List, Optional

from repro.ir.types import IRType, IntType, PointerType


class Value:
    """Base class of everything that can be used as an operand.

    Every value has a type and an optional name (used for printing and for
    mapping back to the programmer's variables in diagnostics).
    """

    def __init__(self, ty: IRType, name: str = "") -> None:
        self.type = ty
        self.name = name
        self.uses: List["Value"] = []

    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def is_null_pointer(self) -> bool:
        return isinstance(self, Constant) and self.type.is_pointer() and self.value == 0

    def short_name(self) -> str:
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short_name()}: {self.type!r}>"


class Constant(Value):
    """An integer or pointer constant.

    The value is stored as a Python int; signed constants may be negative and
    are normalised to two's-complement when encoded for the solver.
    """

    def __init__(self, ty: IRType, value: int) -> None:
        super().__init__(ty, name=str(value))
        if not (ty.is_integer() or ty.is_pointer()):
            raise TypeError(f"constants must be integers or pointers, got {ty!r}")
        self.value = int(value)

    @staticmethod
    def int_of(ty: IntType, value: int) -> "Constant":
        return Constant(ty, value)

    @staticmethod
    def null(ty: PointerType) -> "Constant":
        return Constant(ty, 0)

    def as_unsigned(self) -> int:
        """The two's-complement (unsigned) bit pattern of this constant."""
        width = self.type.bit_width
        return self.value & ((1 << width) - 1)

    def short_name(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"<Constant {self.value}: {self.type!r}>"


class UndefValue(Value):
    """An unconstrained value (e.g. the result of reading uninitialised memory)."""

    def short_name(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, ty: IRType, name: str, index: int) -> None:
        super().__init__(ty, name)
        self.index = index

    def __repr__(self) -> str:
        return f"<Argument %{self.name} #{self.index}: {self.type!r}>"


class GlobalVariable(Value):
    """A module-level variable; its value is an address (pointer type)."""

    def __init__(self, ty: PointerType, name: str) -> None:
        super().__init__(ty, name)

    def short_name(self) -> str:
        return f"@{self.name}"
