"""Command-line interface: ``python -m repro [options] file.c``.

The smallest useful slice of ``stack-build``: check one C-like source file
for optimization-unstable code and print the report.  ``--json`` emits the
same record the engine's JSONL sink streams (one ``unit`` object, see
docs/ENGINE.md), so shell pipelines and the corpus engine share a format.
``--validate`` enables the stage-5 concrete witness replay (docs/EXEC.md);
``--repair`` enables the stage-6 solver-verified auto-repair and
``--patch-out`` writes the emitted unified IR diffs to a file (or ``-``
for stdout).  ``--seed`` feeds the witness/repair replays and ``--diff``
(the seeded differential optimizer run), so validation runs reproduce bit
for bit.

``python -m repro fuzz`` runs a generative fuzzing campaign instead of
checking one file (docs/FUZZ.md): ``--budget`` generated programs from
``--seed``, optionally ``--reduce``-d to minimal reproducers, with the
deterministic JSONL stream written to ``--out``.

``python -m repro cluster`` checks a corpus with structural-clustering
dedup (docs/CLUSTER.md): source files (or a ``--synthetic N`` snippet
corpus) are fingerprinted, grouped into equivalence clusters, and one
representative per cluster is solved; confirmed members receive the
propagated verdict.  ``--no-cluster`` runs the same corpus exhaustively
for A/B comparisons.

``python -m repro serve`` runs the always-on checking daemon
(docs/SERVE.md): a pool of warm worker processes behind a local socket,
accepting jobs over line-delimited JSON and streaming engine-schema
records back.  ``python -m repro submit`` is its command-line client:
submit source files (or ``--stdin``) as one job and print the streamed
JSONL records.  ``python -m repro top`` is the daemon's live dashboard
(``--once --json`` for scripts).  ``check`` is an explicit alias for the
default one-file mode, where ``--stdin`` (or a ``-`` source) reads the
unit from stdin.

Exit status (all modes): 0 — no unstable code, 1 — warnings/unstable
findings reported (for ``fuzz``, any anomaly counts: diagnostics,
miscompiles, failed units, expectation mismatches; for ``cluster``,
diagnostics or failed units; for ``submit``, diagnostics or errored
units), 2 — the input could not be compiled or read (or the
campaign/corpus/daemon configuration was invalid), 130 — interrupted
(Ctrl-C or SIGTERM; engine-backed modes flush their JSONL stream first,
with the partial run summary marked ``"interrupted": true``).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import List, Optional

from repro.api import check_source
from repro.core.checker import CheckerConfig


def _add_version(parser: argparse.ArgumentParser) -> None:
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="STACK reproduction: find optimization-unstable code "
                    "in a C-like source file.")
    _add_version(parser)
    parser.add_argument("source", nargs="?", default=None,
                        help="path to a C-like source file, or '-' to read "
                             "from stdin")
    parser.add_argument("--stdin", action="store_true",
                        help="read the translation unit from stdin "
                             "(equivalent to a '-' source)")
    parser.add_argument("--json", action="store_true",
                        help="emit the engine's JSONL unit record instead of "
                             "the human-readable report")
    parser.add_argument("--validate", action="store_true",
                        help="replay a concrete witness for every diagnostic "
                             "through the IR interpreter (stage 5)")
    parser.add_argument("--repair", action="store_true",
                        help="propose and verify patches for every "
                             "diagnostic (stage 6: template rewrites behind "
                             "the three-gate verifier)")
    parser.add_argument("--patch-out", metavar="PATH", default=None,
                        help="with --repair: write the emitted unified IR "
                             "diffs to PATH ('-' for stdout)")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="seed for the witness/repair replay environment "
                             "and the --diff differential runner "
                             "(default: 0)")
    parser.add_argument("--diff", action="store_true",
                        help="additionally run the seeded differential "
                             "optimizer campaign for this file against every "
                             "compiler profile and print the table")
    parser.add_argument("--timeout", type=float, default=5.0, metavar="SECONDS",
                        help="per-query solver timeout (default: 5.0)")
    parser.add_argument("--max-conflicts", type=int, default=50_000,
                        metavar="N", help="per-query CDCL conflict budget "
                                          "(default: 50000)")
    parser.add_argument("--no-incremental", action="store_true",
                        help="solve every query from scratch instead of "
                             "batching into incremental contexts")
    parser.add_argument("--backend", metavar="NAME", default=None,
                        help="route solver queries through one named SAT "
                             "backend: builtin, pysat, or dimacs "
                             "(default: the direct in-process path)")
    parser.add_argument("--portfolio", metavar="NAMES", default=None,
                        help="race a comma-separated list of backends per "
                             "query and take the first definitive answer "
                             "(e.g. builtin,pysat; unavailable members are "
                             "dropped)")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="record hierarchical spans for every stage and "
                             "solver query and write a Chrome trace-event "
                             "JSON (load in Perfetto / chrome://tracing; "
                             "docs/OBSERVABILITY.md)")
    parser.add_argument("--profile", action="store_true",
                        help="with --trace: additionally print the per-run "
                             "text profile (top spans + Figure-16 time "
                             "split) to stderr")
    parser.add_argument("--show-config", action="store_true",
                        help="print the active CheckerConfig before checking")
    return parser


def _write_patches(report, path: str) -> None:
    """Concatenate every emitted patch into one unified-diff stream."""
    chunks = []
    for bug in report.bugs:
        repair = bug.repair
        if repair is None or not repair.repaired or not repair.patch:
            continue
        chunks.append(f"# {bug.location}: {repair.template} — "
                      f"{repair.description}\n{repair.patch}")
    text = "\n".join(chunks) if chunks else "# no patches emitted\n"
    if path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Run a generative fuzzing campaign through the checker "
                    "pipeline (docs/FUZZ.md).")
    _add_version(parser)
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="campaign seed: determines every generated "
                             "program, witness replay, and differential run "
                             "(default: 0)")
    parser.add_argument("--budget", type=int, default=100, metavar="N",
                        help="number of programs to generate and check "
                             "(default: 100)")
    parser.add_argument("--reduce", action="store_true",
                        help="delta-debug every unstable finding to a "
                             "minimal reproducer")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the deterministic JSONL campaign stream "
                             "to PATH")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="engine worker processes (default: sequential; "
                             "results are identical either way)")
    parser.add_argument("--no-diff", action="store_true",
                        help="skip the per-program differential optimizer "
                             "run")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip the stage-5 witness replay for "
                             "diagnostics")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="record spans across the campaign's engine "
                             "batches and write a Chrome trace-event JSON "
                             "(docs/OBSERVABILITY.md)")
    return parser


def fuzz_main(argv: Optional[List[str]] = None) -> int:
    args = build_fuzz_parser().parse_args(argv)
    from repro.fuzz import FuzzConfig, run_fuzz_campaign

    try:
        result = run_fuzz_campaign(FuzzConfig(
            seed=args.seed, budget=args.budget, reduce=args.reduce,
            out=args.out, workers=args.workers,
            differential=not args.no_diff,
            validate_witnesses=not args.no_validate,
            trace=args.trace))
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        message = "fuzz campaign interrupted; partial summary flushed"
        if args.out:
            message += f" to {args.out}"
        print(message, file=sys.stderr)
        return 130
    stats = result.stats
    print(f"fuzz campaign: seed {stats.seed}, {stats.programs} programs "
          f"({stats.minic_programs} MiniC, {stats.ir_programs} IR), "
          f"{stats.throughput:.1f} programs/s")
    print(f"  flagged {stats.flagged_programs} programs "
          f"({stats.diagnostics} diagnostics, "
          f"{stats.expectation_mismatches} expectation mismatches, "
          f"{stats.failed_units} failed units)")
    print(f"  witnesses: {stats.witnesses_confirmed} confirmed, "
          f"{stats.witnesses_unconfirmed} unconfirmed, "
          f"{stats.witnesses_inconclusive} inconclusive")
    if stats.diff_executions:
        print(f"  differential: {stats.diff_executions} executions, "
              f"{stats.diff_ub_justified} UB-justified divergences, "
              f"{stats.miscompiles} miscompiles")
    if args.reduce:
        print(f"  reduced: {stats.reduced_cases} minimal reproducers "
              f"({stats.reduction_checker_runs} checker re-runs)")
    if args.out:
        print(f"  JSONL stream: {args.out}")
    # Anomalies are findings too — a miscompile, a crashed unit, or a
    # verdict that contradicts the generator's expectation must not let
    # the campaign exit as if nothing were wrong.
    anomalies = (stats.diagnostics + stats.miscompiles + stats.failed_units
                 + stats.expectation_mismatches)
    return 1 if anomalies else 0


def build_cluster_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Check a corpus with archive-scale structural "
                    "clustering dedup (docs/CLUSTER.md).")
    _add_version(parser)
    parser.add_argument("sources", nargs="*", metavar="FILE",
                        help="C-like source files forming the corpus")
    parser.add_argument("--synthetic", type=int, default=0, metavar="N",
                        help="add N snippet-template instances to the corpus "
                             "(the benchmark's Debian-archive stand-in)")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="identifier seed for --synthetic rendering "
                             "(default: 0)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="engine worker processes for the representative "
                             "pass (default: sequential; verdicts are "
                             "identical either way)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the JSONL stream (unit records, cluster "
                             "records, run summary) to PATH")
    parser.add_argument("--cache", metavar="PATH", default=None,
                        help="warm and flush the solver-query cache at PATH")
    parser.add_argument("--timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="per-query solver timeout (default: 5.0)")
    parser.add_argument("--max-conflicts", type=int, default=50_000,
                        metavar="N", help="per-query CDCL conflict budget "
                                          "(default: 50000)")
    parser.add_argument("--no-cluster", action="store_true",
                        help="check the same corpus exhaustively instead "
                             "(A/B baseline)")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="record spans for the representative pass and "
                             "write a Chrome trace-event JSON "
                             "(docs/OBSERVABILITY.md)")
    return parser


def cluster_main(argv: Optional[List[str]] = None) -> int:
    args = build_cluster_parser().parse_args(argv)
    from repro.cluster import synthetic_cluster_corpus
    from repro.engine.engine import CheckEngine, EngineConfig, \
        EngineInterrupted

    corpus = []
    for path in args.sources:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                corpus.append((path, handle.read()))
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    if args.synthetic:
        corpus.extend(synthetic_cluster_corpus(args.synthetic, seed=args.seed))
    if not corpus:
        print("error: empty corpus (pass source files or --synthetic N)",
              file=sys.stderr)
        return 2

    config = EngineConfig(
        workers=args.workers,
        checker=CheckerConfig(solver_timeout=args.timeout,
                              max_conflicts=args.max_conflicts,
                              cluster=not args.no_cluster),
        cache_path=args.cache,
        results_path=args.out,
        trace_path=args.trace,
    )
    try:
        result = CheckEngine(config).check_corpus(corpus)
    except EngineInterrupted as exc:
        stats = exc.result.stats
        print(f"interrupted: {stats.units} of {len(corpus)} units checked; "
              "partial results flushed", file=sys.stderr)
        if args.out:
            print(f"  JSONL stream: {args.out} "
                  "(summary marked \"interrupted\": true)", file=sys.stderr)
        return 130
    stats = result.stats

    mode = "exhaustive" if args.no_cluster else "clustered"
    print(f"{mode} run: {stats.units} units, {stats.functions} functions, "
          f"{stats.diagnostics} diagnostics, {stats.wall_clock:.2f}s")
    if not args.no_cluster:
        print(f"  clusters: {stats.cluster_clusters} over "
              f"{stats.cluster_functions} functions; "
              f"{stats.cluster_propagated} propagated "
              f"({stats.cluster_confirmed} solver-confirmed, "
              f"{stats.cluster_fallbacks} fallbacks)")
    print(f"  solver: {stats.solver_queries} queries solved, "
          f"{stats.cache_hits} cache hits, {stats.timeouts} timeouts")
    if stats.failed_units:
        print(f"  failed units: {stats.failed_units}")
    if args.out:
        print(f"  JSONL stream: {args.out}")
    return 1 if stats.diagnostics or stats.failed_units else 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the always-on checking daemon: warm workers behind "
                    "a local socket, streaming JSONL results (docs/SERVE.md).")
    _add_version(parser)
    parser.add_argument("--socket", metavar="PATH",
                        default="repro-serve.sock",
                        help="Unix-domain socket to listen on "
                             "(default: repro-serve.sock)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="warm worker processes held resident "
                             "(default: 2)")
    parser.add_argument("--cache", metavar="PATH", default=None,
                        help="warm the shared solver-query cache from PATH "
                             "on start and flush it there on drain")
    parser.add_argument("--results-dir", metavar="DIR", default=None,
                        help="also write one <job>.jsonl result stream per "
                             "job under DIR")
    parser.add_argument("--timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="default per-query solver timeout "
                             "(default: 5.0; jobs may override)")
    parser.add_argument("--max-conflicts", type=int, default=50_000,
                        metavar="N", help="default per-query CDCL conflict "
                                          "budget (default: 50000)")
    parser.add_argument("--max-queue", type=int, default=4096, metavar="N",
                        help="global bound on admitted-but-undispatched "
                             "units (default: 4096)")
    parser.add_argument("--quota", type=int, default=1024, metavar="N",
                        help="per-client bound on outstanding units "
                             "(default: 1024)")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="record server-lifetime spans (one subtree per "
                             "job) and write a Chrome trace-event JSON on "
                             "drain")
    parser.add_argument("--log", metavar="PATH", default=None,
                        help="structured JSONL event log (size-rotated; "
                             "docs/OBSERVABILITY.md)")
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warn", "error"),
                        help="minimum level written to --log "
                             "(default: info)")
    parser.add_argument("--metrics-file", metavar="PATH", default=None,
                        help="atomically rewrite a Prometheus text-format "
                             "metrics snapshot at PATH for an external "
                             "scraper")
    parser.add_argument("--metrics-interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="seconds between --metrics-file rewrites "
                             "(default: 2.0)")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        metavar="MS",
                        help="log solver queries slower than MS "
                             "milliseconds as slow-query events")
    parser.add_argument("--flight-dir", metavar="DIR", default=None,
                        help="directory for flight-recorder post-mortem "
                             "dumps (default: next to --log, else next to "
                             "the socket)")
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = build_serve_parser().parse_args(argv)
    from repro.serve import ServeConfig, ServeServer

    signals = {"drain": False, "reload": False, "dump": False}

    def _on_sigterm(_signum, _frame):
        signals["drain"] = True

    def _on_sighup(_signum, _frame):
        signals["drain"] = True
        signals["reload"] = True

    def _on_sigquit(_signum, _frame):
        signals["dump"] = True                # flight dump, keep running

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
        if hasattr(signal, "SIGHUP"):
            signal.signal(signal.SIGHUP, _on_sighup)
        if hasattr(signal, "SIGQUIT"):
            signal.signal(signal.SIGQUIT, _on_sigquit)
    except ValueError:
        pass                                  # not the main thread (tests)

    while True:                               # one iteration per SIGHUP reload
        config = ServeConfig(
            socket_path=args.socket, workers=args.workers,
            checker=CheckerConfig(solver_timeout=args.timeout,
                                  max_conflicts=args.max_conflicts),
            cache_path=args.cache, results_dir=args.results_dir,
            max_queued_units=args.max_queue, client_quota=args.quota,
            trace_path=args.trace, log_path=args.log,
            log_level=args.log_level, metrics_path=args.metrics_file,
            metrics_interval=args.metrics_interval,
            slow_query_ms=args.slow_query_ms, flight_dir=args.flight_dir)
        server = ServeServer(config)
        try:
            server.start()
        except OSError as exc:
            print(f"error: cannot listen on {args.socket}: {exc}",
                  file=sys.stderr)
            return 2
        pids = " ".join(str(pid) for pid in server.worker_pids)
        print(f"serve: listening on {args.socket} "
              f"({args.workers} workers: {pids})", flush=True)
        while server.running:
            if signals["dump"]:
                signals["dump"] = False
                path = server.dump_flight(reason="SIGQUIT")
                print(f"serve: flight record dumped to {path}", flush=True)
            if signals["drain"]:
                signals["drain"] = False
                server.request_drain(reason="signal",
                                     reload=signals["reload"])
                signals["reload"] = False
            try:
                server.serve_forever(timeout=0.2)
            except KeyboardInterrupt:         # Ctrl-C drains gracefully too
                server.request_drain(reason="SIGINT")
        if not server.reload_requested:
            print("serve: drained, exiting", flush=True)
            return 0
        print("serve: drained, reloading", flush=True)


def build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit a job to a running checking daemon and stream "
                    "its JSONL records to stdout (docs/SERVE.md).")
    _add_version(parser)
    parser.add_argument("sources", nargs="*", metavar="FILE",
                        help="C-like source files forming the job")
    parser.add_argument("--stdin", action="store_true",
                        help="additionally read one translation unit from "
                             "stdin")
    parser.add_argument("--socket", metavar="PATH",
                        default="repro-serve.sock",
                        help="daemon socket to connect to "
                             "(default: repro-serve.sock)")
    parser.add_argument("--priority", type=int, default=0, metavar="N",
                        help="job priority: higher dispatches first "
                             "(default: 0)")
    parser.add_argument("--name", metavar="NAME", default="repro-submit",
                        help="client name reported to the daemon")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-query solver timeout override for this job")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="also append every streamed record to PATH "
                             "(reproduces a batch run's results file)")
    parser.add_argument("--status", action="store_true",
                        help="print the daemon's status JSON and exit")
    parser.add_argument("--drain", action="store_true",
                        help="ask the daemon to drain and shut down, "
                             "then exit")
    return parser


def submit_main(argv: Optional[List[str]] = None) -> int:
    args = build_submit_parser().parse_args(argv)
    from repro.serve import ServeClient, ServeError, SubmitRejected

    try:
        client = ServeClient(args.socket, name=args.name)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.status:
            print(json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        if args.drain:
            client.drain()
            print("drain requested", file=sys.stderr)
            return 0
        units = []
        for path in args.sources:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    units.append((path, handle.read()))
            except OSError as exc:
                print(f"error: cannot read {path}: {exc}", file=sys.stderr)
                return 2
        if args.stdin:
            units.append(("<stdin>", sys.stdin.read()))
        if not units:
            print("error: empty job (pass source files or --stdin)",
                  file=sys.stderr)
            return 2
        checker = {"solver_timeout": args.timeout} \
            if args.timeout is not None else None
        try:
            job = client.submit(units, priority=args.priority,
                                checker=checker)
        except SubmitRejected as exc:
            print(f"error: submission rejected ({exc.reason}): {exc.detail}",
                  file=sys.stderr)
            return 2
        out = open(args.out, "w", encoding="utf-8") if args.out else None
        findings = 0
        try:
            for record in job.records():
                line = json.dumps(record)
                print(line, flush=True)
                if out is not None:
                    out.write(line + "\n")
                if record.get("type") == "unit" and (
                        record.get("diagnostics") or record.get("error")):
                    findings += 1
        finally:
            if out is not None:
                out.close()
        return 1 if findings else 0
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()


def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live dashboard for a running checking daemon: queue "
                    "depth, per-worker state, warm-hit rate, latency "
                    "sparkline, recent events (docs/SERVE.md).")
    _add_version(parser)
    parser.add_argument("--socket", metavar="PATH",
                        default="repro-serve.sock",
                        help="daemon socket to connect to "
                             "(default: repro-serve.sock)")
    parser.add_argument("--interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="seconds between refreshes (default: 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit")
    parser.add_argument("--json", action="store_true",
                        help="with --once: print the raw status reply as "
                             "JSON (for scripts and CI)")
    return parser


def top_cli_main(argv: Optional[List[str]] = None) -> int:
    args = build_top_parser().parse_args(argv)
    from repro.serve.top import top_main

    return top_main(args)


def _raise_keyboard_interrupt(_signum, _frame):
    raise KeyboardInterrupt


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])           # installs its own drain handlers
    try:
        previous = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except ValueError:                        # not the main thread (tests)
        previous = None
    try:
        if argv and argv[0] == "fuzz":
            return fuzz_main(argv[1:])
        if argv and argv[0] == "cluster":
            return cluster_main(argv[1:])
        if argv and argv[0] == "submit":
            return submit_main(argv[1:])
        if argv and argv[0] == "top":
            return top_cli_main(argv[1:])
        if argv and argv[0] == "check":
            argv = argv[1:]
        return check_main(argv)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


def check_main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.stdin or args.source == "-":
        source = sys.stdin.read()
        filename = "<stdin>"
    elif args.source is None:
        print("error: pass a source file (or --stdin)", file=sys.stderr)
        return 2
    else:
        try:
            with open(args.source, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.source}: {exc}", file=sys.stderr)
            return 2
        filename = args.source

    portfolio = tuple(name.strip() for name in args.portfolio.split(",")
                      if name.strip()) if args.portfolio else ()
    if args.backend and portfolio:
        print("error: --backend and --portfolio are mutually exclusive",
              file=sys.stderr)
        return 2
    config = CheckerConfig(
        solver_timeout=args.timeout,
        max_conflicts=args.max_conflicts,
        incremental=not args.no_incremental,
        validate_witnesses=args.validate,
        witness_seed=args.seed,
        repair=args.repair,
        backend=args.backend,
        portfolio=portfolio,
        trace=args.trace is not None,
    )
    if args.show_config:
        print(config.describe())

    tracer = None
    if args.trace is not None:
        from repro.obs import Tracer, tracing

        tracer = Tracer(name="run")
    try:
        if tracer is not None:
            with tracing(tracer):
                report = check_source(source, filename=filename, config=config)
        else:
            report = check_source(source, filename=filename, config=config)
    except Exception as exc:                          # frontend rejection
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2

    if tracer is not None:
        from repro.obs import render_profile, write_chrome_trace

        write_chrome_trace(args.trace, tracer.root,
                           metrics=tracer.metrics.snapshot()["counters"])
        if args.profile:
            print(render_profile(tracer.root, tracer.metrics),
                  file=sys.stderr)

    if args.json:
        from repro.engine.sink import report_to_dict

        print(json.dumps(report_to_dict(filename, report), indent=2))
    else:
        print(report.describe())

    if args.diff:
        from repro.api import compile_source
        from repro.exec.diff import run_differential

        # The checker inlines the module it analyzes; the differential
        # campaign runs on a fresh compile of the same source.  With
        # --json the table goes to stderr so stdout stays one parseable
        # record.
        module = compile_source(source, filename=filename)
        diff = run_differential([(filename, module)], seed=args.seed)
        stream = sys.stderr if args.json else sys.stdout
        print(file=stream)
        print(diff.render(), file=stream)
        for case in diff.miscompiles:
            print(case.describe(), file=stream)

    if args.repair and args.patch_out is not None:
        _write_patches(report, args.patch_out)

    return 1 if report.bugs else 0


if __name__ == "__main__":
    sys.exit(main())
