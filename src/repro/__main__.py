"""Command-line interface: ``python -m repro [options] file.c``.

The smallest useful slice of ``stack-build``: check one C-like source file
for optimization-unstable code and print the report.  ``--json`` emits the
same record the engine's JSONL sink streams (one ``unit`` object, see
docs/ENGINE.md), so shell pipelines and the corpus engine share a format.
``--validate`` enables the stage-5 concrete witness replay (docs/EXEC.md);
``--repair`` enables the stage-6 solver-verified auto-repair and
``--patch-out`` writes the emitted unified IR diffs to a file (or ``-``
for stdout).  ``--seed`` feeds the witness/repair replays and ``--diff``
(the seeded differential optimizer run), so validation runs reproduce bit
for bit.

Exit status: 0 — no unstable code, 1 — warnings reported, 2 — the input
could not be compiled or read.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api import check_source
from repro.core.checker import CheckerConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="STACK reproduction: find optimization-unstable code "
                    "in a C-like source file.")
    parser.add_argument("source", help="path to a C-like source file, or '-' "
                                       "to read from stdin")
    parser.add_argument("--json", action="store_true",
                        help="emit the engine's JSONL unit record instead of "
                             "the human-readable report")
    parser.add_argument("--validate", action="store_true",
                        help="replay a concrete witness for every diagnostic "
                             "through the IR interpreter (stage 5)")
    parser.add_argument("--repair", action="store_true",
                        help="propose and verify patches for every "
                             "diagnostic (stage 6: template rewrites behind "
                             "the three-gate verifier)")
    parser.add_argument("--patch-out", metavar="PATH", default=None,
                        help="with --repair: write the emitted unified IR "
                             "diffs to PATH ('-' for stdout)")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="seed for the witness/repair replay environment "
                             "and the --diff differential runner "
                             "(default: 0)")
    parser.add_argument("--diff", action="store_true",
                        help="additionally run the seeded differential "
                             "optimizer campaign for this file against every "
                             "compiler profile and print the table")
    parser.add_argument("--timeout", type=float, default=5.0, metavar="SECONDS",
                        help="per-query solver timeout (default: 5.0)")
    parser.add_argument("--max-conflicts", type=int, default=50_000,
                        metavar="N", help="per-query CDCL conflict budget "
                                          "(default: 50000)")
    parser.add_argument("--no-incremental", action="store_true",
                        help="solve every query from scratch instead of "
                             "batching into incremental contexts")
    parser.add_argument("--show-config", action="store_true",
                        help="print the active CheckerConfig before checking")
    return parser


def _write_patches(report, path: str) -> None:
    """Concatenate every emitted patch into one unified-diff stream."""
    chunks = []
    for bug in report.bugs:
        repair = bug.repair
        if repair is None or not repair.repaired or not repair.patch:
            continue
        chunks.append(f"# {bug.location}: {repair.template} — "
                      f"{repair.description}\n{repair.patch}")
    text = "\n".join(chunks) if chunks else "# no patches emitted\n"
    if path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.source == "-":
        source = sys.stdin.read()
        filename = "<stdin>"
    else:
        try:
            with open(args.source, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.source}: {exc}", file=sys.stderr)
            return 2
        filename = args.source

    config = CheckerConfig(
        solver_timeout=args.timeout,
        max_conflicts=args.max_conflicts,
        incremental=not args.no_incremental,
        validate_witnesses=args.validate,
        witness_seed=args.seed,
        repair=args.repair,
    )
    if args.show_config:
        print(config.describe())

    try:
        report = check_source(source, filename=filename, config=config)
    except Exception as exc:                          # frontend rejection
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2

    if args.json:
        from repro.engine.sink import report_to_dict

        print(json.dumps(report_to_dict(filename, report), indent=2))
    else:
        print(report.describe())

    if args.diff:
        from repro.api import compile_source
        from repro.exec.diff import run_differential

        # The checker inlines the module it analyzes; the differential
        # campaign runs on a fresh compile of the same source.  With
        # --json the table goes to stderr so stdout stays one parseable
        # record.
        module = compile_source(source, filename=filename)
        diff = run_differential([(filename, module)], seed=args.seed)
        stream = sys.stderr if args.json else sys.stdout
        print(file=stream)
        print(diff.render(), file=stream)
        for case in diff.miscompiles:
            print(case.describe(), file=stream)

    if args.repair and args.patch_out is not None:
        _write_patches(report, args.patch_out)

    return 1 if report.bugs else 0


if __name__ == "__main__":
    sys.exit(main())
