"""Frontend error types and diagnostic formatting."""

from __future__ import annotations

from typing import Optional

from repro.ir.source import SourceLocation


class FrontendError(Exception):
    """Base class for all frontend errors."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.message = message
        self.location = location if location is not None else SourceLocation()
        super().__init__(self.format())

    def format(self) -> str:
        if self.location.is_known():
            return f"{self.location}: {self.message}"
        return self.message


class LexError(FrontendError):
    """Raised for malformed tokens (bad characters, unterminated literals)."""


class ParseError(FrontendError):
    """Raised when the token stream does not match the grammar."""


class SemaError(FrontendError):
    """Raised for type errors and unresolved symbols."""
