"""AST node definitions for MiniC.

Nodes are plain dataclasses.  After semantic analysis every expression node
has its ``ctype`` field filled in, and implicit conversions are made explicit
by inserted :class:`CastExpr` nodes, so lowering never needs to re-derive C
conversion rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.frontend.ctypes import CType
from repro.ir.source import Origin, SourceLocation, USER_ORIGIN


@dataclass
class Node:
    """Base class for all AST nodes."""

    location: SourceLocation = field(default_factory=SourceLocation, kw_only=True)
    origin: Origin = field(default=USER_ORIGIN, kw_only=True)


# -- expressions -------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions; ``ctype`` is set by sema."""

    ctype: Optional[CType] = field(default=None, kw_only=True)


@dataclass
class IntLiteral(Expr):
    value: int = 0
    suffix: str = ""


@dataclass
class CharLiteral(Expr):
    value: int = 0


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class UnaryExpr(Expr):
    """Unary operators: - ~ ! * & ++ -- (prefix and postfix)."""

    op: str = ""
    operand: Expr = None
    postfix: bool = False


@dataclass
class BinaryExpr(Expr):
    """Binary operators, including && and || (short-circuiting)."""

    op: str = ""
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class AssignExpr(Expr):
    """Assignment, possibly compound (op is '' for plain '=')."""

    op: str = ""
    target: Expr = None
    value: Expr = None


@dataclass
class ConditionalExpr(Expr):
    """The ternary ?: operator."""

    condition: Expr = None
    on_true: Expr = None
    on_false: Expr = None


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class IndexExpr(Expr):
    """Array subscription a[i]."""

    base: Expr = None
    index: Expr = None


@dataclass
class MemberExpr(Expr):
    """Member access: ``base.member`` or ``base->member`` (arrow=True)."""

    base: Expr = None
    member: str = ""
    arrow: bool = False
    field_offset: int = 0       # filled by sema


@dataclass
class CastExpr(Expr):
    """Explicit or sema-inserted implicit cast."""

    target_type: CType = None
    operand: Expr = None
    implicit: bool = False


@dataclass
class SizeofExpr(Expr):
    queried_type: Optional[CType] = None
    operand: Optional[Expr] = None


# -- statements ----------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    """A local variable declaration (one declarator)."""

    name: str = ""
    decl_type: CType = None
    initializer: Optional[Expr] = None


@dataclass
class CompoundStmt(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    condition: Expr = None
    then_branch: Stmt = None
    else_branch: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    condition: Expr = None
    body: Stmt = None


@dataclass
class DoWhileStmt(Stmt):
    condition: Expr = None
    body: Stmt = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class GotoStmt(Stmt):
    label: str = ""


@dataclass
class LabelStmt(Stmt):
    label: str = ""
    statement: Optional[Stmt] = None


# -- declarations ---------------------------------------------------------------------


@dataclass
class ParamDecl(Node):
    name: str = ""
    decl_type: CType = None


@dataclass
class FunctionDecl(Node):
    """A function definition (body is None for prototypes)."""

    name: str = ""
    return_type: CType = None
    params: List[ParamDecl] = field(default_factory=list)
    body: Optional[CompoundStmt] = None
    is_static: bool = False
    is_inline: bool = False


@dataclass
class StructDecl(Node):
    name: str = ""
    members: List[Tuple[str, CType]] = field(default_factory=list)


@dataclass
class GlobalVarDecl(Node):
    name: str = ""
    decl_type: CType = None
    initializer: Optional[Expr] = None


@dataclass
class TypedefDecl(Node):
    name: str = ""
    aliased: CType = None


@dataclass
class TranslationUnit(Node):
    """A whole source file after parsing."""

    declarations: List[Node] = field(default_factory=list)
    filename: str = "<input>"

    def functions(self) -> List[FunctionDecl]:
        return [d for d in self.declarations
                if isinstance(d, FunctionDecl) and d.body is not None]

    def function(self, name: str) -> Optional[FunctionDecl]:
        for decl in self.declarations:
            if isinstance(decl, FunctionDecl) and decl.name == name and decl.body:
                return decl
        return None
