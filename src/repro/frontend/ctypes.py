"""C-level type representations for the frontend.

These types carry C semantics (signedness, struct layout, typedef names) and
are mapped onto the IR type system by :mod:`repro.lower`.  The data model is
LP64: char=8, short=16, int=32, long=long long=64, pointers=64.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class CType:
    """Base class for all C types used by sema."""

    def is_integer(self) -> bool:
        return isinstance(self, CInt)

    def is_pointer(self) -> bool:
        return isinstance(self, CPointer)

    def is_array(self) -> bool:
        return isinstance(self, CArray)

    def is_struct(self) -> bool:
        return isinstance(self, CStruct)

    def is_void(self) -> bool:
        return isinstance(self, CVoid)

    def is_scalar(self) -> bool:
        return self.is_integer() or self.is_pointer()

    @property
    def size_bytes(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class CVoid(CType):
    """The void type."""

    @property
    def size_bytes(self) -> int:
        return 1

    def __repr__(self) -> str:
        return "void"


@dataclass(frozen=True)
class CInt(CType):
    """A sized integer type with C signedness and a display name."""

    width: int
    signed: bool = True
    name: str = ""

    @property
    def size_bytes(self) -> int:
        return max(1, self.width // 8)

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.width - 1)) - 1 if self.signed else (1 << self.width) - 1

    def __repr__(self) -> str:
        if self.name:
            return self.name
        return f"{'' if self.signed else 'unsigned '}int{self.width}"


@dataclass(frozen=True)
class CPointer(CType):
    """Pointer to another C type."""

    target: CType

    @property
    def size_bytes(self) -> int:
        return 8

    def __repr__(self) -> str:
        return f"{self.target!r}*"


@dataclass(frozen=True)
class CArray(CType):
    """Fixed-size array (the element count may be unknown: -1)."""

    element: CType
    count: int

    @property
    def size_bytes(self) -> int:
        return self.element.size_bytes * max(0, self.count)

    def __repr__(self) -> str:
        return f"{self.element!r}[{self.count if self.count >= 0 else ''}]"


@dataclass(frozen=True)
class CStructField:
    """A single struct member with its byte offset."""

    name: str
    type: CType
    offset: int


@dataclass(frozen=True)
class CStruct(CType):
    """A struct type; fields are laid out without padding beyond alignment to size."""

    name: str
    fields: Tuple[CStructField, ...] = ()
    complete: bool = True

    @property
    def size_bytes(self) -> int:
        if not self.fields:
            return 0
        last = self.fields[-1]
        return last.offset + last.type.size_bytes

    def field(self, name: str) -> Optional[CStructField]:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def __repr__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class CFunction(CType):
    """Function type (return type + parameters)."""

    return_type: CType
    params: Tuple[CType, ...] = ()
    variadic: bool = False

    @property
    def size_bytes(self) -> int:
        return 8

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.params)
        return f"{self.return_type!r}({params})"


def layout_struct(name: str, members: List[Tuple[str, CType]]) -> CStruct:
    """Compute field offsets for a struct (natural alignment, no bit-fields)."""
    fields: List[CStructField] = []
    offset = 0
    for member_name, member_type in members:
        align = min(8, max(1, member_type.size_bytes))
        if offset % align:
            offset += align - offset % align
        fields.append(CStructField(member_name, member_type, offset))
        offset += member_type.size_bytes
    return CStruct(name, tuple(fields))


# -- builtin type table ----------------------------------------------------------

CHAR = CInt(8, signed=True, name="char")
UCHAR = CInt(8, signed=False, name="unsigned char")
SHORT = CInt(16, signed=True, name="short")
USHORT = CInt(16, signed=False, name="unsigned short")
INT = CInt(32, signed=True, name="int")
UINT = CInt(32, signed=False, name="unsigned int")
LONG = CInt(64, signed=True, name="long")
ULONG = CInt(64, signed=False, name="unsigned long")
BOOL = CInt(1, signed=False, name="_Bool")
VOID = CVoid()

#: typedef name -> type, for the common fixed-width and POSIX-ish typedefs the
#: paper's code snippets use.
BUILTIN_TYPEDEFS: Dict[str, CType] = {
    "int8_t": CInt(8, True, "int8_t"),
    "uint8_t": CInt(8, False, "uint8_t"),
    "int16_t": CInt(16, True, "int16_t"),
    "uint16_t": CInt(16, False, "uint16_t"),
    "int32_t": CInt(32, True, "int32_t"),
    "uint32_t": CInt(32, False, "uint32_t"),
    "int64_t": CInt(64, True, "int64_t"),
    "uint64_t": CInt(64, False, "uint64_t"),
    "size_t": CInt(64, False, "size_t"),
    "ssize_t": CInt(64, True, "ssize_t"),
    "ptrdiff_t": CInt(64, True, "ptrdiff_t"),
    "intptr_t": CInt(64, True, "intptr_t"),
    "uintptr_t": CInt(64, False, "uintptr_t"),
    "off_t": CInt(64, True, "off_t"),
    "bool": BOOL,
}
