"""Tokenizer for MiniC.

Produces a stream of :class:`Token` objects with source locations and origin
metadata (the preprocessor re-tags tokens that come from macro expansion).
"""

from __future__ import annotations

import enum
import string
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.frontend.errors import LexError
from repro.ir.source import Origin, SourceLocation, USER_ORIGIN


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "identifier"
    KEYWORD = "keyword"
    INT_LITERAL = "integer"
    CHAR_LITERAL = "char"
    STRING_LITERAL = "string"
    PUNCT = "punctuator"
    EOF = "eof"


KEYWORDS = {
    "void", "char", "short", "int", "long", "signed", "unsigned",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "struct", "union", "enum", "sizeof", "typedef", "static", "extern",
    "const", "volatile", "goto", "switch", "case", "default", "inline",
    "_Bool",
}

# Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":", "#",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    location: SourceLocation = field(default_factory=SourceLocation)
    origin: Origin = USER_ORIGIN
    value: int = 0                    # numeric value for INT/CHAR literals
    suffix: str = ""                  # integer literal suffix (u, l, ul, ll, ...)

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *names: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in names

    def is_ident(self, name: Optional[str] = None) -> bool:
        if self.kind is not TokenKind.IDENT:
            return False
        return name is None or self.text == name

    def with_origin(self, origin: Origin) -> "Token":
        return replace(self, origin=origin)

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"


_IDENT_START = set(string.ascii_letters + "_")
_IDENT_CONT = set(string.ascii_letters + string.digits + "_")
_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


class Lexer:
    """Converts MiniC source text into tokens."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- helpers ---------------------------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    # -- skipping ---------------------------------------------------------------

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", self._loc())
            else:
                return

    # -- scanning ----------------------------------------------------------------

    def tokens(self) -> List[Token]:
        """Tokenize the whole input, ending with an EOF token."""
        out: List[Token] = []
        while True:
            token = self.next_token()
            out.append(token)
            if token.kind is TokenKind.EOF:
                return out

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        loc = self._loc()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", loc)

        ch = self._peek()
        if ch in _IDENT_START:
            return self._lex_identifier(loc)
        if ch.isdigit():
            return self._lex_number(loc)
        if ch == "'":
            return self._lex_char(loc)
        if ch == '"':
            return self._lex_string(loc)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    def _lex_identifier(self, loc: SourceLocation) -> Token:
        start = self.pos
        while self._peek() in _IDENT_CONT:
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, loc)

    def _lex_number(self, loc: SourceLocation) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in string.hexdigits:
                self._advance()
            digits = self.source[start:self.pos]
            value = int(digits, 16)
        else:
            while self._peek().isdigit():
                self._advance()
            digits = self.source[start:self.pos]
            value = int(digits, 10)
        suffix_start = self.pos
        while self._peek() and self._peek() in "uUlL":
            self._advance()
        suffix = self.source[suffix_start:self.pos].lower()
        return Token(TokenKind.INT_LITERAL, self.source[start:self.pos], loc,
                     value=value, suffix=suffix)

    def _lex_char(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            self._advance()
            esc = self._advance()
            if esc not in _ESCAPES:
                raise LexError(f"unknown escape sequence \\{esc}", loc)
            value = _ESCAPES[esc]
        else:
            value = ord(self._advance())
        if self._peek() != "'":
            raise LexError("unterminated character literal", loc)
        self._advance()
        return Token(TokenKind.CHAR_LITERAL, f"'{chr(value)}'", loc, value=value)

    def _lex_string(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", loc)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                esc = self._advance()
                chars.append(chr(_ESCAPES.get(esc, ord(esc))))
            else:
                chars.append(ch)
        return Token(TokenKind.STRING_LITERAL, "".join(chars), loc)


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Convenience wrapper: tokenize ``source`` including the EOF token."""
    return Lexer(source, filename).tokens()
