"""A small preprocessor: #define macros with origin tracking.

STACK must ignore unstable code that the programmer did not write directly —
code produced by macro expansion is the main source of false warnings the
paper calls out (§4.2).  The preprocessor therefore tags every token produced
by expanding a macro with a MACRO origin naming the macro; the lowering pass
propagates the tag onto instructions, and the report stage filters on it.

Supported directives:

* ``#define NAME replacement`` — object-like macros,
* ``#define NAME(a, b) replacement`` — function-like macros,
* ``#undef NAME``,
* ``#include ...`` and conditional directives are ignored (the corpora are
  self-contained translation units).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.frontend.errors import LexError
from repro.frontend.lexer import Lexer, Token, TokenKind
from repro.ir.source import macro_origin


@dataclass
class MacroDefinition:
    """A single #define."""

    name: str
    params: Optional[List[str]]       # None for object-like macros
    body: List[Token]

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


class Preprocessor:
    """Expands macros in a token stream before parsing."""

    MAX_EXPANSION_DEPTH = 32

    def __init__(self) -> None:
        self.macros: Dict[str, MacroDefinition] = {}

    # -- public API --------------------------------------------------------------

    def preprocess(self, source: str, filename: str = "<input>") -> List[Token]:
        """Tokenize ``source``, process directives, and expand macros."""
        lines = source.split("\n")
        kept_lines: List[str] = []
        for line_number, line in enumerate(lines, start=1):
            stripped = line.lstrip()
            if stripped.startswith("#"):
                self._handle_directive(stripped, filename, line_number)
                kept_lines.append("")  # keep line numbers aligned
            else:
                kept_lines.append(line)
        tokens = Lexer("\n".join(kept_lines), filename).tokens()
        return self._expand(tokens, depth=0, banned=frozenset())

    def define(self, name: str, replacement: str,
               params: Optional[Sequence[str]] = None) -> None:
        """Programmatically define a macro (used by tests and the corpus)."""
        body = Lexer(replacement, f"<macro {name}>").tokens()[:-1]
        self.macros[name] = MacroDefinition(
            name, list(params) if params is not None else None, body)

    # -- directives ----------------------------------------------------------------

    def _handle_directive(self, line: str, filename: str, line_number: int) -> None:
        text = line[1:].strip()
        if text.startswith("define"):
            self._handle_define(text[len("define"):].strip(), filename, line_number)
        elif text.startswith("undef"):
            name = text[len("undef"):].strip()
            self.macros.pop(name, None)
        # #include, #if, #ifdef, #endif, #pragma ... are ignored.

    def _handle_define(self, text: str, filename: str, line_number: int) -> None:
        tokens = Lexer(text, filename).tokens()[:-1]
        if not tokens or tokens[0].kind is not TokenKind.IDENT:
            raise LexError(f"malformed #define at {filename}:{line_number}")
        name = tokens[0].text
        rest = tokens[1:]
        params: Optional[List[str]] = None
        # Function-like only when '(' immediately follows the name in the text.
        name_end = text.index(name) + len(name)
        if rest and rest[0].is_punct("(") and text[name_end:name_end + 1] == "(":
            params = []
            index = 1
            while index < len(rest) and not rest[index].is_punct(")"):
                if rest[index].kind is TokenKind.IDENT:
                    params.append(rest[index].text)
                index += 1
            body = rest[index + 1:]
        else:
            body = rest
        self.macros[name] = MacroDefinition(name, params, body)

    # -- expansion ----------------------------------------------------------------

    def _expand(self, tokens: List[Token], depth: int,
                banned: frozenset) -> List[Token]:
        if depth > self.MAX_EXPANSION_DEPTH:
            raise LexError("macro expansion too deep (recursive macro?)")
        out: List[Token] = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            macro = self.macros.get(token.text) if token.kind is TokenKind.IDENT else None
            if macro is None or macro.name in banned:
                out.append(token)
                index += 1
                continue
            if macro.is_function_like:
                args, consumed = self._collect_arguments(tokens, index + 1)
                if args is None:
                    out.append(token)
                    index += 1
                    continue
                expansion = self._substitute(macro, args)
                index += 1 + consumed
            else:
                expansion = list(macro.body)
                index += 1
            tagged = [t.with_origin(macro_origin(macro.name)) for t in expansion]
            out.extend(self._expand(tagged, depth + 1, banned | {macro.name}))
        return out

    def _collect_arguments(
        self, tokens: List[Token], start: int,
    ) -> Tuple[Optional[List[List[Token]]], int]:
        """Collect macro call arguments; returns (args, tokens consumed)."""
        if start >= len(tokens) or not tokens[start].is_punct("("):
            return None, 0
        args: List[List[Token]] = [[]]
        depth = 0
        index = start
        while index < len(tokens):
            token = tokens[index]
            if token.is_punct("("):
                depth += 1
                if depth > 1:
                    args[-1].append(token)
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    return args, index - start + 1
                args[-1].append(token)
            elif token.is_punct(",") and depth == 1:
                args.append([])
            else:
                args[-1].append(token)
            index += 1
        raise LexError("unterminated macro argument list")

    def _substitute(self, macro: MacroDefinition,
                    args: List[List[Token]]) -> List[Token]:
        mapping: Dict[str, List[Token]] = {}
        params = macro.params or []
        for i, param in enumerate(params):
            mapping[param] = args[i] if i < len(args) else []
        out: List[Token] = []
        for token in macro.body:
            if token.kind is TokenKind.IDENT and token.text in mapping:
                out.extend(mapping[token.text])
            else:
                out.append(token)
        return out
