"""MiniC frontend: lexer, preprocessor, parser, type system, and sema.

The paper's first stage uses clang to translate C into LLVM IR (§4.2).  This
package is the reproduction's equivalent: it accepts a C-like language
("MiniC") that covers the constructs the paper's examples and corpora use —
sized integer types, pointers, arrays, structs, the full expression grammar,
control flow, function-like macros — and produces a typed AST that
:mod:`repro.lower` turns into IR.

Pipeline::

    source text
      → Preprocessor (macro expansion, origin tracking)
      → Lexer (tokens)
      → Parser (AST)
      → SemanticAnalyzer (types, implicit conversions, symbol resolution)
      → repro.lower.lower_translation_unit (IR)
"""

from repro.frontend.errors import FrontendError, ParseError, SemaError
from repro.frontend.lexer import Lexer, Token, TokenKind
from repro.frontend.parser import Parser, parse
from repro.frontend.preprocessor import Preprocessor
from repro.frontend.sema import SemanticAnalyzer, analyze
from repro.frontend.ctypes import (
    CArray,
    CFunction,
    CInt,
    CPointer,
    CStruct,
    CType,
    CVoid,
)

__all__ = [
    "CArray", "CFunction", "CInt", "CPointer", "CStruct", "CType", "CVoid",
    "FrontendError", "Lexer", "ParseError", "Parser", "Preprocessor",
    "SemaError", "SemanticAnalyzer", "Token", "TokenKind", "analyze", "parse",
]
