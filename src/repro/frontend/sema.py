"""Semantic analysis: symbol resolution, type checking, implicit conversions.

Sema walks the parsed AST, assigns a :class:`~repro.frontend.ctypes.CType` to
every expression, inserts explicit :class:`CastExpr` nodes for the implicit
conversions C performs (integer promotion and the usual arithmetic
conversions), and records the struct field offsets used by member accesses.
After sema the AST is fully typed, so lowering is a mechanical translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.frontend.ast_nodes import (
    AssignExpr,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CharLiteral,
    CompoundStmt,
    ConditionalExpr,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDecl,
    GlobalVarDecl,
    GotoStmt,
    Identifier,
    IfStmt,
    IndexExpr,
    IntLiteral,
    LabelStmt,
    MemberExpr,
    ParamDecl,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    StringLiteral,
    StructDecl,
    TranslationUnit,
    TypedefDecl,
    UnaryExpr,
    WhileStmt,
)
from repro.frontend.ctypes import (
    BOOL,
    CArray,
    CFunction,
    CHAR,
    CInt,
    CPointer,
    CStruct,
    CType,
    CVoid,
    INT,
    LONG,
    UINT,
    ULONG,
    VOID,
)
from repro.frontend.errors import SemaError

#: Return types the checker assumes for well-known library functions.
KNOWN_FUNCTIONS: Dict[str, CFunction] = {
    "abs": CFunction(INT, (INT,)),
    "labs": CFunction(LONG, (LONG,)),
    "malloc": CFunction(CPointer(VOID), (ULONG,)),
    "calloc": CFunction(CPointer(VOID), (ULONG, ULONG)),
    "realloc": CFunction(CPointer(VOID), (CPointer(VOID), ULONG)),
    "free": CFunction(VOID, (CPointer(VOID),)),
    "memcpy": CFunction(CPointer(VOID), (CPointer(VOID), CPointer(VOID), ULONG)),
    "memmove": CFunction(CPointer(VOID), (CPointer(VOID), CPointer(VOID), ULONG)),
    "memset": CFunction(CPointer(VOID), (CPointer(VOID), INT, ULONG)),
    "strchr": CFunction(CPointer(CHAR), (CPointer(CHAR), INT)),
    "strlen": CFunction(ULONG, (CPointer(CHAR),)),
    "strcmp": CFunction(INT, (CPointer(CHAR), CPointer(CHAR))),
    "strcpy": CFunction(CPointer(CHAR), (CPointer(CHAR), CPointer(CHAR))),
    "simple_strtoul": CFunction(ULONG, (CPointer(CHAR), CPointer(CPointer(CHAR)), INT)),
    "printf": CFunction(INT, (CPointer(CHAR),), variadic=True),
    "ereport": CFunction(VOID, (INT,), variadic=True),
}


@dataclass
class Symbol:
    """A named entity visible in some scope."""

    name: str
    ctype: CType
    kind: str = "variable"        # "variable", "parameter", "function", "global"


class Scope:
    """A lexical scope chaining to its parent."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.symbols: Dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> None:
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Type checks a translation unit in place."""

    def __init__(self) -> None:
        self.globals = Scope()
        self.structs: Dict[str, CStruct] = {}
        self.current_function: Optional[FunctionDecl] = None
        self.errors: List[SemaError] = []
        for name, ftype in KNOWN_FUNCTIONS.items():
            self.globals.define(Symbol(name, ftype, kind="function"))

    # -- entry point ------------------------------------------------------------

    def analyze(self, unit: TranslationUnit) -> TranslationUnit:
        for decl in unit.declarations:
            if isinstance(decl, StructDecl):
                from repro.frontend.ctypes import layout_struct
                self.structs[decl.name] = layout_struct(decl.name, decl.members)
            elif isinstance(decl, TypedefDecl):
                pass
            elif isinstance(decl, GlobalVarDecl):
                self.globals.define(Symbol(decl.name, decl.decl_type, kind="global"))
                if decl.initializer is not None:
                    self._check_expr(decl.initializer, self.globals)
            elif isinstance(decl, FunctionDecl):
                ftype = CFunction(decl.return_type,
                                  tuple(p.decl_type for p in decl.params))
                self.globals.define(Symbol(decl.name, ftype, kind="function"))
        for decl in unit.declarations:
            if isinstance(decl, FunctionDecl) and decl.body is not None:
                self._check_function(decl)
        if self.errors:
            raise self.errors[0]
        return unit

    # -- functions ----------------------------------------------------------------

    def _check_function(self, decl: FunctionDecl) -> None:
        self.current_function = decl
        scope = Scope(self.globals)
        for param in decl.params:
            scope.define(Symbol(param.name, param.decl_type, kind="parameter"))
        self._check_stmt(decl.body, scope)
        self.current_function = None

    # -- statements ------------------------------------------------------------------

    def _check_stmt(self, stmt: Stmt, scope: Scope) -> None:
        if isinstance(stmt, CompoundStmt):
            inner = Scope(scope)
            for child in stmt.statements:
                self._check_stmt(child, inner)
        elif isinstance(stmt, DeclStmt):
            if stmt.initializer is not None:
                self._check_expr(stmt.initializer, scope)
                stmt.initializer = self._convert(stmt.initializer, stmt.decl_type)
            scope.define(Symbol(stmt.name, stmt.decl_type))
        elif isinstance(stmt, ExprStmt):
            if stmt.expr is not None:
                self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, IfStmt):
            self._check_condition(stmt.condition, scope)
            self._check_stmt(stmt.then_branch, scope)
            if stmt.else_branch is not None:
                self._check_stmt(stmt.else_branch, scope)
        elif isinstance(stmt, WhileStmt):
            self._check_condition(stmt.condition, scope)
            self._check_stmt(stmt.body, scope)
        elif isinstance(stmt, DoWhileStmt):
            self._check_stmt(stmt.body, scope)
            self._check_condition(stmt.condition, scope)
        elif isinstance(stmt, ForStmt):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.condition is not None:
                self._check_condition(stmt.condition, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._check_stmt(stmt.body, inner)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
                if self.current_function is not None and \
                        not self.current_function.return_type.is_void():
                    stmt.value = self._convert(
                        stmt.value, self.current_function.return_type)
        elif isinstance(stmt, (BreakStmt, ContinueStmt, GotoStmt)):
            pass
        elif isinstance(stmt, LabelStmt):
            if stmt.statement is not None:
                self._check_stmt(stmt.statement, scope)
        else:
            self._error(f"unsupported statement {type(stmt).__name__}", stmt)

    def _check_condition(self, expr: Expr, scope: Scope) -> None:
        self._check_expr(expr, scope)

    # -- expressions --------------------------------------------------------------------

    def _check_expr(self, expr: Expr, scope: Scope) -> CType:
        ctype = self._infer(expr, scope)
        expr.ctype = ctype
        return ctype

    def _infer(self, expr: Expr, scope: Scope) -> CType:
        if isinstance(expr, IntLiteral):
            if "u" in expr.suffix and "l" in expr.suffix:
                return ULONG
            if "l" in expr.suffix or expr.value > 2 ** 31 - 1:
                return ULONG if "u" in expr.suffix else LONG
            if "u" in expr.suffix:
                return UINT
            return INT
        if isinstance(expr, CharLiteral):
            return INT
        if isinstance(expr, StringLiteral):
            return CPointer(CHAR)
        if isinstance(expr, Identifier):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                self._error(f"use of undeclared identifier {expr.name!r}", expr)
                return INT
            return symbol.ctype
        if isinstance(expr, UnaryExpr):
            return self._infer_unary(expr, scope)
        if isinstance(expr, BinaryExpr):
            return self._infer_binary(expr, scope)
        if isinstance(expr, AssignExpr):
            target_type = self._check_expr(expr.target, scope)
            self._check_expr(expr.value, scope)
            if not isinstance(expr.target, (Identifier, UnaryExpr, IndexExpr, MemberExpr)):
                self._error("assignment target is not an lvalue", expr)
            if target_type.is_scalar():
                expr.value = self._convert(expr.value, target_type)
            return target_type
        if isinstance(expr, ConditionalExpr):
            self._check_expr(expr.condition, scope)
            true_type = self._check_expr(expr.on_true, scope)
            false_type = self._check_expr(expr.on_false, scope)
            if true_type.is_integer() and false_type.is_integer():
                common = self._usual_arithmetic(true_type, false_type)
                expr.on_true = self._convert(expr.on_true, common)
                expr.on_false = self._convert(expr.on_false, common)
                return common
            return true_type
        if isinstance(expr, CallExpr):
            return self._infer_call(expr, scope)
        if isinstance(expr, IndexExpr):
            base_type = self._check_expr(expr.base, scope)
            self._check_expr(expr.index, scope)
            if isinstance(base_type, CArray):
                return base_type.element
            if isinstance(base_type, CPointer):
                return base_type.target
            self._error("subscripted value is not an array or pointer", expr)
            return INT
        if isinstance(expr, MemberExpr):
            return self._infer_member(expr, scope)
        if isinstance(expr, CastExpr):
            self._check_expr(expr.operand, scope)
            return expr.target_type
        if isinstance(expr, SizeofExpr):
            if expr.operand is not None:
                self._check_expr(expr.operand, scope)
            return ULONG
        self._error(f"unsupported expression {type(expr).__name__}", expr)
        return INT

    def _infer_unary(self, expr: UnaryExpr, scope: Scope) -> CType:
        operand_type = self._check_expr(expr.operand, scope)
        if expr.op in ("-", "~"):
            promoted = self._promote(operand_type)
            expr.operand = self._convert(expr.operand, promoted)
            return promoted
        if expr.op == "!":
            return INT
        if expr.op == "*":
            if isinstance(operand_type, CPointer):
                return operand_type.target
            if isinstance(operand_type, CArray):
                return operand_type.element
            self._error("cannot dereference a non-pointer", expr)
            return INT
        if expr.op == "&":
            return CPointer(operand_type)
        if expr.op in ("++", "--"):
            return operand_type
        self._error(f"unsupported unary operator {expr.op!r}", expr)
        return operand_type

    def _infer_binary(self, expr: BinaryExpr, scope: Scope) -> CType:
        lhs_type = self._check_expr(expr.lhs, scope)
        rhs_type = self._check_expr(expr.rhs, scope)
        op = expr.op
        if op in ("&&", "||"):
            return INT
        if op == ",":
            return rhs_type
        lhs_is_ptr = lhs_type.is_pointer() or lhs_type.is_array()
        rhs_is_ptr = rhs_type.is_pointer() or rhs_type.is_array()
        if op in ("+", "-") and (lhs_is_ptr or rhs_is_ptr):
            if lhs_is_ptr and rhs_is_ptr:
                if op == "-":
                    return LONG  # pointer difference
                self._error("cannot add two pointers", expr)
                return lhs_type
            return lhs_type if lhs_is_ptr else rhs_type
        if op in ("==", "!=", "<", ">", "<=", ">=") and (lhs_is_ptr or rhs_is_ptr):
            return INT
        if op in ("<<", ">>"):
            promoted = self._promote(lhs_type if lhs_type.is_integer() else INT)
            expr.lhs = self._convert(expr.lhs, promoted)
            rhs_promoted = self._promote(rhs_type if rhs_type.is_integer() else INT)
            expr.rhs = self._convert(expr.rhs, rhs_promoted)
            return promoted
        if lhs_type.is_integer() and rhs_type.is_integer():
            common = self._usual_arithmetic(lhs_type, rhs_type)
            expr.lhs = self._convert(expr.lhs, common)
            expr.rhs = self._convert(expr.rhs, common)
            if op in ("==", "!=", "<", ">", "<=", ">="):
                return INT
            return common
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return INT
        return lhs_type if lhs_type.is_scalar() else INT

    def _infer_call(self, expr: CallExpr, scope: Scope) -> CType:
        symbol = scope.lookup(expr.callee)
        for arg in expr.args:
            self._check_expr(arg, scope)
        if symbol is None or not isinstance(symbol.ctype, CFunction):
            # Unknown functions default to returning int (like implicit decls).
            return INT
        ftype = symbol.ctype
        for index, param_type in enumerate(ftype.params):
            if index < len(expr.args) and param_type.is_scalar():
                expr.args[index] = self._convert(expr.args[index], param_type)
        return ftype.return_type

    def _infer_member(self, expr: MemberExpr, scope: Scope) -> CType:
        base_type = self._check_expr(expr.base, scope)
        struct: Optional[CStruct] = None
        if expr.arrow:
            if isinstance(base_type, CPointer) and isinstance(base_type.target, CStruct):
                struct = base_type.target
            else:
                self._error("-> applied to a non-struct-pointer", expr)
        else:
            if isinstance(base_type, CStruct):
                struct = base_type
            else:
                self._error(". applied to a non-struct", expr)
        if struct is not None:
            resolved = self.structs.get(struct.name, struct)
            member = resolved.field(expr.member)
            if member is None:
                self._error(
                    f"struct {struct.name!r} has no member {expr.member!r}", expr)
            else:
                expr.field_offset = member.offset
                return member.type
        return INT

    # -- conversions --------------------------------------------------------------------

    @staticmethod
    def _promote(ctype: CType) -> CType:
        """C integer promotion: anything narrower than int becomes int."""
        if isinstance(ctype, CInt) and ctype.width < 32:
            return INT
        return ctype

    def _usual_arithmetic(self, lhs: CType, rhs: CType) -> CType:
        """The usual arithmetic conversions for two integer operands."""
        left = self._promote(lhs)
        right = self._promote(rhs)
        if not (isinstance(left, CInt) and isinstance(right, CInt)):
            return left
        if left.width == right.width:
            if left.signed == right.signed:
                return left
            return left if not left.signed else right
        wider, narrower = (left, right) if left.width > right.width else (right, left)
        if wider.signed and not narrower.signed and wider.width <= narrower.width:
            return CInt(wider.width, signed=False, name=wider.name)
        return wider

    def _convert(self, expr: Expr, target: CType) -> Expr:
        """Insert an implicit cast node if the expression's type differs."""
        if expr.ctype is None or not target.is_scalar():
            return expr
        if isinstance(expr.ctype, CInt) and isinstance(target, CInt):
            if expr.ctype.width == target.width and expr.ctype.signed == target.signed:
                return expr
        elif isinstance(expr.ctype, CPointer) and isinstance(target, CPointer):
            return expr
        elif isinstance(expr.ctype, CArray) and isinstance(target, CPointer):
            return expr
        cast = CastExpr(target_type=target, operand=expr, implicit=True,
                        location=expr.location, origin=expr.origin)
        cast.ctype = target
        return cast

    # -- diagnostics ----------------------------------------------------------------------

    def _error(self, message: str, node) -> None:
        self.errors.append(SemaError(message, node.location))


def analyze(unit: TranslationUnit) -> TranslationUnit:
    """Run semantic analysis on a parsed translation unit (mutates it)."""
    return SemanticAnalyzer().analyze(unit)
