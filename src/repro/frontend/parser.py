"""Recursive-descent parser for MiniC.

The grammar covers the subset of C the paper's examples and synthetic corpora
need: struct declarations, typedefs, global variables, function definitions,
the usual statements, and the full C expression grammar with standard
precedence (assignment, conditional, logical, bitwise, equality, relational,
shift, additive, multiplicative, unary, postfix, primary).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend.ast_nodes import (
    AssignExpr,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CharLiteral,
    CompoundStmt,
    ConditionalExpr,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDecl,
    GlobalVarDecl,
    GotoStmt,
    Identifier,
    IfStmt,
    IndexExpr,
    IntLiteral,
    LabelStmt,
    MemberExpr,
    ParamDecl,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    StringLiteral,
    StructDecl,
    TranslationUnit,
    TypedefDecl,
    UnaryExpr,
    WhileStmt,
)
from repro.frontend.ctypes import (
    BOOL,
    BUILTIN_TYPEDEFS,
    CArray,
    CHAR,
    CInt,
    CPointer,
    CStruct,
    CType,
    CVoid,
    INT,
    LONG,
    SHORT,
    UCHAR,
    UINT,
    ULONG,
    USHORT,
    VOID,
    layout_struct,
)
from repro.frontend.errors import ParseError
from repro.frontend.lexer import Token, TokenKind
from repro.frontend.preprocessor import Preprocessor

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="}


class Parser:
    """Parses a token stream into a :class:`TranslationUnit`."""

    def __init__(self, tokens: List[Token], filename: str = "<input>") -> None:
        self.tokens = tokens
        self.pos = 0
        self.filename = filename
        self.typedefs: Dict[str, CType] = dict(BUILTIN_TYPEDEFS)
        self.structs: Dict[str, CStruct] = {}

    # -- token helpers ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _accept_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.location)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.location)
        return self._advance()

    def _at_eof(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    # -- type parsing -------------------------------------------------------------

    def _starts_type(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.is_keyword("void", "char", "short", "int", "long", "signed",
                            "unsigned", "struct", "union", "const", "volatile",
                            "static", "extern", "inline", "_Bool"):
            return True
        return token.kind is TokenKind.IDENT and token.text in self.typedefs

    def _parse_type_specifier(self) -> CType:
        """Parse a declaration specifier (without pointer declarators)."""
        while self._peek().is_keyword("const", "volatile", "static", "extern", "inline"):
            self._advance()

        token = self._peek()
        if token.is_keyword("struct", "union"):
            return self._parse_struct_specifier()
        if token.kind is TokenKind.IDENT and token.text in self.typedefs:
            self._advance()
            return self.typedefs[token.text]

        signed: Optional[bool] = None
        base: Optional[str] = None
        long_count = 0
        seen_any = False
        while True:
            token = self._peek()
            if token.is_keyword("signed"):
                signed, seen_any = True, True
            elif token.is_keyword("unsigned"):
                signed, seen_any = False, True
            elif token.is_keyword("void", "char", "short", "int", "_Bool"):
                base, seen_any = token.text, True
            elif token.is_keyword("long"):
                long_count += 1
                seen_any = True
            elif token.is_keyword("const", "volatile"):
                pass
            else:
                break
            self._advance()
        if not seen_any:
            raise ParseError(f"expected a type, found {token.text!r}", token.location)

        if base == "void":
            return VOID
        if base == "_Bool":
            return BOOL
        if base == "char":
            return CHAR if signed in (None, True) else UCHAR
        if base == "short":
            return SHORT if signed in (None, True) else USHORT
        if long_count >= 1:
            return LONG if signed in (None, True) else ULONG
        return INT if signed in (None, True) else UINT

    def _parse_struct_specifier(self) -> CType:
        self._advance()  # struct / union
        name_token = self._peek()
        name = ""
        if name_token.kind is TokenKind.IDENT:
            name = self._advance().text
        if self._accept_punct("{"):
            members: List[Tuple[str, CType]] = []
            while not self._accept_punct("}"):
                member_type = self._parse_type_specifier()
                while True:
                    declarator_type, member_name = self._parse_declarator(member_type)
                    members.append((member_name, declarator_type))
                    if not self._accept_punct(","):
                        break
                self._expect_punct(";")
            struct = layout_struct(name or f"anon{len(self.structs)}", members)
            if name:
                self.structs[name] = struct
            return struct
        if name in self.structs:
            return self.structs[name]
        # Forward reference to an unknown struct: create an incomplete type.
        struct = CStruct(name, (), complete=False)
        if name:
            self.structs.setdefault(name, struct)
        return struct

    def _parse_declarator(self, base: CType) -> Tuple[CType, str]:
        """Parse pointer stars, a name, and trailing array brackets."""
        ty = base
        while self._accept_punct("*"):
            while self._peek().is_keyword("const", "volatile"):
                self._advance()
            ty = CPointer(ty)
        name = ""
        if self._peek().kind is TokenKind.IDENT:
            name = self._advance().text
        while self._accept_punct("["):
            if self._check_punct("]"):
                count = -1
            else:
                size_expr = self.parse_expression()
                count = size_expr.value if isinstance(size_expr, IntLiteral) else -1
            self._expect_punct("]")
            ty = CArray(ty, count)
        return ty, name

    # -- top level -----------------------------------------------------------------

    def parse_translation_unit(self) -> TranslationUnit:
        unit = TranslationUnit(filename=self.filename)
        while not self._at_eof():
            if self._accept_punct(";"):
                continue
            unit.declarations.append(self._parse_external_declaration())
        return unit

    def _parse_external_declaration(self):
        token = self._peek()
        if token.is_keyword("typedef"):
            return self._parse_typedef()
        if token.is_keyword("struct", "union") and self._peek(1).kind is TokenKind.IDENT \
                and self._peek(2).is_punct("{"):
            struct_type = self._parse_struct_specifier()
            self._expect_punct(";")
            members = [(f.name, f.type) for f in struct_type.fields] \
                if isinstance(struct_type, CStruct) else []
            return StructDecl(name=getattr(struct_type, "name", ""), members=members,
                              location=token.location)

        is_static = False
        is_inline = False
        while self._peek().is_keyword("static", "extern", "inline"):
            kw = self._advance()
            is_static = is_static or kw.text == "static"
            is_inline = is_inline or kw.text == "inline"

        base_type = self._parse_type_specifier()
        decl_type, name = self._parse_declarator(base_type)

        if self._check_punct("("):
            return self._parse_function(decl_type, name, token, is_static, is_inline)

        initializer = None
        if self._accept_punct("="):
            initializer = self.parse_assignment()
        self._expect_punct(";")
        return GlobalVarDecl(name=name, decl_type=decl_type, initializer=initializer,
                             location=token.location)

    def _parse_typedef(self):
        token = self._advance()  # typedef
        base_type = self._parse_type_specifier()
        decl_type, name = self._parse_declarator(base_type)
        self._expect_punct(";")
        self.typedefs[name] = decl_type
        return TypedefDecl(name=name, aliased=decl_type, location=token.location)

    def _parse_function(self, return_type: CType, name: str, token: Token,
                        is_static: bool, is_inline: bool) -> FunctionDecl:
        self._expect_punct("(")
        params: List[ParamDecl] = []
        if not self._check_punct(")"):
            while True:
                if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                    self._advance()
                    break
                if self._peek().is_punct("..."):
                    self._advance()
                    break
                param_base = self._parse_type_specifier()
                param_type, param_name = self._parse_declarator(param_base)
                if isinstance(param_type, CArray):
                    param_type = CPointer(param_type.element)
                params.append(ParamDecl(name=param_name or f"arg{len(params)}",
                                        decl_type=param_type,
                                        location=self._peek().location))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")

        body = None
        if self._check_punct("{"):
            body = self.parse_compound_statement()
        else:
            self._expect_punct(";")
        return FunctionDecl(name=name, return_type=return_type, params=params,
                            body=body, is_static=is_static, is_inline=is_inline,
                            location=token.location)

    # -- statements --------------------------------------------------------------------

    def parse_compound_statement(self) -> CompoundStmt:
        open_token = self._expect_punct("{")
        stmt = CompoundStmt(location=open_token.location)
        while not self._accept_punct("}"):
            if self._at_eof():
                raise ParseError("unterminated compound statement", open_token.location)
            stmt.statements.append(self.parse_statement())
        return stmt

    def parse_statement(self) -> Stmt:
        token = self._peek()
        if token.is_punct("{"):
            return self.parse_compound_statement()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self.parse_expression()
            self._expect_punct(";")
            return ReturnStmt(value=value, location=token.location, origin=token.origin)
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return BreakStmt(location=token.location)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ContinueStmt(location=token.location)
        if token.is_keyword("goto"):
            self._advance()
            label = self._expect_ident().text
            self._expect_punct(";")
            return GotoStmt(label=label, location=token.location)
        if token.kind is TokenKind.IDENT and self._peek(1).is_punct(":") \
                and not self._peek(2).is_punct(":"):
            self._advance()
            self._advance()
            inner = None
            if not self._check_punct("}"):
                inner = self.parse_statement()
            return LabelStmt(label=token.text, statement=inner, location=token.location)
        if self._starts_type() and not self._peek(1).is_punct("("):
            return self._parse_declaration_statement()
        if self._accept_punct(";"):
            return ExprStmt(expr=None, location=token.location)
        expr = self.parse_expression()
        self._expect_punct(";")
        return ExprStmt(expr=expr, location=token.location, origin=token.origin)

    def _parse_declaration_statement(self) -> Stmt:
        token = self._peek()
        base_type = self._parse_type_specifier()
        declarations: List[DeclStmt] = []
        while True:
            decl_type, name = self._parse_declarator(base_type)
            initializer = None
            if self._accept_punct("="):
                initializer = self.parse_assignment()
            declarations.append(DeclStmt(name=name, decl_type=decl_type,
                                         initializer=initializer,
                                         location=token.location,
                                         origin=token.origin))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(declarations) == 1:
            return declarations[0]
        return CompoundStmt(statements=list(declarations), location=token.location)

    def _parse_if(self) -> IfStmt:
        token = self._advance()
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        then_branch = self.parse_statement()
        else_branch = None
        if self._peek().is_keyword("else"):
            self._advance()
            else_branch = self.parse_statement()
        return IfStmt(condition=condition, then_branch=then_branch,
                      else_branch=else_branch, location=token.location,
                      origin=token.origin)

    def _parse_while(self) -> WhileStmt:
        token = self._advance()
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        return WhileStmt(condition=condition, body=body, location=token.location)

    def _parse_do_while(self) -> DoWhileStmt:
        token = self._advance()
        body = self.parse_statement()
        if not self._peek().is_keyword("while"):
            raise ParseError("expected 'while' after do-body", self._peek().location)
        self._advance()
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return DoWhileStmt(condition=condition, body=body, location=token.location)

    def _parse_for(self) -> ForStmt:
        token = self._advance()
        self._expect_punct("(")
        init: Optional[Stmt] = None
        if not self._check_punct(";"):
            if self._starts_type():
                init = self._parse_declaration_statement()
            else:
                expr = self.parse_expression()
                self._expect_punct(";")
                init = ExprStmt(expr=expr, location=token.location)
        else:
            self._advance()
        condition = None
        if not self._check_punct(";"):
            condition = self.parse_expression()
        self._expect_punct(";")
        step = None
        if not self._check_punct(")"):
            step = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        return ForStmt(init=init, condition=condition, step=step, body=body,
                       location=token.location)

    # -- expressions --------------------------------------------------------------------

    def parse_expression(self) -> Expr:
        expr = self.parse_assignment()
        while self._check_punct(","):
            self._advance()
            rhs = self.parse_assignment()
            expr = BinaryExpr(op=",", lhs=expr, rhs=rhs, location=expr.location)
        return expr

    def parse_assignment(self) -> Expr:
        lhs = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in ASSIGN_OPS:
            self._advance()
            rhs = self.parse_assignment()
            op = "" if token.text == "=" else token.text[:-1]
            return AssignExpr(op=op, target=lhs, value=rhs,
                              location=token.location, origin=token.origin)
        return lhs

    def _parse_conditional(self) -> Expr:
        condition = self._parse_binary(0)
        if self._accept_punct("?"):
            on_true = self.parse_expression()
            self._expect_punct(":")
            on_false = self._parse_conditional()
            return ConditionalExpr(condition=condition, on_true=on_true,
                                   on_false=on_false, location=condition.location)
        return condition

    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        ops = self._BINARY_LEVELS[level]
        while self._peek().kind is TokenKind.PUNCT and self._peek().text in ops:
            token = self._advance()
            rhs = self._parse_binary(level + 1)
            lhs = BinaryExpr(op=token.text, lhs=lhs, rhs=rhs,
                             location=token.location, origin=token.origin)
        return lhs

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in ("-", "~", "!", "*", "&", "+"):
            self._advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return UnaryExpr(op=token.text, operand=operand,
                             location=token.location, origin=token.origin)
        if token.is_punct("++") or token.is_punct("--"):
            self._advance()
            operand = self._parse_unary()
            return UnaryExpr(op=token.text, operand=operand, postfix=False,
                             location=token.location, origin=token.origin)
        if token.is_keyword("sizeof"):
            self._advance()
            if self._check_punct("(") and self._starts_type(1):
                self._expect_punct("(")
                queried = self._parse_type_specifier()
                queried, _ = self._parse_declarator(queried)
                self._expect_punct(")")
                return SizeofExpr(queried_type=queried, location=token.location)
            operand = self._parse_unary()
            return SizeofExpr(operand=operand, location=token.location)
        # Cast expression: '(' type ')' unary
        if token.is_punct("(") and self._starts_type(1):
            self._advance()
            target = self._parse_type_specifier()
            target, _ = self._parse_declarator(target)
            self._expect_punct(")")
            operand = self._parse_unary()
            return CastExpr(target_type=target, operand=operand,
                            location=token.location, origin=token.origin)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("["):
                self._advance()
                index = self.parse_expression()
                self._expect_punct("]")
                expr = IndexExpr(base=expr, index=index,
                                 location=token.location, origin=token.origin)
            elif token.is_punct("."):
                self._advance()
                member = self._expect_ident().text
                expr = MemberExpr(base=expr, member=member, arrow=False,
                                  location=token.location, origin=token.origin)
            elif token.is_punct("->"):
                self._advance()
                member = self._expect_ident().text
                expr = MemberExpr(base=expr, member=member, arrow=True,
                                  location=token.location, origin=token.origin)
            elif token.is_punct("("):
                if not isinstance(expr, Identifier):
                    raise ParseError("only direct calls by name are supported",
                                     token.location)
                self._advance()
                args: List[Expr] = []
                if not self._check_punct(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = CallExpr(callee=expr.name, args=args,
                                location=token.location, origin=token.origin)
            elif token.is_punct("++") or token.is_punct("--"):
                self._advance()
                expr = UnaryExpr(op=token.text, operand=expr, postfix=True,
                                 location=token.location, origin=token.origin)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return IntLiteral(value=token.value, suffix=token.suffix,
                              location=token.location, origin=token.origin)
        if token.kind is TokenKind.CHAR_LITERAL:
            self._advance()
            return CharLiteral(value=token.value, location=token.location,
                               origin=token.origin)
        if token.kind is TokenKind.STRING_LITERAL:
            self._advance()
            return StringLiteral(value=token.text, location=token.location,
                                 origin=token.origin)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return Identifier(name=token.text, location=token.location,
                              origin=token.origin)
        if token.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r} in expression",
                         token.location)


def parse(source: str, filename: str = "<input>",
          preprocessor: Optional[Preprocessor] = None) -> TranslationUnit:
    """Preprocess and parse ``source`` into a :class:`TranslationUnit`."""
    pp = preprocessor if preprocessor is not None else Preprocessor()
    tokens = pp.preprocess(source, filename)
    # The preprocessor strips directives but keeps the EOF token from lexing.
    if not tokens or tokens[-1].kind is not TokenKind.EOF:
        from repro.frontend.lexer import Token as _Token
        tokens.append(_Token(TokenKind.EOF, ""))
    return Parser(tokens, filename).parse_translation_unit()
