"""Deterministic job scheduling for the checking daemon.

The scheduler owns every accepted job and answers one question: *which unit
runs next?*  The answer is a pure function of scheduler state — no clocks,
no randomness — so a given sequence of submissions and completions always
dispatches in the same order:

* jobs are ordered by **priority** (higher first), ties broken by
  **submission sequence** (earlier first);
* within a job, units dispatch in **submission order**;
* a job whose client cannot absorb more output (its outbox is at the
  high-water mark) is skipped until the client drains — scheduling is where
  backpressure lands, so one slow consumer never wedges the worker pool.

Admission control lives here too: a bounded global queue
(``max_queued_units``) and a per-client quota of outstanding units.  Both
reject at submission time with a typed reason the server relays to the
client (``queue-full`` / ``quota``), never by silently dropping work.

Completed results are buffered per job and released in unit-submission
order, which is what makes a served job's record stream byte-comparable
with a sequential batch run over the same corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.checker import CheckerConfig
from repro.engine.workunit import UnitResult, WorkUnit


class AdmissionError(Exception):
    """A submission the scheduler refused; ``reason`` crosses the wire."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


@dataclass
class Job:
    """One accepted submission: a batch of units checked under one config."""

    job_id: str
    client_id: str
    priority: int
    seq: int                              # global submission sequence number
    units: List[WorkUnit]
    checker: CheckerConfig
    next_dispatch: int = 0                # index of the next unit to dispatch
    next_emit: int = 0                    # index of the next result to emit
    in_flight: int = 0
    cancelled: bool = False
    #: Completed results awaiting in-order emission, keyed by unit index.
    pending_results: Dict[int, UnitResult] = field(default_factory=dict)
    #: Unit indices whose results were dropped by cancellation.
    dropped: int = 0
    started_monotonic: float = 0.0

    @property
    def total_units(self) -> int:
        return len(self.units)

    @property
    def dispatched(self) -> int:
        return self.next_dispatch

    @property
    def pending_units(self) -> int:
        """Units accepted but not yet dispatched (0 once cancelled)."""
        return 0 if self.cancelled else self.total_units - self.next_dispatch

    @property
    def finished(self) -> bool:
        """Every unit is accounted for: emitted, dropped, or cancelled."""
        if self.cancelled:
            return self.in_flight == 0
        return self.next_emit >= self.total_units

    @property
    def outstanding(self) -> int:
        """Units still owed to the client (for quota accounting)."""
        if self.cancelled:
            return self.in_flight
        return self.total_units - self.next_emit


class JobScheduler:
    """Deterministic priority scheduler with quotas and bounded queues."""

    def __init__(self, max_queued_units: int = 4096,
                 client_quota: int = 1024) -> None:
        if max_queued_units <= 0:
            raise ValueError("max_queued_units must be positive")
        if client_quota <= 0:
            raise ValueError("client_quota must be positive")
        self.max_queued_units = max_queued_units
        self.client_quota = client_quota
        self.jobs: Dict[str, Job] = {}
        self._seq = 0
        self._job_counter = 0

    # -- admission ---------------------------------------------------------------

    def submit(self, client_id: str, units: List[WorkUnit],
               checker: CheckerConfig, priority: int = 0) -> Job:
        """Admit a batch of units as one job, or raise :class:`AdmissionError`."""
        if not units:
            raise AdmissionError("empty", "a job needs at least one unit")
        queued = self.queue_depth()
        if queued + len(units) > self.max_queued_units:
            raise AdmissionError(
                "queue-full",
                f"{len(units)} units over the global queue bound "
                f"({queued} queued, limit {self.max_queued_units})")
        outstanding = self.client_outstanding(client_id)
        if outstanding + len(units) > self.client_quota:
            raise AdmissionError(
                "quota",
                f"client {client_id!r} would hold {outstanding + len(units)} "
                f"outstanding units (quota {self.client_quota})")
        self._job_counter += 1
        self._seq += 1
        job = Job(job_id=f"job-{self._job_counter}", client_id=client_id,
                  priority=priority, seq=self._seq, units=list(units),
                  checker=checker)
        self.jobs[job.job_id] = job
        return job

    # -- dispatch ----------------------------------------------------------------

    def next_unit(self, client_ready: Callable[[str], bool],
                  ) -> Optional[Tuple[Job, int, WorkUnit]]:
        """The next (job, unit index, unit) to dispatch, or None.

        ``client_ready`` gates on per-client backpressure: jobs whose client
        cannot absorb more output are skipped this round, deterministically.
        """
        candidates = [job for job in self.jobs.values()
                      if job.pending_units > 0 and client_ready(job.client_id)]
        if not candidates:
            return None
        job = min(candidates, key=lambda j: (-j.priority, j.seq))
        index = job.next_dispatch
        job.next_dispatch += 1
        job.in_flight += 1
        return job, index, job.units[index]

    # -- completion --------------------------------------------------------------

    def complete(self, job_id: str, index: int, result: UnitResult,
                 ) -> List[Tuple[int, UnitResult]]:
        """Record one finished unit; return results now emittable in order.

        Results of cancelled jobs are swallowed (counted as dropped) — the
        caller must not stream them.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return []
        job.in_flight = max(0, job.in_flight - 1)
        if job.cancelled:
            job.dropped += 1
            return []
        job.pending_results[index] = result
        ready: List[Tuple[int, UnitResult]] = []
        while job.next_emit in job.pending_results:
            ready.append((job.next_emit,
                          job.pending_results.pop(job.next_emit)))
            job.next_emit += 1
        return ready

    def cancel(self, job_id: str) -> Optional[int]:
        """Cancel a job; returns how many undispatched units were dropped."""
        job = self.jobs.get(job_id)
        if job is None or job.cancelled:
            return None
        dropped = job.total_units - job.next_dispatch
        job.cancelled = True
        job.dropped += dropped + len(job.pending_results)
        job.pending_results.clear()
        return dropped

    def finish(self, job_id: str) -> Optional[Job]:
        """Retire a finished job from the table (returns it, or None)."""
        job = self.jobs.get(job_id)
        if job is not None and job.finished:
            return self.jobs.pop(job_id)
        return None

    def cancel_client(self, client_id: str) -> List[str]:
        """Cancel every live job of a departing client; returns their ids."""
        cancelled = []
        for job in self.jobs.values():
            if job.client_id == client_id and not job.cancelled:
                self.cancel(job.job_id)
                cancelled.append(job.job_id)
        return cancelled

    # -- accounting --------------------------------------------------------------

    def queue_depth(self) -> int:
        """Units admitted but not yet dispatched, across all jobs."""
        return sum(job.pending_units for job in self.jobs.values())

    def in_flight(self) -> int:
        return sum(job.in_flight for job in self.jobs.values())

    def client_outstanding(self, client_id: str) -> int:
        return sum(job.outstanding for job in self.jobs.values()
                   if job.client_id == client_id)

    def active_jobs(self) -> int:
        return len(self.jobs)

    def idle(self) -> bool:
        """No queued units, nothing in flight, no unemitted results."""
        return not self.jobs


__all__ = ["AdmissionError", "Job", "JobScheduler"]
