"""The always-on checking daemon (``python -m repro serve``).

:class:`ServeServer` turns the engine stack into resident infrastructure:
it listens on a local stream socket for line-delimited JSON jobs
(:mod:`repro.serve.protocol`), schedules their units deterministically
across clients (:mod:`repro.serve.scheduler`), runs them on a pool of warm
worker processes whose solver-query caches persist across jobs
(:mod:`repro.serve.pool`), and streams per-unit results back to each
client — engine-schema records, in unit-submission order, one stream per
job — with scheduler-level backpressure for slow consumers.

Layout: one thread accepts connections; each client gets a reader thread
(ops) and a writer thread (its bounded outbox); one dispatcher thread moves
units from the scheduler into the pool; one collector thread routes
finished units back to jobs, sinks, and outboxes.  All shared state is
guarded by one lock; outbox writes happen outside it so a slow client can
never wedge the server (it just stops being scheduled until it drains).

Graceful drain (``SIGTERM``, the ``drain`` op, or
:meth:`ServeServer.request_drain`): new submissions are rejected, every
accepted unit finishes, per-job sinks and the shared solver-query cache are
flushed, workers exit via sentinels, and ``serve_forever`` returns — the
CLI then exits 0 (or re-execs on ``SIGHUP``).  See docs/SERVE.md.
"""

from __future__ import annotations

import os
import queue as queue_module
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.checker import CheckerConfig
from repro.core.report import BugReport
from repro.engine.cache import SolverQueryCache
from repro.engine.engine import aggregate_results
from repro.engine.sink import JsonlResultSink, report_to_dict
from repro.engine.workunit import UnitResult
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry, config_snapshot
from repro.obs.ops import EventLog, Ops
from repro.obs.promexport import render_prometheus, write_metrics_file
from repro.obs.trace import Span, graft
from repro.serve import protocol
from repro.serve.pool import PoolEvent, WarmWorkerPool
from repro.serve.scheduler import AdmissionError, Job, JobScheduler


def _default_start_method() -> str:
    import multiprocessing

    return "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else "spawn"


@dataclass
class ServeConfig:
    """Configuration of one daemon instance (see docs/SERVE.md)."""

    #: Unix-domain socket path the daemon listens on.
    socket_path: str = "repro-serve.sock"
    #: Warm worker processes held resident across jobs.
    workers: int = 2
    #: Default checker configuration; jobs may override whitelisted fields.
    checker: CheckerConfig = field(default_factory=CheckerConfig)
    #: JSONL file the shared solver-query cache is warmed from on start and
    #: atomically flushed to on drain (None = in-memory only).
    cache_path: Optional[str] = None
    #: Maximum in-memory cache entries.
    cache_capacity: int = 100_000
    #: Directory receiving one ``<job>.jsonl`` result stream per job
    #: (None = results travel only over the socket).
    results_dir: Optional[str] = None
    #: Global bound on units admitted but not yet dispatched.
    max_queued_units: int = 4096
    #: Per-client bound on outstanding (accepted, unemitted) units.
    client_quota: int = 1024
    #: Per-client outbox level above which the scheduler stops dispatching
    #: that client's units (the backpressure knob).
    outbox_high_water: int = 64
    #: During drain, a client whose outbox stays at the high-water mark this
    #: many seconds (it stopped reading but still holds undispatched units)
    #: has its jobs cancelled and its connection cut, so a wedged consumer
    #: cannot hold the drain open forever.
    drain_stall_timeout: float = 10.0
    #: Cumulative budget multipliers for retrying timed-out functions.
    escalation_factors: Tuple[float, ...] = (4.0, 16.0)
    #: Chrome trace-event JSON written on drain (implies tracing).
    trace_path: Optional[str] = None
    #: ``multiprocessing`` start method for the worker pool.
    start_method: str = field(default_factory=_default_start_method)
    #: Structured JSONL event log (None = events feed only the flight
    #: recorder's in-memory ring).  See docs/OBSERVABILITY.md.
    log_path: Optional[str] = None
    #: Minimum level written to the event log (the flight ring keeps all).
    log_level: str = "info"
    #: Event-log size-rotation threshold in bytes.
    log_max_bytes: int = 10_000_000
    #: Prometheus text-format snapshot rewritten atomically every
    #: ``metrics_interval`` seconds for an external scraper (None = the
    #: ``metrics`` protocol op is the only exporter).
    metrics_path: Optional[str] = None
    #: Seconds between ``metrics_path`` rewrites.
    metrics_interval: float = 2.0
    #: Log solver queries slower than this many milliseconds as
    #: ``slow-query`` events (None = off).
    slow_query_ms: Optional[float] = None
    #: Directory receiving flight-recorder post-mortem dumps (default:
    #: next to the event log, else next to the socket).
    flight_dir: Optional[str] = None


class _ClientConn:
    """One connected client: its socket, outbox, and writer thread."""

    def __init__(self, client_id: str, line_socket: protocol.LineSocket,
                 outbox_capacity: int) -> None:
        self.client_id = client_id
        self.socket = line_socket
        self.name = client_id
        self.outbox: "queue_module.Queue" = queue_module.Queue(
            maxsize=outbox_capacity)
        self.writer = threading.Thread(target=self._write_loop, daemon=True,
                                       name=f"serve-writer-{client_id}")
        self.closed = False
        self.stalled_since: Optional[float] = None
        self.writer.start()

    def _write_loop(self) -> None:
        while True:
            message = self.outbox.get()
            if message is None:
                break
            try:
                self.socket.send(message)
            except OSError:
                break
        self.socket.close()

    def enqueue(self, message: Dict[str, object],
                timeout: float = 30.0) -> None:
        if not self.closed:
            try:
                self.outbox.put(message, timeout=timeout)
            except queue_module.Full:
                pass                          # client wedged; reader will reap

    def shutdown(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self.outbox.put_nowait(None)
            except queue_module.Full:
                # Writer wedged on a full outbox: closing the socket errors
                # out its blocked sendall, which makes it exit without the
                # sentinel.
                self.socket.close()


class ServeServer:
    """Long-running checking service over a local socket."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        if self.config.trace_path and not self.config.checker.trace:
            import dataclasses

            self.config.checker = dataclasses.replace(self.config.checker,
                                                      trace=True)
        if self.config.slow_query_ms is not None \
                and self.config.checker.slow_query_ms is None:
            import dataclasses

            self.config.checker = dataclasses.replace(
                self.config.checker, slow_query_ms=self.config.slow_query_ms)
        self.cache = SolverQueryCache(capacity=self.config.cache_capacity,
                                      path=self.config.cache_path)
        self.metrics = MetricsRegistry()
        flight_dir = self.config.flight_dir \
            or os.path.dirname(self.config.log_path or "") \
            or os.path.dirname(self.config.socket_path) or "."
        self.ops = Ops(
            log=EventLog(path=self.config.log_path,
                         level=self.config.log_level,
                         max_bytes=self.config.log_max_bytes),
            flight=FlightRecorder(),
            flight_dir=flight_dir,
            metrics_fn=lambda: self.metrics.snapshot(),
            config_fn=lambda: config_snapshot(self.config.checker))
        self.trace_root: Optional[Span] = \
            Span("serve") if self.config.checker.trace else None
        self._trace_offset = 0.0
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._scheduler = JobScheduler(
            max_queued_units=self.config.max_queued_units,
            client_quota=self.config.client_quota)
        self._pool: Optional[WarmWorkerPool] = None
        self._clients: Dict[str, _ClientConn] = {}
        self._client_counter = 0
        self._sinks: Dict[str, JsonlResultSink] = {}
        self._results: Dict[str, List[UnitResult]] = {}
        self._dispatch_times: Dict[str, float] = {}
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._collector_thread: Optional[threading.Thread] = None
        self._closing = threading.Event()
        self.draining = False
        self.reload_requested = False
        self._stopped = threading.Event()
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Bind the socket, spawn the pool and service threads."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._pool = WarmWorkerPool(
            workers=self.config.workers, checker=self.config.checker,
            cache=self.cache, cache_capacity=self.config.cache_capacity,
            escalation_factors=self.config.escalation_factors,
            start_method=self.config.start_method, ops=self.ops)
        path = self.config.socket_path
        if os.path.exists(path):
            os.unlink(path)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(16)
        self.metrics.set_gauge("serve.workers", self.config.workers)
        self._update_queue_gauges()
        self.ops.emit("info", "server", "listening", socket=path,
                      workers=self.config.workers, pid=os.getpid(),
                      cache_entries=len(self.cache))
        for target, name in ((self._accept_loop, "serve-accept"),
                             (self._dispatch_loop, "serve-dispatch"),
                             (self._collect_loop, "serve-collect")):
            thread = threading.Thread(target=target, daemon=True, name=name)
            thread.start()
            self._threads.append(thread)
            if name == "serve-collect":
                self._collector_thread = thread
        if self.config.metrics_path:
            thread = threading.Thread(target=self._metrics_loop, daemon=True,
                                      name="serve-metrics")
            thread.start()
            self._threads.append(thread)

    def serve_forever(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon drains and stops; True if it did."""
        return self._stopped.wait(timeout)

    @property
    def running(self) -> bool:
        return self._started and not self._stopped.is_set()

    @property
    def worker_pids(self) -> List[int]:
        return list(self._pool.worker_pids) if self._pool is not None else []

    def request_drain(self, reason: str = "requested",
                      reload: bool = False) -> None:
        """Stop accepting jobs; finish everything accepted; then shut down."""
        with self._wakeup:
            if reload:
                self.reload_requested = True
            if self.draining:
                return
            self.draining = True
            self._wakeup.notify_all()
        self.ops.emit("info", "server", "draining", reason=reason,
                      reload=reload)

    def dump_flight(self, reason: str = "requested") -> str:
        """Write a flight-recorder post-mortem now; returns its path.

        This is the ``SIGQUIT`` handler's entry point — a live snapshot of
        the daemon without stopping it.
        """
        return self.ops.dump(reason)

    def _metrics_loop(self) -> None:
        """Periodically rewrite the Prometheus snapshot file (atomically)."""
        interval = max(0.05, float(self.config.metrics_interval))
        while not self._stopped.wait(interval):
            try:
                write_metrics_file(self.config.metrics_path,
                                   self.metrics.snapshot())
            except OSError:
                pass                          # disk hiccup; retry next tick

    def close(self) -> None:
        """Hard stop for tests/embedders: drain with whatever is queued."""
        self.request_drain(reason="close")
        if not self.serve_forever(timeout=60.0):
            raise RuntimeError("serve: drain did not complete in time")

    # -- accept / per-client reader ----------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return                        # listener closed during drain
            with self._lock:
                self._client_counter += 1
                client_id = f"client-{self._client_counter}"
                client = _ClientConn(
                    client_id, protocol.LineSocket(conn),
                    outbox_capacity=self.config.outbox_high_water
                    + self.config.workers * 2 + 8)
                self._clients[client_id] = client
                self.metrics.set_gauge("serve.clients", len(self._clients))
            self.ops.emit("info", "server", "client-connected",
                          client=client_id)
            thread = threading.Thread(target=self._read_loop,
                                      args=(client,), daemon=True,
                                      name=f"serve-reader-{client_id}")
            thread.start()

    def _read_loop(self, client: _ClientConn) -> None:
        # The try/finally guarantees _disconnect runs no matter what kills
        # the loop — without it, an unexpected exception would leak the
        # client's jobs and quota until shutdown.
        try:
            while True:
                try:
                    message = client.socket.receive()
                except protocol.ProtocolError as exc:
                    # Undecodable line: report and keep reading.  An
                    # oversized line closed the socket inside receive(), so
                    # the next iteration returns None and disconnects.
                    client.enqueue(protocol.error_message("protocol",
                                                          str(exc)))
                    continue
                if message is None:
                    break
                try:
                    self._handle_op(client, message)
                except protocol.ProtocolError as exc:
                    client.enqueue(protocol.error_message("protocol",
                                                          str(exc)))
        finally:
            self._disconnect(client)

    def _disconnect(self, client: _ClientConn) -> None:
        finished: List[Job] = []
        cancelled: List[str] = []
        with self._wakeup:
            self._clients.pop(client.client_id, None)
            self.metrics.set_gauge("serve.clients", len(self._clients))
            for job_id in self._scheduler.cancel_client(client.client_id):
                self.metrics.inc("serve.jobs_cancelled")
                cancelled.append(job_id)
                job = self._scheduler.jobs.get(job_id)
                if job is not None and job.finished:
                    finished.append(job)
            self._wakeup.notify_all()
        self.ops.emit("info", "server", "client-disconnected",
                      client=client.client_id, name=client.name,
                      cancelled_jobs=cancelled)
        for job in finished:
            self._finish_job(job)
        client.shutdown()

    # -- operations --------------------------------------------------------------

    def _handle_op(self, client: _ClientConn,
                   message: Dict[str, object]) -> None:
        op = protocol.require_op(message)
        if op == "hello":
            name = message.get("client")
            if isinstance(name, str) and name:
                client.name = name
            client.enqueue({"type": "welcome",
                            "proto": protocol.PROTOCOL_VERSION,
                            "client_id": client.client_id,
                            "workers": self.config.workers})
        elif op == "ping":
            client.enqueue({"type": "pong"})
        elif op == "status":
            client.enqueue(self._status_message())
        elif op == "metrics":
            with self._lock:
                self._update_queue_gauges()
                snapshot = self.metrics.snapshot()
            client.enqueue({"type": "metrics",
                            "text": render_prometheus(snapshot),
                            "snapshot": snapshot})
        elif op == "drain":
            client.enqueue({"type": "draining"})
            self.request_drain(reason=f"drain op from {client.client_id}")
        elif op == "cancel":
            self._handle_cancel(client, message)
        elif op == "submit":
            self._handle_submit(client, message)

    def _handle_submit(self, client: _ClientConn,
                       message: Dict[str, object]) -> None:
        raw_units = message.get("units")
        if not isinstance(raw_units, list):
            raise protocol.ProtocolError("'units' must be a list")
        units = [protocol.unit_from_wire(payload) for payload in raw_units]
        checker = protocol.checker_from_wire(self.config.checker,
                                             message.get("checker"))
        priority = message.get("priority", 0)
        if not isinstance(priority, int):
            raise protocol.ProtocolError("'priority' must be an integer")
        with self._wakeup:
            if self.draining:
                self.metrics.inc("serve.jobs_rejected")
                client.enqueue({"type": "rejected", "reason": "draining",
                                "detail": "server is draining"})
                self.ops.emit("warn", "scheduler", "job-rejected",
                              client=client.client_id, reason="draining",
                              units=len(units))
                return
            try:
                job = self._scheduler.submit(client.client_id, units,
                                             checker, priority=priority)
            except AdmissionError as exc:
                self.metrics.inc("serve.jobs_rejected")
                client.enqueue({"type": "rejected", "reason": exc.reason,
                                "detail": exc.detail})
                self.ops.emit("warn", "scheduler", "job-rejected",
                              client=client.client_id, reason=exc.reason,
                              units=len(units))
                return
            job.started_monotonic = time.monotonic()
            self._results[job.job_id] = []
            if self.config.results_dir:
                os.makedirs(self.config.results_dir, exist_ok=True)
                self._sinks[job.job_id] = JsonlResultSink(os.path.join(
                    self.config.results_dir, f"{job.job_id}.jsonl"))
            self.metrics.inc("serve.jobs_accepted")
            self._update_queue_gauges()
            # "accepted" must be enqueued BEFORE the dispatcher is notified
            # (i.e. inside the locked region): a warm-cache unit can complete
            # and emit its "result" as soon as the lock is released, and the
            # per-client outbox is the serialization point for wire order.
            client.enqueue({"type": "accepted", "job": job.job_id,
                            "units": job.total_units, "priority": priority},
                           timeout=5.0)      # bounded: we hold the lock
            self._wakeup.notify_all()
        self.ops.emit("info", "scheduler", "job-accepted", job=job.job_id,
                      client=client.client_id, units=job.total_units,
                      priority=priority)

    def _handle_cancel(self, client: _ClientConn,
                       message: Dict[str, object]) -> None:
        job_id = message.get("job")
        finished_job: Optional[Job] = None
        with self._wakeup:
            dropped = self._scheduler.cancel(job_id) \
                if isinstance(job_id, str) else None
            if dropped is not None:
                self.metrics.inc("serve.jobs_cancelled")
                job = self._scheduler.jobs.get(job_id)
                if job is not None and job.finished:
                    finished_job = job
                self._update_queue_gauges()
                self._wakeup.notify_all()
        if dropped is None:
            client.enqueue(protocol.error_message(
                "unknown-job", f"no live job {job_id!r}"))
            return
        client.enqueue({"type": "cancel-ok", "job": job_id,
                        "dropped": dropped})
        self.ops.emit("info", "scheduler", "job-cancelled", job=job_id,
                      client=client.client_id, dropped=dropped)
        if finished_job is not None:
            self._finish_job(finished_job)

    def _status_message(self) -> Dict[str, object]:
        # The whole snapshot is assembled under the scheduler lock, with the
        # queue gauges refreshed first: the direct queue_depth/in_flight
        # fields and the serve.* gauges inside `metrics` describe the same
        # instant and can never tear against a concurrent completion.
        with self._lock:
            self._update_queue_gauges()
            snapshot = self.metrics.snapshot()
            return {
                "type": "status",
                "proto": protocol.PROTOCOL_VERSION,
                "draining": self.draining,
                "queue_depth": self._scheduler.queue_depth(),
                "in_flight": self._scheduler.in_flight(),
                "active_jobs": self._scheduler.active_jobs(),
                "clients": len(self._clients),
                "workers": self.config.workers,
                "worker_pids": self.worker_pids,
                "worker_deaths": self._pool.deaths if self._pool else 0,
                "workers_detail": self._pool.worker_summary()
                if self._pool else [],
                "uptime_units": int(snapshot["counters"].get(
                    "serve.units_completed", 0)),
                "cache_entries": len(self.cache),
                "recent_events": self.ops.recent_events(8),
                "metrics": snapshot,
            }

    # -- dispatcher ---------------------------------------------------------------

    def _client_ready(self, client_id: str) -> bool:
        client = self._clients.get(client_id)
        if client is None:
            return False                      # job will be cancelled shortly
        return client.outbox.qsize() < self.config.outbox_high_water

    def _dispatch_loop(self) -> None:
        try:
            while True:
                with self._wakeup:
                    if self._stopped.is_set():
                        return
                    picked = None
                    if self._pool is not None and self._pool.has_capacity():
                        picked = self._scheduler.next_unit(self._client_ready)
                    if picked is None:
                        if self.draining:
                            if self._drained_locked():
                                self._wakeup.notify_all()
                                break
                            self._reap_stalled_locked()
                        self._wakeup.wait(timeout=0.05)
                        continue
                    job, index, unit = picked
                    task_id = f"{job.job_id}:{index}"
                    self._dispatch_times[task_id] = time.monotonic()
                    self._pool.submit(task_id, unit, config=job.checker)
                    self._update_queue_gauges()
        except BaseException as exc:
            self._dump_server_exception("dispatch", exc)
            raise
        self._shutdown()

    def _drained_locked(self) -> bool:
        return self._scheduler.idle() and \
            (self._pool is None or self._pool.outstanding == 0)

    def _reap_stalled_locked(self) -> None:
        """Cut clients that stopped reading while the server drains.

        A connected-but-wedged consumer keeps its outbox at high-water, so
        the scheduler never dispatches its remaining units and the drain can
        never complete.  After ``drain_stall_timeout`` seconds at high-water
        its jobs are cancelled and the connection dropped; closing the
        socket also errors out a writer thread blocked in ``sendall``.
        Called with the server lock held (the lock is re-entrant, so
        ``_finish_job`` may run inline for jobs with nothing in flight).
        """
        now = time.monotonic()
        for client in list(self._clients.values()):
            if client.outbox.qsize() < self.config.outbox_high_water:
                client.stalled_since = None
                continue
            if client.stalled_since is None:
                client.stalled_since = now
                continue
            if now - client.stalled_since < self.config.drain_stall_timeout:
                continue
            self._clients.pop(client.client_id, None)
            self.metrics.set_gauge("serve.clients", len(self._clients))
            self.metrics.inc("serve.clients_reaped")
            self.ops.emit("warn", "server", "client-reaped",
                          client=client.client_id, name=client.name,
                          outbox=client.outbox.qsize())
            finished: List[Job] = []
            for job_id in self._scheduler.cancel_client(client.client_id):
                self.metrics.inc("serve.jobs_cancelled")
                job = self._scheduler.jobs.get(job_id)
                if job is not None and job.finished:
                    finished.append(job)
            client.socket.close()             # unblocks sendall / recv
            client.shutdown()
            for job in finished:
                self._finish_job(job)

    # -- collector ----------------------------------------------------------------

    def _collect_loop(self) -> None:
        try:
            while not self._closing.is_set():
                if self._pool is None:
                    return
                try:
                    events = self._pool.collect(timeout=0.1)
                except (OSError, ValueError):
                    return                    # pool closed during shutdown
                for event in events:
                    self._handle_pool_event(event)
        except BaseException as exc:
            self._dump_server_exception("collect", exc)
            raise

    def _dump_server_exception(self, thread: str,
                               exc: BaseException) -> None:
        """Post-mortem for an unhandled exception on a service thread."""
        try:
            self.ops.emit("error", "server", "exception", dump=True,
                          thread=thread,
                          error=f"{type(exc).__name__}: {exc}")
        except Exception:
            pass                              # the dump must not mask `exc`

    def _handle_pool_event(self, event: PoolEvent) -> None:
        if event.kind == "retried":
            self.metrics.inc("serve.units_retried")
            return
        job_id, _, index_text = event.task_id.rpartition(":")
        index = int(index_text)
        if event.kind == "failed":
            result = UnitResult(name=f"{job_id}[{index}]",
                                report=BugReport(module=job_id),
                                error=event.error)
            self.metrics.inc("serve.units_failed")
        else:
            result = event.result
            result.trace = result.meta.pop("obs", None)
        slow_queries = result.slow_queries
        result.slow_queries = []
        for slow in slow_queries:
            self.metrics.inc("serve.slow_queries")
            self.ops.emit("warn", "solver", "slow-query", unit=result.name,
                          worker=event.worker_id, **slow)
        emit: List[Tuple[Job, int, UnitResult]] = []
        finished_job: Optional[Job] = None
        latency: Optional[float] = None
        with self._wakeup:
            started = self._dispatch_times.pop(event.task_id, None)
            if started is not None:
                latency = time.monotonic() - started
                self.metrics.observe("serve.unit_latency", latency)
            job = self._scheduler.jobs.get(job_id)
            for ready_index, ready in self._scheduler.complete(job_id, index,
                                                               result):
                emit.append((job, ready_index, ready))
            self.metrics.inc("serve.units_completed")
            if result.report is not None:
                self.metrics.inc("serve.warm_hits",
                                 result.report.cache_hits)
                self.metrics.inc("serve.queries", result.report.queries)
            if job is not None and job.finished:
                finished_job = job
            self._update_queue_gauges()
            self._wakeup.notify_all()
        if latency is not None:
            self.ops.flight.record_span(
                f"unit:{event.task_id}", latency, worker=event.worker_id,
                kind=event.kind, error=bool(result.error))
        for job, ready_index, ready in emit:
            self._emit_result(job, ready_index, ready)
        if finished_job is not None:
            self._finish_job(finished_job)

    def _emit_result(self, job: Job, index: int, result: UnitResult) -> None:
        """Stream one in-order unit record to the job's sink and client."""
        results = self._results.get(job.job_id)
        if results is None:
            return                            # job was cancelled and retired
        results.append(result)
        record = report_to_dict(result.name, result.report,
                                attempts=result.attempts,
                                escalated=result.escalated,
                                error=result.error, meta=result.meta)
        sink = self._sinks.get(job.job_id)
        if sink is not None:
            sink.write_unit(result.name, result.report,
                            attempts=result.attempts,
                            escalated=result.escalated, error=result.error,
                            meta=result.meta)
        client = self._clients.get(job.client_id)
        if client is not None:
            client.enqueue({"type": "result", "job": job.job_id,
                            "record": record})

    def _finish_job(self, job: Job) -> None:
        """Emit the run-summary record, retire the job, graft its trace."""
        with self._lock:
            if self._scheduler.finish(job.job_id) is None:
                return
            results = self._results.pop(job.job_id, [])
            sink = self._sinks.pop(job.job_id, None)
            self.metrics.inc("serve.jobs_completed")
            self._update_queue_gauges()
        wall_clock = time.monotonic() - job.started_monotonic
        stats = aggregate_results(results, wall_clock, workers=1)
        summary = stats.as_dict()
        import repro

        summary["version"] = repro.__version__
        summary["job"] = job.job_id
        summary["units_total"] = job.total_units
        summary["cancelled"] = job.cancelled
        summary["dropped"] = job.dropped
        summary["config"] = {
            "checker": config_snapshot(job.checker),
            "serve": {"workers": self.config.workers,
                      "priority": job.priority},
        }
        if sink is not None:
            sink.write_summary(summary)
            sink.close()
        client = self._clients.get(job.client_id)
        if client is not None:
            record = {"type": "run"}
            record.update(summary)
            client.enqueue({"type": "result", "job": job.job_id,
                            "record": record})
            status = "cancelled" if job.cancelled else "ok"
            client.enqueue({"type": "job-done", "job": job.job_id,
                            "status": status, "units": len(results)})
        self.ops.emit("info", "scheduler", "job-done", job=job.job_id,
                      units=len(results), cancelled=job.cancelled,
                      dropped=job.dropped, wall=round(wall_clock, 6))
        self.ops.flight.record_span(f"job:{job.job_id}", wall_clock,
                                    units=len(results),
                                    cancelled=job.cancelled)
        self._graft_job_trace(job, results)
        with self._wakeup:
            self._wakeup.notify_all()

    def _graft_job_trace(self, job: Job, results: List[UnitResult]) -> None:
        if self.trace_root is None:
            return
        blobs = [result.trace for result in results if result.trace]
        if not blobs:
            return
        with self._lock:
            job_span = self.trace_root.child(f"job:{job.job_id}")
            job_span.ts = self._trace_offset
            offset = self._trace_offset
            for blob in blobs:
                graft(job_span, blob.get("spans", ()),
                      blob.get("timings", ()), offset=offset)
                timings = blob.get("timings") or ()
                if timings:
                    offset += float(timings[0][1])
                self.metrics.merge_snapshot(blob.get("metrics", {}))
            job_span.dur = offset - self._trace_offset
            self._trace_offset = offset
            self.trace_root.dur = offset

    # -- shutdown -----------------------------------------------------------------

    def _update_queue_gauges(self) -> None:
        self.metrics.set_gauge("serve.queue_depth",
                               self._scheduler.queue_depth())
        self.metrics.set_gauge("serve.in_flight", self._scheduler.in_flight())
        self.metrics.set_gauge("serve.active_jobs",
                               self._scheduler.active_jobs())

    def _shutdown(self) -> None:
        """Drain epilogue: flush everything, stop workers, close sockets.

        Runs on the dispatcher thread once the scheduler is idle and the
        pool is empty.  The collector is stopped *before* the pool closes —
        its worker reaper must not race ``close()`` over workers exiting
        via their shutdown sentinels.
        """
        try:
            self._closing.set()
            if self._collector_thread is not None:
                self._collector_thread.join(timeout=10.0)
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
            if self._pool is not None:
                self._pool.close(drain=True)
            self.cache.flush()
            for sink in self._sinks.values():     # cancelled leftovers
                sink.close()
            self._sinks.clear()
            if self.config.trace_path and self.trace_root is not None:
                from repro.obs.chrometrace import write_chrome_trace

                write_chrome_trace(self.config.trace_path, self.trace_root,
                                   metrics=self.metrics.snapshot()["counters"])
            with self._lock:
                clients = list(self._clients.values())
            for client in clients:
                client.shutdown()
            if os.path.exists(self.config.socket_path):
                try:
                    os.unlink(self.config.socket_path)
                except OSError:
                    pass
            if self.config.metrics_path:
                try:                          # final scrape-able snapshot
                    write_metrics_file(self.config.metrics_path,
                                       self.metrics.snapshot())
                except OSError:
                    pass
            self.ops.emit("info", "server", "stopped",
                          reload=self.reload_requested,
                          units=int(self.metrics.snapshot()["counters"].get(
                              "serve.units_completed", 0)))
        finally:
            self._stopped.set()
            self.ops.close()


__all__ = ["ServeConfig", "ServeServer"]
